//! Table I (tile configuration) and Table II (ReRAM crossbar system
//! parameters), printed from the models rather than hard-coded prose.

use odin_arch::{OverheadLedger, SystemConfig};
use odin_device::DeviceParams;
use odin_xbar::CrossbarConfig;
use serde::Serialize;

/// The combined Table I / Table II report.
#[derive(Debug, Clone, Serialize)]
pub struct TableReport {
    /// Component name, spec, area (mm²) — Table I rows.
    pub tile_components: Vec<(String, String, f64)>,
    /// Total tile area (mm²).
    pub tile_area: f64,
    /// Table II parameter rows: name, description, value string.
    pub crossbar_params: Vec<(String, String, String)>,
    /// System totals.
    pub pe_count: usize,
    /// Total crossbars in the accelerator.
    pub total_crossbars: usize,
    /// Compute area of the accelerator (mm²).
    pub system_area: f64,
    /// §V.E controller overhead as a percent of the tile.
    pub controller_pct: f64,
}

impl std::fmt::Display for TableReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table I — tile configuration (1.2 GHz, 32 nm)")?;
        writeln!(
            f,
            "{:<24} {:<48} {:>10}",
            "component", "specification", "area mm²"
        )?;
        for (name, spec, area) in &self.tile_components {
            writeln!(f, "{name:<24} {spec:<48} {area:>10.4}")?;
        }
        writeln!(f, "{:<73} {:>10.4}", "total", self.tile_area)?;
        writeln!(f)?;
        writeln!(f, "Table II — ReRAM crossbar system parameters")?;
        for (name, desc, value) in &self.crossbar_params {
            writeln!(f, "{name:<12} {desc:<28} {value}")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "system: {} PEs, {} crossbars, {:.1} mm² compute area, OU/ADC controller {:.1}% of tile",
            self.pe_count, self.total_crossbars, self.system_area, self.controller_pct
        )
    }
}

/// Builds the Table I/II report from the architecture models.
#[must_use]
pub fn run() -> TableReport {
    let system = SystemConfig::paper();
    let tile = system.tile();
    let device = DeviceParams::paper();
    let crossbar = CrossbarConfig::paper_128();
    let ledger = OverheadLedger::paper();

    let tile_components = tile
        .components()
        .iter()
        .map(|c| (c.name.to_string(), c.spec.to_string(), c.area.value()))
        .collect();
    let crossbar_params = vec![
        (
            "R_wire".to_string(),
            "crossbar wire resistance".to_string(),
            format!("{} ohm", crossbar.wire_resistance().value()),
        ),
        (
            "G_ON/G_OFF".to_string(),
            "ON/OFF state conductance".to_string(),
            format!(
                "{:.0}/{:.2} µS",
                device.g_on().as_micro(),
                device.g_off().as_micro()
            ),
        ),
        (
            "v".to_string(),
            "drift coefficient".to_string(),
            format!("{} s⁻¹", device.drift_coefficient()),
        ),
    ];
    TableReport {
        tile_components,
        tile_area: tile.total_area().value(),
        crossbar_params,
        pe_count: system.pe_count(),
        total_crossbars: system.total_crossbars(),
        system_area: system.compute_area().value(),
        controller_pct: ledger.controller_tile_percent(&system),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_reproduce_paper_numbers() {
        let report = run();
        assert_eq!(report.tile_components.len(), 9);
        assert!((report.tile_area - 0.2822).abs() < 1e-6);
        assert_eq!(report.pe_count, 36);
        assert_eq!(report.total_crossbars, 13_824);
        assert!((report.controller_pct - 1.8).abs() < 0.1);
        let text = report.to_string();
        assert!(text.contains("Table I"));
        assert!(text.contains("333"));
        assert!(text.contains("0.2"));
    }
}
