//! Model validation: the analytic Eq. 1–2 pipeline cross-checked
//! against the exact OU scheduler and the discrete-event tile
//! simulator, per VGG11 layer.
//!
//! Three independent implementations of "how long does this layer
//! take" must agree: the closed-form estimate (`estimate_cycles`),
//! the exact zero-row-skipping scheduler run over a synthetic pruned
//! weight matrix, and the event-driven tile simulation with eDRAM bus
//! contention. Divergence is reported, not hidden.

use odin_arch::{simulate_layer, OuCostModel, TileConfig};
use odin_core::OdinError;
use odin_dnn::zoo::{self, Dataset};
use odin_dnn::{prune_rows, Tensor};
use odin_xbar::{estimate_cycles, LayerMapping, OuScheduler, OuShape};
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::setup::ExperimentContext;

/// One layer's three-way comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ValidateRow {
    /// Layer name.
    pub layer: String,
    /// Closed-form cycle estimate (per inference position).
    pub estimated_cycles: u64,
    /// Exact scheduler cycles on a synthetic pruned matrix.
    pub exact_cycles: u64,
    /// Relative gap `estimate/exact − 1`.
    pub estimate_gap: f64,
    /// Event-simulated tile slowdown with IR reuse across column
    /// groups (the real dataflow).
    pub sim_slowdown: f64,
    /// Event-simulated slowdown with pessimistic refetch-every-cycle.
    pub sim_slowdown_no_reuse: f64,
    /// Simulated eDRAM-bus utilization (with reuse).
    pub bus_utilization: f64,
}

/// The validation result.
#[derive(Debug, Clone, Serialize)]
pub struct ValidateResult {
    /// Per-layer rows.
    pub rows: Vec<ValidateRow>,
}

impl ValidateResult {
    /// The largest estimate-vs-exact gap.
    #[must_use]
    pub fn max_estimate_gap(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.estimate_gap.abs())
            .fold(0.0, f64::max)
    }

    /// The largest simulated slowdown.
    #[must_use]
    pub fn max_slowdown(&self) -> f64 {
        self.rows.iter().map(|r| r.sim_slowdown).fold(0.0, f64::max)
    }
}

impl std::fmt::Display for ValidateResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Validation — estimate vs exact scheduler vs event simulation (VGG11, 16×16)"
        )?;
        writeln!(
            f,
            "{:<8} {:>10} {:>8} {:>9} {:>10} {:>10} {:>8}",
            "layer", "estimate", "exact", "gap", "slowdown", "no-reuse", "bus"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>10} {:>8} {:>8.1}% {:>9.2}× {:>9.2}× {:>7.1}%",
                r.layer,
                r.estimated_cycles,
                r.exact_cycles,
                r.estimate_gap * 100.0,
                r.sim_slowdown,
                r.sim_slowdown_no_reuse,
                r.bus_utilization * 100.0
            )?;
        }
        writeln!(
            f,
            "max estimate gap {:.1}%, max simulated slowdown {:.2}×",
            self.max_estimate_gap() * 100.0,
            self.max_slowdown()
        )
    }
}

/// Runs the validation on VGG11's convolutional layers at 16×16 OUs.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn run(_ctx: &ExperimentContext) -> Result<ValidateResult, OdinError> {
    let net = zoo::vgg11(Dataset::Cifar10);
    let shape = OuShape::new(16, 16);
    let tile = TileConfig::paper();
    let cost = OuCostModel::paper();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let mut rows = Vec::new();
    for layer in net.layers() {
        let mapping = LayerMapping::new(layer.fan_in(), layer.fan_out(), 128)?;
        // Synthetic weights pruned to the descriptor's row sparsity.
        let mut w = Tensor::from_vec(
            vec![layer.fan_in(), layer.fan_out()],
            (0..layer.fan_in() * layer.fan_out())
                .map(|_| rng.gen_range(0.05..1.0))
                .collect(),
        )
        .expect("sized");
        prune_rows(&mut w, layer.sparsity());
        let as_f64: Vec<Vec<f64>> = (0..layer.fan_in())
            .map(|r| {
                (0..layer.fan_out())
                    .map(|c| f64::from(w.get(&[r, c])))
                    .collect()
            })
            .collect();

        let scheduler = OuScheduler::new(shape);
        let mut exact_total = 0u64;
        let mut per_xbar = Vec::new();
        let mut estimate_total = 0u64;
        for tile_map in mapping.tiles() {
            let mask = mapping.tile_nonzero_mask(&as_f64, tile_map)?;
            let cycles = scheduler.count_cycles(&mask);
            exact_total += cycles;
            per_xbar.push(cycles);
            estimate_total +=
                estimate_cycles(tile_map.rows(), tile_map.cols(), layer.sparsity(), shape);
        }
        // One tile holds 96 crossbars; simulate the busiest tile's
        // worth of this layer's crossbars.
        let sim_slice: Vec<u64> = per_xbar
            .iter()
            .copied()
            .take(tile.crossbars_per_tile())
            .collect();
        // The IR holds one row window while the scheduler sweeps the
        // column groups — that is the reuse factor.
        let logical_cols_per_tile = 64usize;
        let reuse = logical_cols_per_tile.div_ceil((shape.cols() / 2).max(1)) as u64;
        let report = simulate_layer(&tile, &cost, shape, &sim_slice, reuse.max(1));
        let naive = simulate_layer(&tile, &cost, shape, &sim_slice, 1);
        rows.push(ValidateRow {
            layer: layer.name().to_string(),
            estimated_cycles: estimate_total,
            exact_cycles: exact_total,
            estimate_gap: estimate_total as f64 / exact_total.max(1) as f64 - 1.0,
            sim_slowdown: report.slowdown(),
            sim_slowdown_no_reuse: naive.slowdown(),
            bus_utilization: report.bus_utilization,
        });
    }
    Ok(ValidateResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_models_agree_within_bounds() {
        let result = run(&ExperimentContext::quick()).unwrap();
        assert_eq!(result.rows.len(), 9);
        // Global row pruning distributes unevenly over ragged tiles,
        // so the closed form deviates per layer — but stays within
        // ~30 % and is unbiased enough that the mean gap is small.
        assert!(
            result.max_estimate_gap() < 0.35,
            "estimate gap {}",
            result.max_estimate_gap()
        );
        let mean_gap: f64 =
            result.rows.iter().map(|r| r.estimate_gap).sum::<f64>() / result.rows.len() as f64;
        assert!(mean_gap.abs() < 0.10, "mean gap {mean_gap}");
        // With IR reuse (the real dataflow) the bus adds little on top
        // of Eq. 1; the pessimistic no-reuse bound shows why the IR
        // exists.
        assert!(
            result.max_slowdown() < 1.5,
            "slowdown {}",
            result.max_slowdown()
        );
        for r in &result.rows {
            assert!(
                r.sim_slowdown <= r.sim_slowdown_no_reuse + 1e-9,
                "{}",
                r.layer
            );
        }
        assert!(result.to_string().contains("Validation"));
    }
}
