//! One module per paper table/figure, plus the ablation studies.
//!
//! Every experiment exposes a `run(&ExperimentContext) -> Result<T>`
//! where `T: Display + Serialize`; the corresponding binary prints the
//! table and drops a JSON record under `results/`.

pub mod ablations;
pub mod chaos;
pub mod exec;
pub mod fault_campaign;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod overhead;
pub mod parallel_campaign;
pub mod search_bench;
pub mod search_overhead;
pub mod serving;
pub mod table1;
pub mod telemetry;
pub mod validate;

use std::io::Write as _;
use std::path::PathBuf;

/// Writes an experiment's JSON record under `results/` (created on
/// demand, workspace root when run via `cargo run`).
///
/// # Errors
///
/// Returns I/O errors from directory creation or writing.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut file = std::fs::File::create(&path)?;
    let json = serde_json::to_string_pretty(value).map_err(std::io::Error::other)?;
    file.write_all(json.as_bytes())?;
    Ok(path)
}

/// Formats a ratio column like the paper ("3.9×").
#[must_use]
pub fn ratio(value: f64) -> String {
    format!("{value:.2}×")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(3.94), "3.94×");
        assert_eq!(ratio(1.0), "1.00×");
    }
}
