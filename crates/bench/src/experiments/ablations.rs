//! Ablation studies of Odin's design choices (DESIGN.md §5): buffer
//! size, search bound K, feature masking, and the η threshold.

use odin_core::search::SearchStrategy;
use odin_core::{offline, OdinConfig, OdinError, OdinRuntime};
use odin_dnn::zoo::{self, Dataset};
use odin_units::Seconds;
use serde::Serialize;

use crate::setup::ExperimentContext;

/// Buffer-size sweep row.
#[derive(Debug, Clone, Serialize)]
pub struct BufferRow {
    /// Buffer capacity.
    pub capacity: usize,
    /// Policy updates fired during the campaign.
    pub updates: usize,
    /// Mismatch rate over the final quarter of the campaign.
    pub late_mismatch_rate: f64,
    /// Buffer storage in bytes.
    pub storage_bytes: usize,
}

/// The buffer-size ablation.
#[derive(Debug, Clone, Serialize)]
pub struct BufferAblation {
    /// One row per capacity.
    pub rows: Vec<BufferRow>,
}

impl std::fmt::Display for BufferAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Ablation — training-buffer capacity (paper: 50)")?;
        writeln!(
            f,
            "{:>9} {:>8} {:>20} {:>9}",
            "capacity", "updates", "late mismatch rate", "bytes"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>9} {:>8} {:>20.3} {:>9}",
                r.capacity, r.updates, r.late_mismatch_rate, r.storage_bytes
            )?;
        }
        Ok(())
    }
}

fn late_mismatch(report: &odin_core::CampaignReport) -> f64 {
    let start = report.runs.len() * 3 / 4;
    let late = &report.runs[start..];
    let total: usize = late.iter().map(|r| r.decisions.len()).sum();
    if total == 0 {
        return 0.0;
    }
    let mismatches: usize = late
        .iter()
        .flat_map(|r| &r.decisions)
        .filter(|d| d.mismatch)
        .count();
    mismatches as f64 / total as f64
}

/// Runs the buffer-capacity sweep on the unseen VGG11.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn buffer_sweep(ctx: &ExperimentContext) -> Result<BufferAblation, OdinError> {
    let net = zoo::vgg11(Dataset::Cifar10);
    let mut rows = Vec::new();
    for capacity in [10usize, 25, 50, 100] {
        let config = OdinConfig::builder().buffer_capacity(capacity).build()?;
        let base = ctx.odin_for(&net, Dataset::Cifar10)?;
        let mut rt = OdinRuntime::builder(config)
            .policy(base.policy().clone())
            .build()?;
        let report = rt.run_campaign(&net, &ctx.schedule)?;
        rows.push(BufferRow {
            capacity,
            updates: report.policy_updates(),
            late_mismatch_rate: late_mismatch(&report),
            storage_bytes: odin_policy::ReplayBuffer::new(capacity).storage_bytes(),
        });
    }
    Ok(BufferAblation { rows })
}

/// Search-bound sweep row.
#[derive(Debug, Clone, Serialize)]
pub struct KRow {
    /// Strategy label.
    pub label: String,
    /// Total campaign EDP (J·s).
    pub total_edp: f64,
    /// Mean search evaluations per layer decision.
    pub evaluations_per_layer: f64,
}

/// The K-bound ablation.
#[derive(Debug, Clone, Serialize)]
pub struct KAblation {
    /// One row per strategy.
    pub rows: Vec<KRow>,
}

impl std::fmt::Display for KAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Ablation — search bound K (paper: K = 3)")?;
        writeln!(
            f,
            "{:<10} {:>14} {:>12}",
            "strategy", "EDP (J·s)", "evals/layer"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>14.4e} {:>12.1}",
                r.label, r.total_edp, r.evaluations_per_layer
            )?;
        }
        Ok(())
    }
}

/// Runs the K sweep (K ∈ {1, 3, 5} and exhaustive) on VGG11.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn k_sweep(ctx: &ExperimentContext) -> Result<KAblation, OdinError> {
    let net = zoo::vgg11(Dataset::Cifar10);
    let strategies = [
        SearchStrategy::ResourceBounded { k: 1 },
        SearchStrategy::ResourceBounded { k: 3 },
        SearchStrategy::ResourceBounded { k: 5 },
        SearchStrategy::Exhaustive,
    ];
    let mut rows = Vec::new();
    for strategy in strategies {
        let config = OdinConfig::builder().strategy(strategy).build()?;
        let base = ctx.odin_for(&net, Dataset::Cifar10)?;
        let mut rt = OdinRuntime::builder(config)
            .policy(base.policy().clone())
            .build()?;
        let report = rt.run_campaign(&net, &ctx.schedule)?;
        let decisions: usize = report.runs.iter().map(|r| r.decisions.len()).sum();
        let evals: usize = report
            .runs
            .iter()
            .flat_map(|r| &r.decisions)
            .map(|d| d.search_evaluations)
            .sum();
        rows.push(KRow {
            label: strategy.to_string(),
            total_edp: report.total_edp().value(),
            evaluations_per_layer: evals as f64 / decisions.max(1) as f64,
        });
    }
    Ok(KAblation { rows })
}

/// Feature-masking ablation row.
#[derive(Debug, Clone, Serialize)]
pub struct FeatureRow {
    /// Which feature was masked ("none", "time", "sparsity").
    pub masked: String,
    /// Exact agreement with exhaustive labels on the held-out model.
    pub agreement: f64,
    /// Within-K(=3) agreement.
    pub agreement_within_k: f64,
}

/// The feature ablation.
#[derive(Debug, Clone, Serialize)]
pub struct FeatureAblation {
    /// One row per masking.
    pub rows: Vec<FeatureRow>,
}

impl std::fmt::Display for FeatureAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Ablation — policy input features")?;
        writeln!(f, "{:<10} {:>10} {:>12}", "masked", "exact", "within-K")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>10.3} {:>12.3}",
                r.masked, r.agreement, r.agreement_within_k
            )?;
        }
        Ok(())
    }
}

/// Runs the feature ablation: mask Φ₄ (time) or Φ₂ (sparsity) at
/// prediction time and measure agreement with exhaustive labels.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn feature_ablation(ctx: &ExperimentContext) -> Result<FeatureAblation, OdinError> {
    let model = ctx.analytic();
    let eta = ctx.config.eta();
    let net = zoo::vgg11(Dataset::Cifar10);
    let policy = ctx.odin_for(&net, Dataset::Cifar10)?.policy().clone();
    let labels =
        offline::label_examples(&model, &[net], eta, &offline::default_sample_ages(), 500)?;

    let mask = |which: &str| -> Vec<odin_policy::TrainingExample> {
        labels
            .iter()
            .map(|ex| {
                let mut f = ex.features;
                match which {
                    "time" => f[3] = 0.0,
                    "sparsity" => f[1] = 0.0,
                    _ => {}
                }
                odin_policy::TrainingExample::new(f, ex.row_level, ex.col_level)
            })
            .collect()
    };

    let mut rows = Vec::new();
    for which in ["none", "time", "sparsity"] {
        let masked = mask(which);
        rows.push(FeatureRow {
            masked: which.to_string(),
            agreement: policy.agreement(&masked),
            agreement_within_k: policy.agreement_within(&masked, 3),
        });
    }
    Ok(FeatureAblation { rows })
}

/// Activation-sparsity extension row.
#[derive(Debug, Clone, Serialize)]
pub struct ActivationRow {
    /// Workload name.
    pub network: String,
    /// Campaign EDP with weight-only sparsity (the paper's setting).
    pub weight_only_edp: f64,
    /// Campaign EDP with joint weight+activation skipping.
    pub joint_edp: f64,
    /// EDP reduction from the extension.
    pub gain: f64,
}

/// The activation-sparsity extension study.
#[derive(Debug, Clone, Serialize)]
pub struct ActivationAblation {
    /// One row per workload evaluated.
    pub rows: Vec<ActivationRow>,
}

impl std::fmt::Display for ActivationAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Extension — joint weight/activation sparsity (Sparse-ReRAM-engine lineage)"
        )?;
        writeln!(
            f,
            "{:<12} {:>16} {:>14} {:>8}",
            "network", "weight-only EDP", "joint EDP", "gain"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>16.4e} {:>14.4e} {:>7.2}×",
                r.network, r.weight_only_edp, r.joint_edp, r.gain
            )?;
        }
        Ok(())
    }
}

/// Runs the activation-sparsity extension study on three CIFAR-10
/// workloads.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn activation_sweep(ctx: &ExperimentContext) -> Result<ActivationAblation, OdinError> {
    let mut rows = Vec::new();
    for net in [
        zoo::vgg11(Dataset::Cifar10),
        zoo::resnet18(Dataset::Cifar10),
        zoo::vit(Dataset::Cifar10),
    ] {
        let base_policy = ctx.odin_for(&net, Dataset::Cifar10)?.policy().clone();
        let run = |joint: bool, policy| -> Result<f64, OdinError> {
            let config = OdinConfig::builder()
                .exploit_activation_sparsity(joint)
                .build()?;
            let mut rt = OdinRuntime::builder(config).policy(policy).build()?;
            Ok(rt.run_campaign(&net, &ctx.schedule)?.total_edp().value())
        };
        let weight_only_edp = run(false, base_policy.clone())?;
        let joint_edp = run(true, base_policy)?;
        rows.push(ActivationRow {
            network: net.name().to_string(),
            weight_only_edp,
            joint_edp,
            gain: weight_only_edp / joint_edp,
        });
    }
    Ok(ActivationAblation { rows })
}

/// Thermal-coupling extension row.
#[derive(Debug, Clone, Serialize)]
pub struct ThermalRow {
    /// Sustained tile power (watts).
    pub power_w: f64,
    /// Die temperature (°C).
    pub temperature_c: f64,
    /// Drift acceleration factor.
    pub acceleration: f64,
    /// Reprogramming passes over the campaign.
    pub reprograms: usize,
    /// Total campaign EDP (J·s).
    pub total_edp: f64,
}

/// The thermal-coupling extension study.
#[derive(Debug, Clone, Serialize)]
pub struct ThermalAblation {
    /// One row per power level.
    pub rows: Vec<ThermalRow>,
}

impl std::fmt::Display for ThermalAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Extension — thermal drift acceleration (TEFLON lineage, VGG11 + 16×16)"
        )?;
        writeln!(
            f,
            "{:>8} {:>8} {:>7} {:>11} {:>14}",
            "P (W)", "T (°C)", "accel", "reprograms", "EDP (J·s)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8.1} {:>8.1} {:>6.1}× {:>11} {:>14.4e}",
                r.power_w, r.temperature_c, r.acceleration, r.reprograms, r.total_edp
            )?;
        }
        Ok(())
    }
}

/// Runs the thermal sweep: hotter tiles drift faster, so the
/// homogeneous 16×16 baseline reprograms more often and pays more
/// total EDP.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn thermal_sweep(ctx: &ExperimentContext) -> Result<ThermalAblation, OdinError> {
    use odin_device::ThermalModel;
    use odin_units::{Seconds, Watts};
    use odin_xbar::{NonIdealityModel, OuShape};

    let net = zoo::vgg11(Dataset::Cifar10);
    let thermal = ThermalModel::paper();
    let mut rows = Vec::new();
    for power_w in [0.0, 0.5, 1.0, 2.0] {
        let acceleration = thermal.acceleration_at_power(Watts::new(power_w));
        let base = NonIdealityModel::for_config(ctx.config.crossbar());
        let tau = NonIdealityModel::DEFAULT_DRIFT_TIMESCALE / acceleration;
        let heated = base.with_drift_timescale(Seconds::new(tau));
        let analytic = ctx.analytic().with_nonideality(heated);
        // HomogeneousRuntime builds its own model, so drive the
        // reprogram-or-run loop directly against the heated one.
        let mut reprograms = 0usize;
        let mut last_programmed = 0.0f64;
        let mut energy = 0.0f64;
        let mut latency = 0.0f64;
        for t in ctx.schedule.times() {
            let age = Seconds::new((t.value() - last_programmed).max(0.0));
            let worst = analytic.worst_impact(&net, OuShape::new(16, 16), age);
            let age = if worst >= ctx.config.eta() {
                reprograms += 1;
                last_programmed = t.value();
                let cost = analytic.reprogram_cost(&net);
                energy += cost.energy().value();
                latency += cost.latency().value();
                Seconds::ZERO
            } else {
                age
            };
            let cost = analytic.evaluate_network(&net, OuShape::new(16, 16), age)?;
            energy += cost.energy.value();
            latency += cost.latency.value();
        }
        rows.push(ThermalRow {
            power_w,
            temperature_c: thermal.temperature(Watts::new(power_w)),
            acceleration,
            reprograms,
            total_edp: energy * latency,
        });
    }
    Ok(ThermalAblation { rows })
}

/// η-threshold sweep row.
#[derive(Debug, Clone, Serialize)]
pub struct EtaRow {
    /// The threshold η.
    pub eta: f64,
    /// Reprogramming passes over the campaign.
    pub reprograms: usize,
    /// Total campaign EDP (J·s).
    pub total_edp: f64,
    /// Mean chosen OU product at `t₀`.
    pub fresh_mean_product: f64,
}

/// The η ablation.
#[derive(Debug, Clone, Serialize)]
pub struct EtaAblation {
    /// One row per η.
    pub rows: Vec<EtaRow>,
}

impl std::fmt::Display for EtaAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Ablation — non-ideality threshold η (paper: 0.5%)")?;
        writeln!(
            f,
            "{:>8} {:>11} {:>14} {:>16}",
            "η", "reprograms", "EDP (J·s)", "fresh mean R·C"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8.4} {:>11} {:>14.4e} {:>16.1}",
                r.eta, r.reprograms, r.total_edp, r.fresh_mean_product
            )?;
        }
        Ok(())
    }
}

/// Runs the η sweep on VGG11.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn eta_sweep(ctx: &ExperimentContext) -> Result<EtaAblation, OdinError> {
    let net = zoo::vgg11(Dataset::Cifar10);
    let mut rows = Vec::new();
    for eta in [0.002, 0.0035, 0.005, 0.01, 0.02] {
        let config = OdinConfig::builder().eta(eta).build()?;
        let mut rng = ctx.rng();
        let all = zoo::all_models(Dataset::Cifar10);
        let known = offline::leave_one_out(&all, net.name());
        let policy = offline::bootstrap_policy(
            &ctx.analytic(),
            &known,
            eta,
            ctx.config.policy().clone(),
            &mut rng,
        )?;
        let mut rt = OdinRuntime::builder(config).policy(policy).build()?;
        let fresh = rt.run_inference(&net, Seconds::new(1.0))?;
        let fresh_mean_product = fresh
            .decisions
            .iter()
            .map(|d| d.chosen.area() as f64)
            .sum::<f64>()
            / fresh.decisions.len().max(1) as f64;
        let report = rt.run_campaign(&net, &ctx.schedule)?;
        rows.push(EtaRow {
            eta,
            reprograms: report.reprogram_count(),
            total_edp: report.total_edp().value(),
            fresh_mean_product,
        });
    }
    Ok(EtaAblation { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_core::TimeSchedule;

    fn quick_ctx() -> ExperimentContext {
        let mut ctx = ExperimentContext::quick();
        ctx.schedule = TimeSchedule::geometric(1.0, 1e8, 40);
        ctx
    }

    #[test]
    fn buffer_sweep_smaller_buffers_update_more() {
        let result = buffer_sweep(&quick_ctx()).unwrap();
        assert_eq!(result.rows.len(), 4);
        assert!(result.rows[0].updates >= result.rows[3].updates);
        assert!(result.to_string().contains("capacity"));
    }

    #[test]
    fn k_sweep_evaluations_grow_with_k() {
        let result = k_sweep(&quick_ctx()).unwrap();
        assert_eq!(result.rows.len(), 4);
        assert!(result.rows[0].evaluations_per_layer < result.rows[2].evaluations_per_layer);
        // Exhaustive evaluates the full 36-shape grid per layer.
        assert!((result.rows[3].evaluations_per_layer - 36.0).abs() < 1.0);
        assert!(result.to_string().contains("K"));
    }

    #[test]
    fn feature_masking_hurts_agreement() {
        let result = feature_ablation(&quick_ctx()).unwrap();
        let get = |m: &str| result.rows.iter().find(|r| r.masked == m).unwrap().clone();
        let none = get("none");
        let time = get("time");
        assert!(
            none.agreement >= time.agreement,
            "time feature is load-bearing"
        );
        assert!(none.agreement_within_k > 0.8);
        assert!(result.to_string().contains("features"));
    }

    #[test]
    fn activation_sparsity_always_helps() {
        let result = activation_sweep(&quick_ctx()).unwrap();
        assert_eq!(result.rows.len(), 3);
        for r in &result.rows {
            assert!(r.gain >= 1.0, "{}: {}", r.network, r.gain);
        }
        // ReLU CNNs benefit more than the GELU transformer.
        let gain = |name: &str| result.rows.iter().find(|r| r.network == name).unwrap().gain;
        assert!(
            gain("vgg11") > gain("vit"),
            "vgg {} vit {}",
            gain("vgg11"),
            gain("vit")
        );
        assert!(result.to_string().contains("activation"));
    }

    #[test]
    fn thermal_sweep_hotter_means_more_reprogramming() {
        let result = thermal_sweep(&quick_ctx()).unwrap();
        assert_eq!(result.rows.len(), 4);
        let cold = &result.rows[0];
        let hot = &result.rows[3];
        assert!((cold.acceleration - 1.0).abs() < 1e-9);
        assert!((hot.acceleration - 4.0).abs() < 1e-6);
        assert!(hot.reprograms > cold.reprograms);
        assert!(hot.total_edp > cold.total_edp);
        assert!(result.to_string().contains("thermal"));
    }

    #[test]
    fn eta_sweep_tighter_threshold_reprograms_more() {
        let result = eta_sweep(&quick_ctx()).unwrap();
        assert_eq!(result.rows.len(), 5);
        let tightest = &result.rows[0];
        let loosest = &result.rows[4];
        assert!(tightest.reprograms >= loosest.reprograms);
        assert!(tightest.fresh_mean_product <= loosest.fresh_mean_product);
        assert!(result.to_string().contains("η"));
    }
}
