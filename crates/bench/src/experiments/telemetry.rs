//! Telemetry overhead and trace-artifact experiment: the same
//! lockstep campaign run with telemetry off and on, proving the
//! traced run is bit-identical to the untraced one, that the
//! aggregated [`TelemetrySummary`] reconciles with the report's
//! cache/engine counters, and that recording costs less than the
//! 2 % wall-clock target.
//!
//! The `trace_campaign` binary drives this module: it records the
//! comparison into `BENCH_telemetry.json` at the workspace root and
//! flushes the traced run's event ring into
//! `results/trace_campaign.trace.json`, a Chrome `trace_event` file
//! loadable in [Perfetto](https://ui.perfetto.dev).

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use odin_core::prelude::*;
use odin_dnn::zoo::{self, Dataset};
use serde::Serialize;

use crate::experiments::chaos::campaign_digest;
use crate::BenchMeta;

/// The overhead budget telemetry must stay under: 2 % of the
/// untraced campaign's wall-clock.
pub const OVERHEAD_TARGET_FRAC: f64 = 0.02;

/// One trace-campaign workload: a VGG11/CIFAR-10 lockstep campaign
/// with a fixed seed, run `samples` times per telemetry mode so the
/// comparison uses best-of wall-clocks (robust to scheduler noise).
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    /// Scheduled inference count.
    pub runs: usize,
    /// Worker shards (lockstep).
    pub shards: usize,
    /// Timing samples per telemetry mode; the fastest counts.
    pub samples: usize,
    /// Policy-initialization seed.
    pub seed: u64,
}

impl TraceWorkload {
    /// The reduced smoke workload (`--quick`).
    #[must_use]
    pub fn quick() -> Self {
        TraceWorkload {
            runs: 24,
            shards: 2,
            samples: 2,
            seed: 7,
        }
    }

    /// The full workload.
    #[must_use]
    pub fn paper() -> Self {
        TraceWorkload {
            runs: 96,
            shards: 2,
            samples: 3,
            seed: 7,
        }
    }

    /// Runs one campaign sample under `telemetry` (disabled for the
    /// baseline) and returns the traced recorder handle, the report,
    /// and the wall-clock in milliseconds.
    fn sample(&self, telemetry: Telemetry) -> Result<(Telemetry, CampaignReport, f64), OdinError> {
        let net = zoo::vgg11(Dataset::Cifar10);
        let schedule = TimeSchedule::geometric(1.0, 1e7, self.runs);
        let mut runtime = OdinRuntime::builder(OdinConfig::paper())
            .rng_seed(self.seed)
            .telemetry(telemetry)
            .build()?;
        let engine = CampaignEngine::new(self.shards).with_mode(ShardMode::Lockstep);
        let start = Instant::now();
        let report = engine.run_campaign(&mut runtime, &net, &schedule)?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        Ok((runtime.telemetry().clone(), report, ms))
    }
}

/// The recorded comparison (`BENCH_telemetry.json`).
#[derive(Debug, Clone, Serialize)]
pub struct TraceCampaignReport {
    /// Schema version and configuration fingerprint shared by every
    /// `BENCH_*.json` artifact.
    pub meta: BenchMeta,
    /// Scheduled inference count.
    pub runs: usize,
    /// Worker shards (lockstep).
    pub shards: usize,
    /// Timing samples per telemetry mode (best-of counts).
    pub samples: usize,
    /// Telemetry-off wall-clock, milliseconds (best of `samples`).
    pub baseline_ms: f64,
    /// Telemetry-on wall-clock, milliseconds (best of `samples`).
    pub traced_ms: f64,
    /// `(traced − baseline) / baseline`, clamped at 0.
    pub overhead_frac: f64,
    /// The budget ([`OVERHEAD_TARGET_FRAC`]).
    pub overhead_target_frac: f64,
    /// `overhead_frac ≤ overhead_target_frac`.
    pub within_target: bool,
    /// `true` iff the traced report's decisions, costs, and EDP are
    /// bit-identical to the untraced run's AND the untraced report
    /// carries the empty default summary — telemetry observes, never
    /// perturbs.
    pub perturbation_free: bool,
    /// `true` iff the traced summary's counters reconcile with the
    /// report's own cache and engine statistics
    /// (see [`counters_reconcile`]).
    pub counters_reconcile: bool,
    /// Events held in the traced run's ring after the campaign.
    pub events_captured: usize,
    /// Events evicted from the ring during the campaign.
    pub events_dropped: u64,
    /// Where the Chrome-trace artifact was written, when it was.
    pub trace_path: Option<String>,
}

impl fmt::Display for TraceCampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace campaign: {} runs × {} shards (lockstep), best of {} samples",
            self.runs, self.shards, self.samples
        )?;
        writeln!(
            f,
            "telemetry off: {:.1} ms   on: {:.1} ms   overhead: {:.2}% (target ≤ {:.2}%: {})",
            self.baseline_ms,
            self.traced_ms,
            self.overhead_frac * 100.0,
            self.overhead_target_frac * 100.0,
            if self.within_target { "yes" } else { "NO" }
        )?;
        writeln!(
            f,
            "perturbation-free (bit-identical report): {}",
            if self.perturbation_free { "yes" } else { "NO" }
        )?;
        writeln!(
            f,
            "counters reconcile with cache/engine stats: {}",
            if self.counters_reconcile { "yes" } else { "NO" }
        )?;
        write!(
            f,
            "events captured: {} ({} dropped)",
            self.events_captured, self.events_dropped
        )
    }
}

/// Everything one experiment run produces: the serializable report
/// plus the traced recorder, whose event ring the caller can flush
/// into a trace sink.
#[derive(Debug)]
pub struct TraceOutcome {
    /// The recorded comparison.
    pub report: TraceCampaignReport,
    /// The traced run's recorder (enabled, ring intact).
    pub telemetry: Telemetry,
}

/// `true` iff `report.telemetry` reconciles with the report's own
/// cache and engine statistics — the cross-subsystem invariant the
/// runtime maintains by bumping telemetry counters at the exact sites
/// that bump [`CacheStats`] and [`EngineStats`]. In fault-free
/// lockstep, `runs_executed` follows the adopted lineage, one run per
/// round.
#[must_use]
pub fn counters_reconcile(report: &CampaignReport) -> bool {
    let t = &report.telemetry;
    t.enabled
        && t.counter("runs_executed") == report.engine.rounds
        && t.counter("engine_rounds") == report.engine.rounds
        && t.counter("engine_speculated") == report.engine.speculated
        && t.counter("engine_committed") == report.engine.committed
        && t.counter("engine_discarded") == report.engine.discarded
        && t.counter("cache_full_hits") == report.cache.full_hits
        && t.counter("cache_geometry_hits") == report.cache.geometry_hits
        && t.counter("cache_misses") == report.cache.misses
        && t.span("campaign").is_some_and(|s| s.count == 1)
        && t.span("run")
            .is_some_and(|s| s.count == report.engine.rounds)
}

/// Runs the comparison: `samples` untraced campaigns, `samples`
/// traced ones, best-of wall-clocks, equivalence and reconciliation
/// checks. The trace artifact is NOT written here — call
/// [`write_trace`] with the returned recorder.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn run(workload: &TraceWorkload) -> Result<TraceOutcome, OdinError> {
    let samples = workload.samples.max(1);

    let mut baseline_ms = f64::INFINITY;
    let mut baseline_report = None;
    for _ in 0..samples {
        let (_, report, ms) = workload.sample(Telemetry::disabled())?;
        baseline_ms = baseline_ms.min(ms);
        baseline_report = Some(report);
    }
    let baseline_report = baseline_report.expect("at least one sample");

    let mut traced_ms = f64::INFINITY;
    let mut traced = None;
    for _ in 0..samples {
        let (telemetry, report, ms) = workload.sample(Telemetry::enabled())?;
        traced_ms = traced_ms.min(ms);
        traced = Some((telemetry, report));
    }
    let (telemetry, traced_report) = traced.expect("at least one sample");

    let overhead_frac = (traced_ms - baseline_ms).max(0.0) / baseline_ms.max(f64::MIN_POSITIVE);
    let perturbation_free = campaign_digest(&baseline_report) == campaign_digest(&traced_report)
        && baseline_report.telemetry == TelemetrySummary::default();

    let report = TraceCampaignReport {
        meta: BenchMeta::paper(),
        runs: workload.runs,
        shards: workload.shards,
        samples,
        baseline_ms,
        traced_ms,
        overhead_frac,
        overhead_target_frac: OVERHEAD_TARGET_FRAC,
        within_target: overhead_frac <= OVERHEAD_TARGET_FRAC,
        perturbation_free,
        counters_reconcile: counters_reconcile(&traced_report),
        events_captured: telemetry.events().len(),
        events_dropped: telemetry.dropped_events(),
        trace_path: None,
    };
    Ok(TraceOutcome { report, telemetry })
}

/// Flushes `telemetry`'s event ring as a Chrome `trace_event` file at
/// `path`, returning the number of events written.
///
/// # Errors
///
/// Returns I/O errors from writing the file.
pub fn write_trace_to(telemetry: &Telemetry, path: &Path) -> io::Result<usize> {
    let file = std::fs::File::create(path)?;
    let mut sink = ChromeTraceSink::new(io::BufWriter::new(file));
    telemetry.flush_to(&mut sink)
}

/// Flushes `telemetry`'s event ring into
/// `results/trace_campaign.trace.json` (created on demand, workspace
/// root when run via `cargo run`) and returns the path.
///
/// # Errors
///
/// Returns I/O errors from directory creation or writing.
pub fn write_trace(telemetry: &Telemetry) -> io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("trace_campaign.trace.json");
    write_trace_to(telemetry, &path)?;
    Ok(path)
}

/// Records the comparison into `BENCH_telemetry.json` at the
/// workspace root (same convention as `BENCH_kernel.json` and
/// `BENCH_chaos.json`: generated, never hand-edited).
///
/// # Errors
///
/// Returns I/O errors from writing the file.
pub fn write_report(report: &TraceCampaignReport) -> io::Result<PathBuf> {
    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_telemetry.json"
    ));
    let json = serde_json::to_string_pretty(report).map_err(io::Error::other)?;
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("odin-trace-{tag}-{}-{n}.json", std::process::id()))
    }

    fn tiny() -> TraceWorkload {
        TraceWorkload {
            runs: 6,
            shards: 2,
            samples: 1,
            seed: 7,
        }
    }

    #[test]
    fn traced_campaign_is_equivalent_and_reconciled() {
        let outcome = run(&tiny()).unwrap();
        let r = &outcome.report;
        assert!(r.perturbation_free, "telemetry must not perturb the run");
        assert!(r.counters_reconcile, "summary must match cache/engine");
        assert!(r.events_captured > 0, "the traced ring holds events");
        assert!(outcome.telemetry.is_enabled());
        assert_eq!(r.meta.schema_version, crate::BENCH_SCHEMA_VERSION);
        assert_eq!(r.meta, BenchMeta::paper(), "fingerprint is deterministic");
        let text = r.to_string();
        assert!(text.contains("perturbation-free"), "{text}");
    }

    #[test]
    fn trace_artifact_is_valid_chrome_trace_json() {
        let outcome = run(&tiny()).unwrap();
        let path = scratch("artifact");
        let written = write_trace_to(&outcome.telemetry, &path).unwrap();
        assert_eq!(written, outcome.report.events_captured);
        let text = std::fs::read_to_string(&path).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).expect("trace parses");
        let events = value["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(events.len(), written);
        assert!(events.iter().all(|e| e["ph"] == "X"));
        std::fs::remove_file(&path).ok();
    }
}
