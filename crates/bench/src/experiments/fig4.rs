//! Fig. 4: the OU-size distribution of ResNet18's layers shifts
//! toward fine-grained shapes as conductance drift accumulates.

use std::collections::BTreeMap;

use odin_core::OdinError;
use odin_dnn::zoo::{self, Dataset};
use odin_units::Seconds;
use serde::Serialize;

use crate::setup::ExperimentContext;

/// The OU-size histogram at one time instant.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Snapshot {
    /// The time instant (seconds since programming).
    pub time: f64,
    /// `R·C` product → number of DNN layers using that size.
    pub histogram: BTreeMap<usize, usize>,
}

impl Fig4Snapshot {
    /// The layer-count-weighted mean OU product.
    #[must_use]
    pub fn mean_product(&self) -> f64 {
        let (sum, n) = self
            .histogram
            .iter()
            .fold((0usize, 0usize), |(s, n), (&p, &c)| (s + p * c, n + c));
        if n == 0 {
            return 0.0;
        }
        sum as f64 / n as f64
    }
}

/// The Fig. 4 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Result {
    /// Snapshots in time order.
    pub snapshots: Vec<Fig4Snapshot>,
}

impl std::fmt::Display for Fig4Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 4 — ResNet18 OU-size distribution shift under drift"
        )?;
        for snap in &self.snapshots {
            writeln!(
                f,
                "t = {:>10.2e} s   mean R·C = {:>7.1}",
                snap.time,
                snap.mean_product()
            )?;
            for (product, count) in &snap.histogram {
                writeln!(f, "    R·C {product:>5}: {count:>3} layers")?;
            }
        }
        Ok(())
    }
}

/// The Fig. 4 sample instants.
#[must_use]
pub fn sample_times() -> Vec<f64> {
    vec![1.0, 1e2, 1e4, 1e6, 5e7]
}

/// Runs the Fig. 4 experiment: the OU histogram of ResNet18 under an
/// adapting Odin runtime at increasing drift ages.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn run(ctx: &ExperimentContext) -> Result<Fig4Result, OdinError> {
    let net = zoo::resnet18(Dataset::Cifar10);
    let mut odin = ctx.odin_for(&net, Dataset::Cifar10)?;
    let mut snapshots = Vec::new();
    for t in sample_times() {
        let record = odin.run_inference(&net, Seconds::new(t))?;
        let mut histogram = BTreeMap::new();
        for d in &record.decisions {
            *histogram.entry(d.chosen.area()).or_insert(0) += 1;
        }
        snapshots.push(Fig4Snapshot { time: t, histogram });
    }
    Ok(Fig4Result { snapshots })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_shifts_left_over_time() {
        let result = run(&ExperimentContext::quick()).unwrap();
        assert_eq!(result.snapshots.len(), 5);
        let first = result.snapshots.first().unwrap().mean_product();
        let last = result.snapshots.last().unwrap().mean_product();
        assert!(
            last < first,
            "mean OU product must shrink with drift: {first} → {last}"
        );
        // Every snapshot covers all 21 layers.
        for snap in &result.snapshots {
            let layers: usize = snap.histogram.values().sum();
            assert_eq!(layers, 21);
        }
        assert!(result.to_string().contains("Fig. 4"));
    }
}
