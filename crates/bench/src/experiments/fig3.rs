//! Fig. 3: layer-wise OU size (R·C product) and weight sparsity for
//! ResNet18 (CIFAR-10) at `t₀`.

use odin_core::OdinError;
use odin_dnn::zoo::{self, Dataset};
use odin_units::Seconds;
use serde::Serialize;

use crate::setup::ExperimentContext;

/// One ResNet18 layer's row.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Row {
    /// Layer index.
    pub layer: usize,
    /// Layer name.
    pub name: String,
    /// Weight sparsity in percent.
    pub sparsity_pct: f64,
    /// Chosen OU rows `R`.
    pub ou_rows: usize,
    /// Chosen OU columns `C`.
    pub ou_cols: usize,
    /// The `R·C` product plotted in Fig. 3.
    pub ou_product: usize,
}

/// The Fig. 3 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Result {
    /// Per-layer rows in execution order.
    pub rows: Vec<Fig3Row>,
}

impl std::fmt::Display for Fig3Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 3 — ResNet18 (CIFAR-10) layer-wise OU size at t₀")?;
        writeln!(
            f,
            "{:<6} {:<14} {:>10} {:>8} {:>10}",
            "layer", "name", "sparsity%", "OU", "R·C"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<6} {:<14} {:>10.1} {:>4}×{:<3} {:>10}",
                row.layer, row.name, row.sparsity_pct, row.ou_rows, row.ou_cols, row.ou_product
            )?;
        }
        Ok(())
    }
}

/// Runs the Fig. 3 experiment: one Odin inference of ResNet18 at `t₀`
/// with the leave-one-out bootstrapped policy.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn run(ctx: &ExperimentContext) -> Result<Fig3Result, OdinError> {
    let net = zoo::resnet18(Dataset::Cifar10);
    let mut odin = ctx.odin_for(&net, Dataset::Cifar10)?;
    let record = odin.run_inference(&net, Seconds::new(1.0))?;
    let rows = record
        .decisions
        .iter()
        .map(|d| {
            let layer = &net.layers()[d.layer_index];
            Fig3Row {
                layer: d.layer_index,
                name: layer.name().to_string(),
                sparsity_pct: layer.sparsity() * 100.0,
                ou_rows: d.chosen.rows(),
                ou_cols: d.chosen.cols(),
                ou_product: d.chosen.area(),
            }
        })
        .collect();
    Ok(Fig3Result { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape_holds() {
        let result = run(&ExperimentContext::quick()).unwrap();
        assert_eq!(result.rows.len(), 21, "ResNet18 has 21 MVM layers");
        // Fig. 3's qualitative claim: initial layers get finer OUs
        // than the largest late-layer OUs.
        let first = result.rows.first().unwrap().ou_product;
        let max_late = result.rows[10..]
            .iter()
            .map(|r| r.ou_product)
            .max()
            .unwrap();
        assert!(max_late > first, "late max {max_late} vs first {first}");
        // Sparsity profile is the "highly sparse" pruning regime.
        assert!(result.rows.iter().any(|r| r.sparsity_pct > 50.0));
        assert!(result.to_string().contains("ResNet18"));
    }
}
