//! Fault campaign: paper-schedule Odin runs under seeded stuck-at
//! fault sweeps (rate ∈ {0, 0.1 %, 1 %}) with a finite write-endurance
//! budget, reporting EDP degradation versus the fault-free fabric and
//! the degradation-ladder activity (reprograms, remaps, grid shrinks,
//! out-of-service retirements, degraded serves, fraction of scheduled
//! inferences served).
//!
//! The fault-free sweep point doubles as a regression guard: with an
//! empty fault map and ample endurance headroom the fabric-tracked
//! runtime must reproduce the untracked runtime's EDP bit for bit.

use odin_arch::{Placement, SystemConfig};
use odin_core::fabric::{DegradationPolicy, FabricHealth};
use odin_core::{CampaignReport, OdinError};
use odin_device::{EnduranceModel, FaultInjector};
use odin_dnn::zoo::{self, Dataset};
use rand::SeedableRng;
use serde::Serialize;

use crate::setup::ExperimentContext;

/// The swept stuck-at fault rates (fraction of cells).
pub const FAULT_RATES: [f64; 3] = [0.0, 0.001, 0.01];

/// Write-endurance budget (cycles to failure) for the campaign — small
/// enough that the ladder's wear rungs engage within the paper's
/// `1 s … 1e8 s` horizon, large enough that the fault-free sweep point
/// never touches them.
pub const ENDURANCE_CYCLES: f64 = 2.0;

/// One fault rate's row.
#[derive(Debug, Clone, Serialize)]
pub struct FaultCampaignRow {
    /// Stuck-at fault rate (fraction of cells).
    pub fault_rate: f64,
    /// Campaign EDP (total energy × total latency, J·s).
    pub total_edp: f64,
    /// EDP relative to the fault-free untracked runtime (1.0 = no
    /// degradation).
    pub edp_ratio: f64,
    /// Reprogramming passes.
    pub reprograms: usize,
    /// Layer remaps onto spare crossbar groups.
    pub remaps: usize,
    /// Wear-driven OU grid shrinks.
    pub grid_shrinks: usize,
    /// Crossbar groups retired for endurance exhaustion.
    pub out_of_service: usize,
    /// Layer decisions served degraded (smallest OU, η waived).
    pub degraded_decisions: usize,
    /// Fraction of scheduled inferences served.
    pub fraction_served: f64,
}

/// The fault-campaign result.
#[derive(Debug, Clone, Serialize)]
pub struct FaultCampaignResult {
    /// Workload name.
    pub network: String,
    /// Write-endurance budget per crossbar group.
    pub endurance_budget: u64,
    /// Spare crossbar groups provisioned from unused placement
    /// capacity.
    pub spare_groups: usize,
    /// One row per swept fault rate, in sweep order.
    pub rows: Vec<FaultCampaignRow>,
}

impl FaultCampaignResult {
    /// The row at a given fault rate, if swept.
    #[must_use]
    pub fn at_rate(&self, rate: f64) -> Option<&FaultCampaignRow> {
        self.rows.iter().find(|r| r.fault_rate == rate)
    }
}

impl std::fmt::Display for FaultCampaignResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fault campaign — {} under stuck-at sweeps (endurance budget {}, {} spare groups)",
            self.network, self.endurance_budget, self.spare_groups
        )?;
        writeln!(
            f,
            "{:>8} {:>12} {:>9} {:>10} {:>7} {:>8} {:>7} {:>9} {:>8}",
            "rate",
            "EDP (J·s)",
            "EDP×",
            "reprogram",
            "remap",
            "shrink",
            "o-o-s",
            "degraded",
            "served"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>8} {:>12.4e} {:>9.4} {:>10} {:>7} {:>8} {:>7} {:>9} {:>7.1}%",
                format!("{}%", row.fault_rate * 100.0),
                row.total_edp,
                row.edp_ratio,
                row.reprograms,
                row.remaps,
                row.grid_shrinks,
                row.out_of_service,
                row.degraded_decisions,
                row.fraction_served * 100.0
            )?;
        }
        Ok(())
    }
}

fn row_from(rate: f64, report: &CampaignReport, edp_ff: f64) -> FaultCampaignRow {
    let edp = report.total_edp().value();
    FaultCampaignRow {
        fault_rate: rate,
        total_edp: edp,
        edp_ratio: edp / edp_ff,
        reprograms: report.reprogram_count(),
        remaps: report.remap_count(),
        grid_shrinks: report.grid_shrink_count(),
        out_of_service: report.out_of_service_count(),
        degraded_decisions: report.degraded_decisions(),
        fraction_served: report.fraction_served(),
    }
}

/// Runs the fault campaign.
///
/// # Errors
///
/// Propagates mapping/placement failures from setup and from the
/// fault-free reference campaign (the fault sweeps themselves run
/// resiliently and record skips instead of failing).
pub fn run(ctx: &ExperimentContext) -> Result<FaultCampaignResult, OdinError> {
    let net = zoo::vgg11(Dataset::Cifar10);
    let system = SystemConfig::paper();
    let placement = Placement::greedy(&net, &system).map_err(|_| OdinError::InvalidConfig {
        name: "placement",
        reason: "workload does not fit the paper system",
    })?;
    let widest = placement
        .assignments()
        .iter()
        .map(|a| a.crossbars)
        .max()
        .unwrap_or(1);
    let spare_groups = placement.spare_groups(widest).min(32);

    // Fault-free reference: the untracked runtime.
    let mut reference = ctx.odin_for(&net, Dataset::Cifar10)?;
    let edp_ff = reference
        .run_campaign(&net, &ctx.schedule)?
        .total_edp()
        .value();

    let mut endurance_budget = 0;
    let mut rows = Vec::with_capacity(FAULT_RATES.len());
    for (sweep, &rate) in FAULT_RATES.iter().enumerate() {
        // A dedicated fault seed per sweep point, decoupled from the
        // policy RNG so fault placement never perturbs learning.
        let mut fault_rng = rand::rngs::StdRng::seed_from_u64(ctx.seed ^ (0xFA17 + sweep as u64));
        let fabric = FabricHealth::new(
            net.layers().len(),
            ctx.config.crossbar().size(),
            spare_groups,
            &FaultInjector::new(rate, 0.5),
            EnduranceModel::new(ENDURANCE_CYCLES),
            DegradationPolicy::paper(),
            &mut fault_rng,
        );
        endurance_budget = fabric.ledger().budget();
        let mut odin = ctx.odin_for_on(&net, Dataset::Cifar10, fabric)?;
        let report = odin.run_campaign_resilient(&net, &ctx.schedule);
        rows.push(row_from(rate, &report, edp_ff));
    }

    Ok(FaultCampaignResult {
        network: net.name().to_string(),
        endurance_budget,
        spare_groups,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_campaign_meets_acceptance_bars() {
        let result = run(&ExperimentContext::quick()).unwrap();
        assert_eq!(result.rows.len(), 3);
        assert_eq!(result.endurance_budget, 2);
        assert!(result.spare_groups >= 1);

        // Fault-free sweep point reproduces the untracked runtime's
        // EDP bit for bit, with the ladder never engaging.
        let clean = result.at_rate(0.0).unwrap();
        assert_eq!(
            clean.edp_ratio.to_bits(),
            1.0f64.to_bits(),
            "rate 0 must be bit-identical to the fault-free runtime"
        );
        assert_eq!(
            clean.remaps + clean.out_of_service + clean.degraded_decisions,
            0
        );
        assert!((clean.fraction_served - 1.0).abs() < 1e-12);

        // 1 % faults: the campaign completes, serves ≥ 90 % of the
        // schedule, and the ladder demonstrably engaged.
        let worst = result.at_rate(0.01).unwrap();
        assert!(
            worst.fraction_served >= 0.9,
            "served {}",
            worst.fraction_served
        );
        assert!(
            worst.remaps + worst.degraded_decisions >= 1,
            "ladder must engage at 1% faults"
        );
        assert!(worst.reprograms >= 1);
        assert!(worst.edp_ratio >= 1.0, "faults cannot improve EDP");

        // Degradation is monotone-ish across the sweep: the 1% point
        // works the ladder at least as hard as the 0.1% point.
        let mid = result.at_rate(0.001).unwrap();
        assert!(worst.reprograms >= mid.reprograms);

        // Display renders the table.
        let table = result.to_string();
        assert!(table.contains("Fault campaign"));
        assert!(table.contains("o-o-s"));
    }
}
