//! Fig. 9: EDP of the homogeneous baselines relative to Odin as the
//! crossbar size scales over 128×128, 64×64 and 32×32 (ResNet34 on
//! CIFAR-100). The paper reports maximum reductions of 8.5×, 8.7×
//! and 6.2× respectively.

use odin_core::baselines::paper_baselines;
use odin_core::{OdinConfig, OdinError};
use odin_dnn::zoo::{self, Dataset};
use odin_xbar::CrossbarConfig;
use serde::Serialize;

use crate::setup::ExperimentContext;

/// One crossbar size's normalized EDPs.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Row {
    /// Crossbar dimension.
    pub crossbar: usize,
    /// Baseline label → total EDP / Odin total EDP.
    pub baselines: Vec<(String, f64)>,
}

impl Fig9Row {
    /// The largest baseline-vs-Odin ratio at this size.
    #[must_use]
    pub fn max_ratio(&self) -> f64 {
        self.baselines.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }
}

/// The Fig. 9 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Result {
    /// Workload name.
    pub network: String,
    /// One row per crossbar size (128, 64, 32).
    pub rows: Vec<Fig9Row>,
}

impl std::fmt::Display for Fig9Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 9 — {} EDP vs crossbar size (normalized to Odin)",
            self.network
        )?;
        write!(f, "{:<10}", "crossbar")?;
        for (label, _) in paper_baselines() {
            write!(f, " {label:>8}")?;
        }
        writeln!(f, " {:>8}", "max")?;
        for row in &self.rows {
            write!(f, "{:<10}", format!("{0}×{0}", row.crossbar))?;
            for (_, v) in &row.baselines {
                write!(f, " {v:>8.2}")?;
            }
            writeln!(f, " {:>8.2}", row.max_ratio())?;
        }
        Ok(())
    }
}

/// The crossbar sizes swept.
#[must_use]
pub fn crossbar_sizes() -> Vec<usize> {
    vec![128, 64, 32]
}

/// Runs the Fig. 9 experiment.
///
/// # Errors
///
/// Propagates mapping/configuration failures.
pub fn run(ctx: &ExperimentContext) -> Result<Fig9Result, OdinError> {
    let net = zoo::resnet34(Dataset::Cifar100);
    let mut rows = Vec::new();
    for size in crossbar_sizes() {
        let crossbar = CrossbarConfig::builder()
            .size(size)
            .build()
            .map_err(OdinError::Mapping)?;
        let sub_ctx = ExperimentContext {
            config: OdinConfig::builder()
                .crossbar(crossbar)
                .eta(ctx.config.eta())
                .strategy(ctx.config.strategy())
                .build()?,
            schedule: ctx.schedule.clone(),
            seed: ctx.seed,
        };
        let mut odin = sub_ctx.odin_for(&net, Dataset::Cifar100)?;
        let odin_edp = odin
            .run_campaign(&net, &sub_ctx.schedule)?
            .total_edp()
            .value();

        let mut baselines = Vec::new();
        for (label, shape) in paper_baselines() {
            let mut rt = sub_ctx.homogeneous(shape)?;
            let edp = rt
                .run_campaign(&net, &sub_ctx.schedule)?
                .total_edp()
                .value();
            baselines.push((label.to_string(), edp / odin_edp));
        }
        rows.push(Fig9Row {
            crossbar: size,
            baselines,
        });
    }
    Ok(Fig9Result {
        network: net.name().to_string(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odin_wins_across_crossbar_sizes() {
        let result = run(&ExperimentContext::quick()).unwrap();
        assert_eq!(result.rows.len(), 3);
        for row in &result.rows {
            // Odin outperforms every homogeneous counterpart at every
            // size (the Fig. 9 claim).
            for (label, v) in &row.baselines {
                assert!(*v > 1.0, "{label} at {0}×{0}: {v}", row.crossbar);
            }
        }
        // Smaller crossbars reduce non-ideality pressure, so the
        // maximum advantage shrinks at 32×32 relative to 128×128.
        let r128 = result.rows[0].max_ratio();
        let r32 = result.rows[2].max_ratio();
        assert!(
            r32 < r128 * 1.5,
            "32×32 advantage should not explode: {r32} vs {r128}"
        );
        assert!(result.to_string().contains("crossbar"));
    }
}
