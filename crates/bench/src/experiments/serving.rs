//! Multi-tenant serving campaign: the `odin-serve` engine driven over
//! a healthy fabric and a fault-storm fabric, recording tail latency,
//! goodput, per-tenant fairness, and the resilience counters into
//! `BENCH_serving.json` at the workspace root.
//!
//! Two scenarios run back-to-back:
//!
//! - **healthy** — the demo three-tenant fleet (gold/silver/bronze)
//!   over a fault-free runtime: the throughput/latency baseline, plus
//!   a replay check (the same seed must reproduce the same digest).
//! - **storm** — a gentler-rate fleet over a fabric seeded with stuck
//!   cells and `allow_degraded` off, so ladder exhaustion surfaces as
//!   transient errors the serving layer must absorb with retries,
//!   breakers, and degraded bottom-rung service. The storm must keep
//!   the ledger balanced and gold goodput at or above
//!   [`GOLD_GOODPUT_FLOOR`].

use std::fmt;
use std::io;
use std::path::PathBuf;

use odin_core::prelude::*;
use odin_device::{EnduranceModel, FaultInjector};
use odin_serve::{
    BurstWindow, QosClass, ServeConfig, ServeEngine, ServeReport, TenantSpec, TraceConfig,
};
use rand::SeedableRng;
use serde::Serialize;

use crate::BenchMeta;

/// The storm gate on the highest QoS class: even under a fault storm,
/// at least this fraction of generated gold requests must be served
/// (full-fidelity or degraded).
pub const GOLD_GOODPUT_FLOOR: f64 = 0.9;

/// One serving-campaign workload.
#[derive(Debug, Clone)]
pub struct ServingWorkload {
    /// Healthy-scenario trace horizon, virtual milliseconds.
    pub duration_ms: f64,
    /// Storm-scenario trace horizon, virtual milliseconds.
    pub storm_duration_ms: f64,
    /// Seed for traces, jitter, and the storm fabric.
    pub seed: u64,
    /// Stuck-cell fault rate of the storm fabric.
    pub fault_rate: f64,
}

impl ServingWorkload {
    /// The reduced smoke workload (`--quick`).
    #[must_use]
    pub fn quick() -> Self {
        ServingWorkload {
            duration_ms: 400.0,
            storm_duration_ms: 400.0,
            seed: 7,
            fault_rate: 0.15,
        }
    }

    /// The full workload.
    #[must_use]
    pub fn paper() -> Self {
        ServingWorkload {
            duration_ms: 1_500.0,
            storm_duration_ms: 800.0,
            seed: 7,
            fault_rate: 0.15,
        }
    }
}

/// The storm-scenario serving configuration: the same three-tenant
/// shape as [`ServeConfig::demo`] but moderate rates and generous
/// deadlines, so the gate measures resilience to *faults*, not to
/// overload. The breaker trips on the first full-fidelity failure and
/// its cooldown outlasts the horizon: under a persistent fault
/// cluster (the worst case the ladder can produce with degraded mode
/// off), each tenant loses at most one request before degraded
/// serving takes over — which is what keeps gold goodput above the
/// floor no matter how the storm lands.
#[must_use]
pub fn storm_config(duration_ms: f64, seed: u64) -> ServeConfig {
    let mut config = ServeConfig::demo(seed);
    config.trace = TraceConfig {
        duration_ms,
        diurnal_amplitude: 0.3,
        diurnal_period_ms: 500.0,
        bursts: vec![BurstWindow {
            start_ms: duration_ms * 0.4,
            end_ms: duration_ms * 0.6,
            multiplier: 2.0,
        }],
    };
    for (tenant, rate) in config.tenants.iter_mut().zip([80.0, 25.0, 15.0]) {
        tenant.rate_rps = rate;
        tenant.queue_capacity = 128;
    }
    config.deadline_ms = [1_000.0, 2_000.0, 4_000.0];
    config.retry.max_retries = 2;
    config.breaker.failure_threshold = 1;
    config.breaker.cooldown_ms = 10_000.0;
    config
}

/// Builds the storm runtime for `config`: a fabric with stuck cells at
/// `fault_rate`, one spare group, and degraded mode *disabled* — so an
/// exhausted ladder yields transient `NoFeasibleOu` instead of
/// self-healing, and the serving layer has to do the absorbing.
///
/// # Errors
///
/// Propagates configuration and build failures.
pub fn storm_runtime(config: &ServeConfig, fault_rate: f64) -> Result<OdinRuntime, OdinError> {
    let layers = config.max_layers()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let policy = DegradationPolicy {
        allow_degraded: false,
        ..DegradationPolicy::paper()
    };
    let fabric = FabricHealth::new(
        layers,
        128,
        1,
        &FaultInjector::new(fault_rate, 0.5),
        EnduranceModel::new(1e6),
        policy,
        &mut rng,
    );
    OdinRuntime::builder(OdinConfig::paper())
        .rng_seed(config.seed)
        .fabric(fabric)
        .build()
}

/// One latency row of the recorded report.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyRow {
    /// QoS class name.
    pub qos: String,
    /// Served requests in the class.
    pub count: u64,
    /// Median end-to-end latency, virtual milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// 99.9th-percentile latency.
    pub p999_ms: f64,
    /// Worst latency.
    pub max_ms: f64,
}

/// One scenario of the recorded report, distilled from a
/// [`ServeReport`].
#[derive(Debug, Clone, Serialize)]
pub struct ServingScenario {
    /// Requests the arrival trace generated.
    pub generated: u64,
    /// Served at full fidelity.
    pub served: u64,
    /// Served degraded (breaker open).
    pub served_degraded: u64,
    /// Shed, all reasons.
    pub shed: u64,
    /// Failed, all classes.
    pub failed: u64,
    /// Transient-error retries.
    pub retries: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// `(served + served_degraded) / generated`.
    pub goodput: f64,
    /// Goodput of the gold class alone.
    pub gold_goodput: f64,
    /// Jain fairness index over per-tenant goodput.
    pub fairness: f64,
    /// Virtual time at which the last outcome landed.
    pub makespan_ms: f64,
    /// `generated / makespan` in requests per virtual second.
    pub sustained_rps: f64,
    /// Per-class tail latency.
    pub latency: Vec<LatencyRow>,
    /// The total-accounting invariant: every generated request has
    /// exactly one typed outcome.
    pub balanced: bool,
    /// Outcome digest (hex) — replay-stable for a fixed seed.
    pub digest: String,
}

impl ServingScenario {
    /// Distills a [`ServeReport`] into the recorded row set.
    #[must_use]
    pub fn from_report(report: &ServeReport) -> ServingScenario {
        let makespan_s = (report.makespan_ms / 1e3).max(f64::MIN_POSITIVE);
        ServingScenario {
            generated: report.totals.generated,
            served: report.totals.served,
            served_degraded: report.totals.served_degraded,
            shed: report.totals.shed_total(),
            failed: report.totals.failed_total(),
            retries: report.totals.retries,
            breaker_trips: report.totals.breaker_trips,
            goodput: report.totals.goodput(),
            gold_goodput: report.goodput(QosClass::Gold),
            fairness: report.fairness,
            makespan_ms: report.makespan_ms,
            sustained_rps: report.totals.generated as f64 / makespan_s,
            latency: report
                .latency
                .iter()
                .map(|row| LatencyRow {
                    qos: row.qos.name().to_string(),
                    count: row.count,
                    p50_ms: row.p50_ms,
                    p99_ms: row.p99_ms,
                    p999_ms: row.p999_ms,
                    max_ms: row.max_ms,
                })
                .collect(),
            balanced: report.balanced(),
            digest: format!("{:016x}", report.digest),
        }
    }
}

/// The recorded serving campaign (`BENCH_serving.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ServingReport {
    /// Schema version and configuration fingerprint shared by every
    /// `BENCH_*.json` artifact.
    pub meta: BenchMeta,
    /// Trace/jitter/fabric seed.
    pub seed: u64,
    /// Healthy-scenario horizon, virtual milliseconds.
    pub duration_ms: f64,
    /// Storm-scenario horizon, virtual milliseconds.
    pub storm_duration_ms: f64,
    /// Storm fabric's stuck-cell fault rate.
    pub fault_rate: f64,
    /// `true` iff a second healthy run with the same seed reproduced
    /// the identical digest.
    pub replay_matches: bool,
    /// The gate the storm's gold goodput must clear.
    pub gold_goodput_floor: f64,
    /// `storm.balanced && storm.gold_goodput ≥ gold_goodput_floor`.
    pub storm_gate_passed: bool,
    /// Demo fleet over a fault-free runtime.
    pub healthy: ServingScenario,
    /// Gentle fleet over the fault-storm runtime.
    pub storm: ServingScenario,
}

impl fmt::Display for ServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serving campaign: seed {} | healthy {:.0} ms, storm {:.0} ms @ fault rate {:.2}",
            self.seed, self.duration_ms, self.storm_duration_ms, self.fault_rate
        )?;
        for (name, s) in [("healthy", &self.healthy), ("storm", &self.storm)] {
            writeln!(
                f,
                "[{name}] {} generated @ {:.0} req/s | served {} (+{} degraded) shed {} failed {} | \
                 goodput {:.3} (gold {:.3}) fairness {:.3} | retries {} trips {} | balanced: {} | digest {}",
                s.generated,
                s.sustained_rps,
                s.served,
                s.served_degraded,
                s.shed,
                s.failed,
                s.goodput,
                s.gold_goodput,
                s.fairness,
                s.retries,
                s.breaker_trips,
                if s.balanced { "yes" } else { "NO" },
                s.digest
            )?;
            for row in &s.latency {
                writeln!(
                    f,
                    "[{name}]   {:<6} n={:<5} p50 {:.2} ms  p99 {:.2} ms  p999 {:.2} ms  max {:.2} ms",
                    row.qos, row.count, row.p50_ms, row.p99_ms, row.p999_ms, row.max_ms
                )?;
            }
        }
        write!(
            f,
            "replay bit-identical: {} | storm gate (balanced, gold goodput ≥ {:.2}): {}",
            if self.replay_matches { "yes" } else { "NO" },
            self.gold_goodput_floor,
            if self.storm_gate_passed { "yes" } else { "NO" }
        )
    }
}

/// Runs both scenarios plus the healthy replay check.
///
/// # Errors
///
/// Propagates configuration, build, and engine failures. Inference
/// errors inside the storm do **not** propagate — absorbing them into
/// typed outcomes is the point.
pub fn run(workload: &ServingWorkload) -> Result<ServingReport, OdinError> {
    let mut healthy_config = ServeConfig::demo(workload.seed);
    healthy_config.trace.duration_ms = workload.duration_ms;
    let engine = ServeEngine::builder(healthy_config.clone()).build()?;
    let healthy_runtime = || {
        OdinRuntime::builder(OdinConfig::paper())
            .rng_seed(workload.seed)
            .build()
    };
    let healthy = engine.run(&mut healthy_runtime()?)?;
    let replay = engine.run(&mut healthy_runtime()?)?;
    let replay_matches = replay.digest == healthy.digest && replay.totals == healthy.totals;

    let storm_cfg = storm_config(workload.storm_duration_ms, workload.seed);
    let mut runtime = storm_runtime(&storm_cfg, workload.fault_rate)?;
    let storm = ServeEngine::builder(storm_cfg).build()?.run(&mut runtime)?;

    let healthy = ServingScenario::from_report(&healthy);
    let storm = ServingScenario::from_report(&storm);
    Ok(ServingReport {
        meta: BenchMeta::paper(),
        seed: workload.seed,
        duration_ms: workload.duration_ms,
        storm_duration_ms: workload.storm_duration_ms,
        fault_rate: workload.fault_rate,
        replay_matches,
        gold_goodput_floor: GOLD_GOODPUT_FLOOR,
        storm_gate_passed: storm.balanced && storm.gold_goodput >= GOLD_GOODPUT_FLOOR,
        healthy,
        storm,
    })
}

/// Records the campaign into `BENCH_serving.json` at the workspace
/// root (same convention as the other `BENCH_*.json` artifacts:
/// generated, never hand-edited).
///
/// # Errors
///
/// Returns I/O errors from writing the file.
pub fn write_report(report: &ServingReport) -> io::Result<PathBuf> {
    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serving.json"
    ));
    let json = serde_json::to_string_pretty(report).map_err(io::Error::other)?;
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServingWorkload {
        ServingWorkload {
            duration_ms: 150.0,
            storm_duration_ms: 400.0,
            seed: 7,
            fault_rate: 0.15,
        }
    }

    #[test]
    fn campaign_is_balanced_and_replayable() {
        let report = run(&tiny()).unwrap();
        assert!(report.healthy.balanced);
        assert!(report.storm.balanced);
        assert!(report.replay_matches, "same seed must reproduce the digest");
        assert!(report.healthy.generated > 0);
        assert_eq!(report.meta.schema_version, crate::BENCH_SCHEMA_VERSION);
        let text = report.to_string();
        assert!(text.contains("storm gate"), "{text}");
    }

    #[test]
    fn storm_clears_the_gold_goodput_gate() {
        let report = run(&tiny()).unwrap();
        assert!(
            report.storm_gate_passed,
            "storm gate failed: gold goodput {:.3}, balanced {}",
            report.storm.gold_goodput, report.storm.balanced
        );
    }

    #[test]
    fn report_serializes_with_both_scenarios() {
        let report = run(&tiny()).unwrap();
        let json = serde_json::to_value(&report).unwrap();
        assert!(json["healthy"]["digest"].is_string());
        assert!(json["storm"]["latency"].is_array());
        assert!(json["meta"]["config_fingerprint"].is_string());
    }
}
