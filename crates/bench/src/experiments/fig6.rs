//! Fig. 6: energy and latency of Odin versus homogeneous OUs for
//! VGG11 (CIFAR-10), normalized to the 16×16 configuration's
//! *inference* energy and latency. Includes the reprogramming counts
//! §V.C quotes (43 for 16×16, 2 for 8×4, once for Odin).

use odin_core::baselines::paper_baselines;
use odin_core::{CampaignReport, OdinError};
use odin_dnn::zoo::{self, Dataset};
use serde::Serialize;

use crate::setup::ExperimentContext;

/// One strategy's row in the Fig. 6 comparison.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Row {
    /// Strategy label ("odin", "16×16", …).
    pub label: String,
    /// Total energy (inference + reprogramming) / 16×16 inference
    /// energy.
    pub energy_norm: f64,
    /// Total latency / 16×16 inference latency.
    pub latency_norm: f64,
    /// Reprogramming passes over the campaign.
    pub reprograms: usize,
}

/// The Fig. 6 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Result {
    /// Workload name.
    pub network: String,
    /// Rows: Odin first, then the homogeneous baselines.
    pub rows: Vec<Fig6Row>,
}

impl Fig6Result {
    /// Odin's energy advantage over a baseline label.
    #[must_use]
    pub fn energy_gain_over(&self, label: &str) -> Option<f64> {
        let odin = self.rows.iter().find(|r| r.label == "odin")?;
        let base = self.rows.iter().find(|r| r.label == label)?;
        Some(base.energy_norm / odin.energy_norm)
    }

    /// Odin's latency advantage over a baseline label.
    #[must_use]
    pub fn latency_gain_over(&self, label: &str) -> Option<f64> {
        let odin = self.rows.iter().find(|r| r.label == "odin")?;
        let base = self.rows.iter().find(|r| r.label == label)?;
        Some(base.latency_norm / odin.latency_norm)
    }
}

impl std::fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 6 — {} total energy/latency (normalized to 16×16 inference)",
            self.network
        )?;
        writeln!(
            f,
            "{:<10} {:>12} {:>12} {:>11}",
            "config", "energy", "latency", "reprograms"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<10} {:>12.3} {:>12.3} {:>11}",
                row.label, row.energy_norm, row.latency_norm, row.reprograms
            )?;
        }
        Ok(())
    }
}

fn norms(report: &CampaignReport, e0: f64, t0: f64) -> (f64, f64) {
    (
        report.total_energy().value() / e0,
        report.total_latency().value() / t0,
    )
}

/// Runs the Fig. 6 experiment.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn run(ctx: &ExperimentContext) -> Result<Fig6Result, OdinError> {
    let net = zoo::vgg11(Dataset::Cifar10);
    // Normalization denominators: the 16×16 baseline's inference-only
    // energy and latency.
    let mut sixteen = ctx.homogeneous(odin_xbar::OuShape::new(16, 16))?;
    let ref_report = sixteen.run_campaign(&net, &ctx.schedule)?;
    let e0 = ref_report.inference_energy().value();
    let t0 = ref_report.inference_latency().value();

    let mut rows = Vec::new();
    let mut odin = ctx.odin_for(&net, Dataset::Cifar10)?;
    let odin_report = odin.run_campaign(&net, &ctx.schedule)?;
    let (energy_norm, latency_norm) = norms(&odin_report, e0, t0);
    rows.push(Fig6Row {
        label: "odin".into(),
        energy_norm,
        latency_norm,
        reprograms: odin_report.reprogram_count(),
    });

    for (label, shape) in paper_baselines() {
        let report = if shape == odin_xbar::OuShape::new(16, 16) {
            ref_report.clone()
        } else {
            ctx.homogeneous(shape)?.run_campaign(&net, &ctx.schedule)?
        };
        let (energy_norm, latency_norm) = norms(&report, e0, t0);
        rows.push(Fig6Row {
            label: label.to_string(),
            energy_norm,
            latency_norm,
            reprograms: report.reprogram_count(),
        });
    }
    Ok(Fig6Result {
        network: net.name().to_string(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_holds() {
        let result = run(&ExperimentContext::quick()).unwrap();
        assert_eq!(result.rows.len(), 5);
        // Odin beats every homogeneous baseline on total energy and
        // latency (§V.C: 6.4×, 4×, 1.4×, 3× energy; up to 7.5×
        // latency).
        for label in ["16×16", "16×4", "9×8", "8×4"] {
            let eg = result.energy_gain_over(label).unwrap();
            assert!(eg > 1.0, "energy gain over {label}: {eg}");
            let lg = result.latency_gain_over(label).unwrap();
            assert!(lg > 1.0, "latency gain over {label}: {lg}");
        }
        // 16×16 reprograms the most; Odin the least.
        let reprog = |l: &str| {
            result
                .rows
                .iter()
                .find(|r| r.label == l)
                .unwrap()
                .reprograms
        };
        assert!(reprog("16×16") > reprog("8×4"));
        assert!(reprog("odin") <= reprog("8×4"));
        // Display is printable and non-empty.
        assert!(result.to_string().contains("Fig. 6"));
    }
}
