//! Chaos-recovery harness: SIGKILL a checkpointed campaign at seeded
//! random points — including mid-checkpoint-write — then resume it and
//! prove the stitched-together run is bit-for-bit equivalent to an
//! uninterrupted one.
//!
//! The `chaos_campaign` binary drives this module in two roles: the
//! *parent* spawns itself as a *child* campaign, kills the child at
//! seeded delays (tearing snapshot files between attempts to simulate
//! mid-write power loss), lets a final attempt run to completion, and
//! compares the survivor's campaign digest against an in-process
//! uninterrupted reference. It also measures checkpoint overhead and
//! records everything into `BENCH_chaos.json` at the workspace root.

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

use odin_core::prelude::*;
use odin_dnn::zoo::{self, Dataset};
use odin_dnn::NetworkDescriptor;
use serde::Serialize;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte slice (same construction the snapshot
/// checksum uses; kept local so the digest is independent of it).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// `splitmix64` step: the seeded stream the parent draws kill delays
/// and corruption decisions from, so every chaos run is reproducible
/// from `--seed` alone.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The equivalence digest: FNV-1a over the serialized inference
/// records and skips, folded with the campaign EDP bits. Two reports
/// share a digest iff they recorded the same decisions, costs, events,
/// and aggregate EDP bit for bit.
#[must_use]
pub fn campaign_digest(report: &CampaignReport) -> u64 {
    let body = serde_json::to_string(&(&report.runs, &report.skipped))
        .expect("campaign reports serialize");
    let mut digest = fnv1a64(body.as_bytes());
    for byte in report.total_edp().value().to_bits().to_le_bytes() {
        digest = (digest ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    digest
}

/// One chaos workload: a VGG11/CIFAR-10 campaign with a fixed seed,
/// shard count, and execution model, so the parent, the child, and the
/// uninterrupted reference all describe the identical run.
#[derive(Debug, Clone)]
pub struct ChaosWorkload {
    /// Scheduled inference count.
    pub runs: usize,
    /// Worker shards.
    pub shards: usize,
    /// Execution model.
    pub mode: ShardMode,
    /// Policy-initialization seed.
    pub seed: u64,
}

impl ChaosWorkload {
    /// The campaign network (VGG11 on CIFAR-10).
    #[must_use]
    pub fn network(&self) -> NetworkDescriptor {
        zoo::vgg11(Dataset::Cifar10)
    }

    /// The campaign schedule: `runs` geometric slots over 1 s … 1e7 s.
    #[must_use]
    pub fn schedule(&self) -> TimeSchedule {
        TimeSchedule::geometric(1.0, 1e7, self.runs)
    }

    /// A fresh runtime for this workload (untrained policy, seeded).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn runtime(&self) -> Result<OdinRuntime, OdinError> {
        OdinRuntime::builder(OdinConfig::paper())
            .rng_seed(self.seed)
            .build()
    }

    /// The campaign engine for this workload (no checkpoint attached).
    #[must_use]
    pub fn engine(&self) -> CampaignEngine {
        CampaignEngine::new(self.shards).with_mode(self.mode)
    }

    /// Runs the workload uninterrupted (no checkpointing) and returns
    /// its equivalence digest.
    ///
    /// # Errors
    ///
    /// Propagates campaign failures.
    pub fn reference_digest(&self) -> Result<u64, OdinError> {
        let mut runtime = self.runtime()?;
        let report = self
            .engine()
            .run_campaign(&mut runtime, &self.network(), &self.schedule())?;
        Ok(campaign_digest(&report))
    }

    /// Runs the workload under `policy`, resuming from the newest
    /// usable generation in the store if one exists and starting over
    /// from slot 0 otherwise (empty store, or every generation torn /
    /// corrupt — the rolled-back case). Returns the completed report
    /// and a human-readable note saying which path was taken.
    ///
    /// # Errors
    ///
    /// Propagates campaign failures; snapshot errors are absorbed into
    /// the restart-from-scratch path by design.
    pub fn run_checkpointed(
        &self,
        dir: &Path,
        policy: CheckpointPolicy,
    ) -> Result<(CampaignReport, String), OdinError> {
        let network = self.network();
        let schedule = self.schedule();
        let engine = self.engine().checkpoint(policy);
        match engine.resume_from(dir, &network, &schedule) {
            Ok((_, report)) => Ok((report, "resumed from snapshot store".to_string())),
            Err(OdinError::Snapshot(e)) => {
                let mut runtime = self.runtime()?;
                let report = engine.run_campaign(&mut runtime, &network, &schedule)?;
                Ok((
                    report,
                    format!("no usable snapshot ({e}); started from slot 0"),
                ))
            }
            Err(e) => Err(e),
        }
    }
}

/// Checkpoint cost at the default interval: the same campaign run
/// twice, with and without a snapshot store attached.
#[derive(Debug, Clone, Serialize)]
pub struct CheckpointOverhead {
    /// Uncheckpointed wall-clock, milliseconds.
    pub baseline_ms: f64,
    /// Checkpointed wall-clock, milliseconds.
    pub checkpointed_ms: f64,
    /// `(checkpointed − baseline) / baseline`, clamped at 0.
    pub overhead_frac: f64,
    /// Snapshot generations left in the store after the run (the
    /// retention policy prunes older ones).
    pub snapshots_retained: usize,
    /// `true` iff the checkpointed run's digest equals the baseline's
    /// — checkpointing must observe, never perturb.
    pub perturbation_free: bool,
}

/// Measures checkpoint overhead for `workload` using `dir` as the
/// snapshot store (default interval and retention).
///
/// # Errors
///
/// Propagates campaign failures.
pub fn measure_overhead(
    workload: &ChaosWorkload,
    dir: &Path,
) -> Result<CheckpointOverhead, OdinError> {
    let network = workload.network();
    let schedule = workload.schedule();

    let mut runtime = workload.runtime()?;
    let start = Instant::now();
    let baseline = workload
        .engine()
        .run_campaign(&mut runtime, &network, &schedule)?;
    let baseline_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut runtime = workload.runtime()?;
    let start = Instant::now();
    let checkpointed = workload
        .engine()
        .checkpoint(CheckpointPolicy::new(dir))
        .run_campaign(&mut runtime, &network, &schedule)?;
    let checkpointed_ms = start.elapsed().as_secs_f64() * 1e3;

    let snapshots_retained = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
                .count()
        })
        .unwrap_or(0);

    Ok(CheckpointOverhead {
        baseline_ms,
        checkpointed_ms,
        overhead_frac: (checkpointed_ms - baseline_ms).max(0.0)
            / baseline_ms.max(f64::MIN_POSITIVE),
        snapshots_retained,
        perturbation_free: campaign_digest(&baseline) == campaign_digest(&checkpointed),
    })
}

/// One parent-driven kill/resume trial.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosTrial {
    /// Trial index.
    pub trial: usize,
    /// Execution model the child ran (`lockstep` / `independent`).
    pub mode: String,
    /// Worker shards in the child.
    pub shards: usize,
    /// SIGKILLs delivered before the surviving attempt.
    pub kills: usize,
    /// Snapshot files torn or garbage `.tmp` files dropped between
    /// attempts (simulated mid-write power loss).
    pub torn_injections: usize,
    /// Wall-clock of the surviving attempt (resume + finish), ms.
    pub recovery_ms: f64,
    /// Whether the survivor's digest matched the uninterrupted
    /// reference bit for bit.
    pub digest_matches: bool,
}

/// The full chaos-harness record (`BENCH_chaos.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ChaosReport {
    /// Schema version and configuration fingerprint shared by every
    /// `BENCH_*.json` artifact.
    pub meta: crate::BenchMeta,
    /// Scheduled inference count per trial.
    pub runs: usize,
    /// The seed every delay and corruption decision derives from.
    pub seed: u64,
    /// One row per kill/resume trial.
    pub trials: Vec<ChaosTrial>,
    /// Checkpoint cost at the default interval.
    pub overhead: CheckpointOverhead,
    /// `true` iff every trial's digest matched the reference.
    pub all_equivalent: bool,
    /// Slowest surviving attempt across trials, ms.
    pub max_recovery_ms: f64,
}

impl ChaosReport {
    /// Assembles the report from its trials and overhead measurement.
    #[must_use]
    pub fn new(
        runs: usize,
        seed: u64,
        trials: Vec<ChaosTrial>,
        overhead: CheckpointOverhead,
    ) -> Self {
        let all_equivalent = trials.iter().all(|t| t.digest_matches) && overhead.perturbation_free;
        let max_recovery_ms = trials.iter().map(|t| t.recovery_ms).fold(0.0, f64::max);
        Self {
            meta: crate::BenchMeta::paper(),
            runs,
            seed,
            trials,
            overhead,
            all_equivalent,
            max_recovery_ms,
        }
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos campaign: {} runs/trial, seed {:#x}",
            self.runs, self.seed
        )?;
        writeln!(
            f,
            "{:<6} {:<12} {:>6} {:>6} {:>6} {:>12} {:>8}",
            "trial", "mode", "shards", "kills", "torn", "recovery", "equal"
        )?;
        for t in &self.trials {
            writeln!(
                f,
                "{:<6} {:<12} {:>6} {:>6} {:>6} {:>9.1} ms {:>8}",
                t.trial,
                t.mode,
                t.shards,
                t.kills,
                t.torn_injections,
                t.recovery_ms,
                if t.digest_matches { "yes" } else { "NO" }
            )?;
        }
        writeln!(
            f,
            "checkpoint overhead: {:.1} ms → {:.1} ms ({:.2}% of wall-clock, {} generations retained)",
            self.overhead.baseline_ms,
            self.overhead.checkpointed_ms,
            self.overhead.overhead_frac * 100.0,
            self.overhead.snapshots_retained
        )?;
        write!(
            f,
            "all trials bit-equivalent to uninterrupted reference: {}",
            if self.all_equivalent { "yes" } else { "NO" }
        )
    }
}

/// One cell of the fault-class × rate sweep `chaos_matrix` runs: which
/// engine was driven, what was injected, what the supervisor did about
/// it, and whether the row's gates held.
#[derive(Debug, Clone, Serialize)]
pub struct FaultMatrixRow {
    /// Which engine the cell drove (`campaign` / `serve`).
    pub engine: String,
    /// Armed [`odin_chaos::FaultClass`] name.
    pub class: String,
    /// Armed per-occurrence injection rate.
    pub rate: f64,
    /// Fraction of the scheduled work that was served (campaign:
    /// committed / scheduled; serve: goodput over generated).
    pub fraction_served: f64,
    /// Supervisor retries (campaign) or serve-layer retries.
    pub retries: u64,
    /// Panicked shard slots the supervisor recovered.
    pub panics_recovered: u64,
    /// Watchdog-expired slots the supervisor recovered.
    pub timeouts_recovered: u64,
    /// Faults the plan injected on engine-owned sites.
    pub injected_faults: u64,
    /// Shard slots quarantined.
    pub quarantines: usize,
    /// Poison rollbacks performed.
    pub rollbacks: u64,
    /// Poison-sentinel trips.
    pub poison_detected: u64,
    /// Checkpoint saves skipped after I/O-fault retries were exhausted.
    pub snapshot_skips: u64,
    /// Two runs under the same plan produced the same digest.
    pub digest_deterministic: bool,
    /// The healed digest matched the clean (plan-disabled) reference;
    /// `None` when the class legitimately reshapes the outcome stream
    /// (clock skew / burst change the workload itself).
    pub matches_clean: Option<bool>,
    /// Invariant checks recorded for this row.
    pub invariants_checked: usize,
    /// Human-readable invariant violations (empty when all held).
    pub invariant_violations: Vec<String>,
    /// All of this row's gates held.
    pub gates_passed: bool,
}

/// The `matrix` block of `BENCH_chaos.json` schema v2: the sweep's
/// shape, every row, and the aggregate verdicts.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosMatrix {
    /// The seed every fault plan in the sweep derives from.
    pub seed: u64,
    /// Campaign schedule slots per cell.
    pub campaign_runs: usize,
    /// Serve trace horizon per cell, virtual milliseconds.
    pub serve_duration_ms: f64,
    /// Self-healing floor asserted on injection rows.
    pub fraction_served_floor: f64,
    /// Same-seed plans reproduced bit-identical injection schedules.
    pub schedule_digests_deterministic: bool,
    /// One row per (engine, class, rate) cell.
    pub rows: Vec<FaultMatrixRow>,
    /// Every row's gates held.
    pub all_gates_passed: bool,
}

impl fmt::Display for ChaosMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos matrix: seed {:#x}, {} campaign runs, {:.0} ms serve horizon, floor {:.2}",
            self.seed, self.campaign_runs, self.serve_duration_ms, self.fraction_served_floor
        )?;
        writeln!(
            f,
            "{:<9} {:<20} {:>6} {:>7} {:>7} {:>5} {:>5} {:>5} {:>6} {:>6} {:>6}",
            "engine",
            "class",
            "rate",
            "served",
            "retries",
            "panic",
            "tmo",
            "quar",
            "rollbk",
            "det",
            "gates"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<9} {:<20} {:>6.3} {:>6.1}% {:>7} {:>5} {:>5} {:>5} {:>6} {:>6} {:>6}",
                r.engine,
                r.class,
                r.rate,
                r.fraction_served * 100.0,
                r.retries,
                r.panics_recovered,
                r.timeouts_recovered,
                r.quarantines,
                r.rollbacks,
                if r.digest_deterministic { "yes" } else { "NO" },
                if r.gates_passed { "ok" } else { "FAIL" }
            )?;
            for v in &r.invariant_violations {
                writeln!(f, "    violation: {v}")?;
            }
        }
        write!(
            f,
            "schedule digests deterministic: {} | all gates passed: {}",
            if self.schedule_digests_deterministic {
                "yes"
            } else {
                "NO"
            },
            if self.all_gates_passed { "yes" } else { "NO" }
        )
    }
}

/// `BENCH_chaos.json` schema v2 on disk: the shared provenance header,
/// the optional fault-matrix block (present when `chaos_matrix` wrote
/// the artifact), and the original kill/resume record preserved
/// verbatim under `legacy`.
#[derive(Debug, Serialize)]
struct ChaosArtifact<'a> {
    meta: &'a crate::BenchMeta,
    #[serde(skip_serializing_if = "Option::is_none")]
    matrix: Option<&'a ChaosMatrix>,
    legacy: LegacyChaos<'a>,
}

/// The pre-v2 `BENCH_chaos.json` fields, nested under `legacy`.
#[derive(Debug, Serialize)]
struct LegacyChaos<'a> {
    runs: usize,
    seed: u64,
    trials: &'a [ChaosTrial],
    overhead: &'a CheckpointOverhead,
    all_equivalent: bool,
    max_recovery_ms: f64,
}

fn write_artifact(report: &ChaosReport, matrix: Option<&ChaosMatrix>) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_chaos.json"
    ));
    let artifact = ChaosArtifact {
        meta: &report.meta,
        matrix,
        legacy: LegacyChaos {
            runs: report.runs,
            seed: report.seed,
            trials: &report.trials,
            overhead: &report.overhead,
            all_equivalent: report.all_equivalent,
            max_recovery_ms: report.max_recovery_ms,
        },
    };
    let json = serde_json::to_string_pretty(&artifact).map_err(std::io::Error::other)?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Records the chaos report into `BENCH_chaos.json` at the workspace
/// root (same convention as `BENCH_kernel.json`: generated, never
/// hand-edited). Schema v2: provenance under `meta`, the kill/resume
/// record under `legacy`.
///
/// # Errors
///
/// Returns I/O errors from writing the file.
pub fn write_report(report: &ChaosReport) -> std::io::Result<PathBuf> {
    write_artifact(report, None)
}

/// Like [`write_report`], with the fault-matrix block included — the
/// `chaos_matrix` binary's writer.
///
/// # Errors
///
/// Returns I/O errors from writing the file.
pub fn write_report_with_matrix(
    report: &ChaosReport,
    matrix: &ChaosMatrix,
) -> std::io::Result<PathBuf> {
    write_artifact(report, Some(matrix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("odin-chaos-{tag}-{}-{n}", std::process::id()))
    }

    fn tiny() -> ChaosWorkload {
        ChaosWorkload {
            runs: 8,
            shards: 1,
            mode: ShardMode::Lockstep,
            seed: 7,
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = 42;
        let mut b = 42;
        let (x, y) = (splitmix64(&mut a), splitmix64(&mut b));
        assert_eq!(x, y);
        assert_ne!(splitmix64(&mut a), x, "stream advances");
    }

    #[test]
    fn digest_separates_different_campaigns() {
        let w = tiny();
        let mut rt = w.runtime().unwrap();
        let short = w
            .engine()
            .run_campaign(&mut rt, &w.network(), &TimeSchedule::geometric(1.0, 1e7, 4))
            .unwrap();
        let mut rt = w.runtime().unwrap();
        let full = w
            .engine()
            .run_campaign(&mut rt, &w.network(), &w.schedule())
            .unwrap();
        assert_ne!(campaign_digest(&short), campaign_digest(&full));
        assert_eq!(campaign_digest(&full), w.reference_digest().unwrap());
    }

    #[test]
    fn checkpointed_run_resumes_or_restarts_to_the_same_digest() {
        let w = tiny();
        let reference = w.reference_digest().unwrap();
        let dir = scratch("roundtrip");
        // Empty store: starts from slot 0.
        let (report, note) = w
            .run_checkpointed(&dir, CheckpointPolicy::new(&dir).every_runs(2))
            .unwrap();
        assert_eq!(campaign_digest(&report), reference);
        assert!(note.contains("slot 0"), "{note}");
        // Populated store: resumes (here, from the completed run).
        let (report, note) = w
            .run_checkpointed(&dir, CheckpointPolicy::new(&dir).every_runs(2))
            .unwrap();
        assert_eq!(campaign_digest(&report), reference);
        assert!(note.contains("resumed"), "{note}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
