//! Parallel campaign engine sweep: the paper workload run through
//! [`CampaignEngine`] at 1/2/4/8 shards in both execution models,
//! reporting wall-clock, speedup over the same-mode single shard,
//! campaign aggregates, and evaluation-cache hit rates.
//!
//! The single-shard lockstep point doubles as a regression guard: its
//! report must be bit-for-bit identical to the plain sequential
//! [`OdinRuntime::run_campaign`] path.

use std::time::Instant;

use odin_core::prelude::*;
use odin_dnn::zoo::{self, Dataset};
use odin_policy::OuPolicy;
use serde::Serialize;

use crate::setup::ExperimentContext;

/// The swept shard counts.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One (mode, shard count) sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelCampaignRow {
    /// Execution model (`lockstep` / `independent`).
    pub mode: String,
    /// Worker shards.
    pub shards: usize,
    /// Campaign wall-clock in milliseconds.
    pub wall_ms: f64,
    /// Wall-clock speedup over the same mode at 1 shard.
    pub speedup: f64,
    /// Campaign EDP (total energy × total latency, J·s).
    pub total_edp: f64,
    /// Fraction of layer decisions where the policy missed the
    /// search's optimum.
    pub mismatch_rate: f64,
    /// Fraction of scheduled inferences served.
    pub fraction_served: f64,
    /// Evaluation-cache hit rate over the campaign (full + geometry
    /// hits over all lookups).
    pub cache_hit_rate: f64,
    /// Schedule slots committed by the engine.
    pub committed: u64,
    /// Speculative runs discarded (lockstep re-execution).
    pub discarded: u64,
}

/// The parallel-campaign sweep result.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelCampaignResult {
    /// Workload name.
    pub network: String,
    /// Scheduled inference count.
    pub runs: usize,
    /// One row per (mode, shard count), in sweep order.
    pub rows: Vec<ParallelCampaignRow>,
}

impl ParallelCampaignResult {
    /// The row for a given mode and shard count, if swept.
    #[must_use]
    pub fn at(&self, mode: ShardMode, shards: usize) -> Option<&ParallelCampaignRow> {
        self.rows
            .iter()
            .find(|r| r.mode == mode.to_string() && r.shards == shards)
    }
}

impl std::fmt::Display for ParallelCampaignResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Parallel campaign — {} over {} runs, sharded across threads",
            self.network, self.runs
        )?;
        writeln!(
            f,
            "{:>12} {:>7} {:>10} {:>8} {:>12} {:>9} {:>7} {:>7} {:>10} {:>10}",
            "mode",
            "shards",
            "wall (ms)",
            "speedup",
            "EDP (J·s)",
            "mismatch",
            "served",
            "cache",
            "committed",
            "discarded"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>12} {:>7} {:>10.1} {:>7.2}× {:>12.4e} {:>8.1}% {:>6.1}% {:>6.1}% {:>10} {:>10}",
                row.mode,
                row.shards,
                row.wall_ms,
                row.speedup,
                row.total_edp,
                row.mismatch_rate * 100.0,
                row.fraction_served * 100.0,
                row.cache_hit_rate * 100.0,
                row.committed,
                row.discarded
            )?;
        }
        Ok(())
    }
}

fn fresh_runtime(ctx: &ExperimentContext, policy: &OuPolicy) -> Result<OdinRuntime, OdinError> {
    OdinRuntime::builder(ctx.config.clone())
        .policy(policy.clone())
        .build()
}

/// Runs the shard sweep. Also used by the determinism tests: the
/// returned rows carry the raw aggregates the engine must hold
/// invariant across lockstep shard counts.
///
/// # Errors
///
/// Propagates mapping failures from policy bootstrap or the campaigns.
pub fn run(ctx: &ExperimentContext) -> Result<ParallelCampaignResult, OdinError> {
    let net = zoo::vgg11(Dataset::Cifar10);
    let policy = ctx.policy_for(&net, Dataset::Cifar10)?;
    let mut rows = Vec::new();
    for mode in [ShardMode::Lockstep, ShardMode::Independent] {
        let mut base_wall = None;
        for shards in SHARD_COUNTS {
            let engine = CampaignEngine::new(shards).with_mode(mode);
            let mut rt = fresh_runtime(ctx, &policy)?;
            let start = Instant::now();
            let report = engine.run_campaign(&mut rt, &net, &ctx.schedule)?;
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let base = *base_wall.get_or_insert(wall_ms);
            rows.push(ParallelCampaignRow {
                mode: mode.to_string(),
                shards,
                wall_ms,
                speedup: base / wall_ms,
                total_edp: report.total_edp().value(),
                mismatch_rate: report.mismatch_rate(),
                fraction_served: report.fraction_served(),
                cache_hit_rate: report.cache.hit_rate(),
                committed: report.engine.committed,
                discarded: report.engine.discarded,
            });
        }
    }
    Ok(ParallelCampaignResult {
        network: net.name().to_string(),
        runs: ctx.schedule.runs(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_sweep_meets_acceptance_bars() {
        let ctx = ExperimentContext::quick();
        let result = run(&ctx).unwrap();
        assert_eq!(result.rows.len(), 2 * SHARD_COUNTS.len());

        // Lockstep: shard-1 is bit-for-bit the sequential path...
        let net = zoo::vgg11(Dataset::Cifar10);
        let sequential = ctx
            .odin_for(&net, Dataset::Cifar10)
            .unwrap()
            .run_campaign(&net, &ctx.schedule)
            .unwrap();
        let one = result.at(ShardMode::Lockstep, 1).unwrap();
        assert_eq!(
            one.total_edp.to_bits(),
            sequential.total_edp().value().to_bits(),
            "1-shard lockstep must equal run_campaign bit for bit"
        );

        // ...and every lockstep shard count reproduces the same
        // aggregates bit for bit (no wall-clock assertions: timing is
        // hardware-dependent, determinism is not).
        for shards in SHARD_COUNTS {
            let row = result.at(ShardMode::Lockstep, shards).unwrap();
            assert_eq!(
                row.total_edp.to_bits(),
                one.total_edp.to_bits(),
                "{shards} shards"
            );
            assert_eq!(row.mismatch_rate.to_bits(), one.mismatch_rate.to_bits());
            assert_eq!(row.fraction_served.to_bits(), one.fraction_served.to_bits());
            assert_eq!(row.committed, ctx.schedule.runs() as u64);
        }

        // The memoized evaluation cache carries the sweep: ≥ 50% hits
        // on the paper workload at every point (the engine's acceptance bar).
        for row in &result.rows {
            assert!(
                row.cache_hit_rate > 0.5,
                "{} × {}: hit rate {}",
                row.mode,
                row.shards,
                row.cache_hit_rate
            );
            assert!(
                (row.fraction_served - 1.0).abs() < 1e-12,
                "pristine fabric serves all"
            );
        }

        // Independent replicas drift from the sequential stream but
        // stay internally consistent.
        let ind = result.at(ShardMode::Independent, 4).unwrap();
        assert_eq!(ind.committed, ctx.schedule.runs() as u64);
        assert_eq!(ind.discarded, 0, "independent mode never speculates");

        let table = result.to_string();
        assert!(table.contains("lockstep"));
        assert!(table.contains("independent"));
    }
}
