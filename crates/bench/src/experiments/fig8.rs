//! Fig. 8: total EDP of the Odin-enabled accelerator versus static
//! homogeneous OUs across all nine §V.A workloads, normalized to the
//! 16×16 configuration's inference EDP. The paper reports average
//! reductions of 3.9×, 2.5×, 1.5× and 1.9× versus 16×16, 16×4, 9×8
//! and 8×4.

use odin_core::baselines::paper_baselines;
use odin_core::OdinError;
use odin_dnn::zoo;
use odin_xbar::OuShape;
use serde::Serialize;

use crate::setup::{workload_dataset, ExperimentContext};

/// One workload's normalized EDPs.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    /// Workload name ("resnet18", …).
    pub network: String,
    /// Dataset name.
    pub dataset: String,
    /// Odin's total EDP / 16×16 inference EDP.
    pub odin: f64,
    /// Each homogeneous baseline's total EDP / 16×16 inference EDP,
    /// in `paper_baselines()` order.
    pub baselines: Vec<(String, f64)>,
}

/// The Fig. 8 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Result {
    /// Per-workload rows.
    pub rows: Vec<Fig8Row>,
}

impl Fig8Result {
    /// Odin's mean EDP reduction versus one baseline label (geometric
    /// mean across workloads, the robust average for ratios).
    #[must_use]
    pub fn mean_gain_over(&self, label: &str) -> Option<f64> {
        let mut log_sum = 0.0;
        let mut n = 0usize;
        for row in &self.rows {
            let base = row.baselines.iter().find(|(l, _)| l == label)?;
            log_sum += (base.1 / row.odin).ln();
            n += 1;
        }
        (n > 0).then(|| (log_sum / n as f64).exp())
    }

    /// Odin's best-case EDP reduction over any baseline (the headline
    /// "up to 8.7×" comes from the Fig. 9 crossbar sweep; Fig. 8's
    /// own maximum is reported here).
    #[must_use]
    pub fn max_gain(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|row| row.baselines.iter().map(move |(_, v)| v / row.odin))
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 8 — total EDP normalized to 16×16 inference EDP (lower is better)"
        )?;
        write!(f, "{:<12} {:<13} {:>8}", "network", "dataset", "odin")?;
        for (label, _) in paper_baselines() {
            write!(f, " {label:>8}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(
                f,
                "{:<12} {:<13} {:>8.3}",
                row.network, row.dataset, row.odin
            )?;
            for (_, v) in &row.baselines {
                write!(f, " {v:>8.3}")?;
            }
            writeln!(f)?;
        }
        writeln!(f)?;
        for (label, _) in paper_baselines() {
            if let Some(gain) = self.mean_gain_over(label) {
                writeln!(f, "odin vs {label:<6} mean EDP reduction: {gain:.2}×")?;
            }
        }
        writeln!(f, "max single-workload reduction: {:.2}×", self.max_gain())
    }
}

/// Runs the Fig. 8 experiment over every §V.A workload.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn run(ctx: &ExperimentContext) -> Result<Fig8Result, OdinError> {
    let mut rows = Vec::new();
    for net in zoo::paper_workloads() {
        let dataset = workload_dataset(net.name());
        let mut sixteen = ctx.homogeneous(OuShape::new(16, 16))?;
        let ref_report = sixteen.run_campaign(&net, &ctx.schedule)?;
        let edp0 = ref_report.inference_edp().value();

        let mut odin = ctx.odin_for(&net, dataset)?;
        let odin_report = odin.run_campaign(&net, &ctx.schedule)?;
        let odin_norm = odin_report.total_edp().value() / edp0;

        let mut baselines = Vec::new();
        for (label, shape) in paper_baselines() {
            let report = if shape == OuShape::new(16, 16) {
                ref_report.clone()
            } else {
                ctx.homogeneous(shape)?.run_campaign(&net, &ctx.schedule)?
            };
            baselines.push((label.to_string(), report.total_edp().value() / edp0));
        }
        rows.push(Fig8Row {
            network: net.name().to_string(),
            dataset: dataset.name().to_string(),
            odin: odin_norm,
            baselines,
        });
    }
    Ok(Fig8Result { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_ordering_holds_on_subset() {
        // Full Fig. 8 is exercised by the binary; keep the test to two
        // workloads for speed and check the qualitative claims.
        let ctx = ExperimentContext::quick();
        let mut rows = Vec::new();
        for net in [
            zoo::vgg11(odin_dnn::zoo::Dataset::Cifar10),
            zoo::resnet18(odin_dnn::zoo::Dataset::Cifar10),
        ] {
            let dataset = workload_dataset(net.name());
            let mut sixteen = ctx.homogeneous(OuShape::new(16, 16)).unwrap();
            let ref_report = sixteen.run_campaign(&net, &ctx.schedule).unwrap();
            let edp0 = ref_report.inference_edp().value();
            let mut odin = ctx.odin_for(&net, dataset).unwrap();
            let odin_report = odin.run_campaign(&net, &ctx.schedule).unwrap();
            let mut baselines = Vec::new();
            for (label, shape) in paper_baselines() {
                let report = if shape == OuShape::new(16, 16) {
                    ref_report.clone()
                } else {
                    ctx.homogeneous(shape)
                        .unwrap()
                        .run_campaign(&net, &ctx.schedule)
                        .unwrap()
                };
                baselines.push((label.to_string(), report.total_edp().value() / edp0));
            }
            rows.push(Fig8Row {
                network: net.name().to_string(),
                dataset: dataset.name().to_string(),
                odin: odin_report.total_edp().value() / edp0,
                baselines,
            });
        }
        let result = Fig8Result { rows };
        for (label, _) in paper_baselines() {
            let gain = result.mean_gain_over(label).unwrap();
            assert!(gain > 1.0, "odin must beat {label}: {gain}");
        }
        assert!(result.max_gain() > 1.5);
        assert!(result.to_string().contains("Fig. 8"));
    }
}
