//! The pluggable-search strategy sweep (`BENCH_search.json`): RB, EX,
//! BO, and NSGA-II campaigns over the nine-model zoo, with hard gates.
//!
//! Gates, all conjoined into `gates_passed`:
//!
//! - **BO quality**: the Bayesian-optimization campaigns' zoo-total EDP
//!   is within 2 % of the exhaustive campaigns' ([`BO_EDP_CEILING`]).
//! - **BO cost**: on every workload, BO spends at most 50 % of the
//!   exhaustive probe count ([`BO_PROBE_CEILING`]).
//! - **Front exactness**: every NSGA-II per-layer front (at full
//!   population the searcher probes all 36 cells) equals the
//!   brute-force non-dominated feasible set over the grid, point for
//!   point, bit for bit, knee on the front.
//! - **Replay**: re-running any strategy's campaign with the same seed
//!   reproduces the decision checksum; a lockstep engine run matches
//!   the sequential stream; a campaign resumed from its *oldest*
//!   surviving checkpoint generation replays to the identical
//!   checksum.

use std::fmt;
use std::io;
use std::path::PathBuf;

use odin_core::search::{pareto_front_with, OuEvaluator, SearchContext, SearchStrategy};
use odin_core::snapshot::CheckpointPolicy;
use odin_core::{AnalyticModel, CampaignEngine, CampaignReport, OdinConfig, OdinError};
use odin_dnn::zoo::{self, Dataset};
use odin_dnn::{LayerDescriptor, NetworkDescriptor};
use odin_units::Seconds;
use odin_xbar::OuShape;
use serde::Serialize;

use crate::experiments::exec::decision_checksum;
use crate::setup::{workload_dataset, ExperimentContext};
use crate::BenchMeta;

/// BO zoo-total EDP must stay within this factor of exhaustive.
pub const BO_EDP_CEILING: f64 = 1.02;
/// BO must spend at most this fraction of exhaustive's probes,
/// per workload.
pub const BO_PROBE_CEILING: f64 = 0.5;

/// Programming ages the per-layer front exactness check runs at: fresh
/// arrays and deep into the drift horizon.
const FRONT_AGES: [f64; 2] = [1.0, 1e6];

/// The four swept strategies, in report order.
fn strategies() -> [SearchStrategy; 4] {
    [
        SearchStrategy::paper(),
        SearchStrategy::Exhaustive,
        SearchStrategy::bayesian(),
        SearchStrategy::pareto(),
    ]
}

/// One campaign: a workload under one strategy.
#[derive(Debug, Clone, Serialize)]
pub struct StrategyRow {
    /// Workload (zoo model) name.
    pub workload: String,
    /// Strategy label (`RB(k=3)`, `EX`, `BO(b=16)`, `NSGA(p=36,g=8)`).
    pub strategy: String,
    /// Campaign total EDP (J·s).
    pub total_edp: f64,
    /// Total search probes: Σ per-decision `search_evaluations`.
    pub probes: u64,
    /// Non-empty Pareto fronts recorded by the campaign.
    pub fronts: u64,
    /// Total members across those fronts.
    pub front_members: u64,
    /// Decision-stream checksum (hex).
    pub decision_checksum: String,
}

/// Per-workload BO-vs-EX comparison.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadGate {
    /// Workload name.
    pub workload: String,
    /// BO / EX total-EDP ratio.
    pub bo_edp_ratio: f64,
    /// BO / EX probe-count ratio.
    pub bo_probe_ratio: f64,
    /// `bo_probe_ratio` under [`BO_PROBE_CEILING`].
    pub probe_gate: bool,
}

/// Seeded-replay and checkpoint/resume verdict for one strategy.
#[derive(Debug, Clone, Serialize)]
pub struct ReplayRow {
    /// Strategy label.
    pub strategy: String,
    /// A same-seed rerun reproduced the decision checksum.
    pub repeat_identical: bool,
    /// A 2-shard lockstep engine run matched the sequential stream.
    pub engine_matches: bool,
    /// Resuming from the oldest surviving snapshot generation replayed
    /// to the identical checksum.
    pub resume_identical: bool,
}

/// The recorded strategy sweep (`BENCH_search.json`).
#[derive(Debug, Clone, Serialize)]
pub struct SearchBenchReport {
    /// Schema version and configuration fingerprint shared by every
    /// `BENCH_*.json` artifact.
    pub meta: BenchMeta,
    /// Campaign seed.
    pub seed: u64,
    /// Schedule length (runs per campaign).
    pub runs: usize,
    /// One row per workload × strategy.
    pub rows: Vec<StrategyRow>,
    /// The BO quality ceiling ([`BO_EDP_CEILING`]).
    pub bo_edp_ceiling: f64,
    /// The BO cost ceiling ([`BO_PROBE_CEILING`]).
    pub bo_probe_ceiling: f64,
    /// Zoo-total BO / EX EDP ratio.
    pub bo_total_edp_ratio: f64,
    /// Per-workload BO-vs-EX ratios.
    pub workload_gates: Vec<WorkloadGate>,
    /// `bo_total_edp_ratio` under the ceiling AND every per-workload
    /// probe gate.
    pub bo_gates_passed: bool,
    /// Layer × age fronts compared against brute-force dominance.
    pub pareto_fronts_checked: usize,
    /// Every front matched the brute-force non-dominated feasible set.
    pub pareto_fronts_exact: bool,
    /// Replay/resume verdicts, one per strategy.
    pub replay: Vec<ReplayRow>,
    /// Every replay row fully identical.
    pub replay_stable: bool,
    /// Every gate above, conjoined.
    pub gates_passed: bool,
}

impl fmt::Display for SearchBenchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "search strategy sweep: seed {:#x}, {} runs/campaign",
            self.seed, self.runs
        )?;
        writeln!(
            f,
            "{:>12} {:>14} {:>12} {:>8} {:>7} {:>8} {:>18}",
            "workload", "strategy", "EDP (J·s)", "probes", "fronts", "members", "checksum"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>12} {:>14} {:>12.4e} {:>8} {:>7} {:>8} {:>18}",
                row.workload,
                row.strategy,
                row.total_edp,
                row.probes,
                row.fronts,
                row.front_members,
                row.decision_checksum
            )?;
        }
        for gate in &self.workload_gates {
            writeln!(
                f,
                "[{:>12}] BO/EX EDP {:.4} | probes {:.3} ({})",
                gate.workload,
                gate.bo_edp_ratio,
                gate.bo_probe_ratio,
                if gate.probe_gate { "ok" } else { "OVER" }
            )?;
        }
        writeln!(
            f,
            "BO zoo-total EDP ratio: {:.4} (ceiling {:.2}) | BO gates: {}",
            self.bo_total_edp_ratio,
            self.bo_edp_ceiling,
            if self.bo_gates_passed { "pass" } else { "FAIL" }
        )?;
        writeln!(
            f,
            "Pareto fronts vs brute force: {} checked, exact: {}",
            self.pareto_fronts_checked,
            if self.pareto_fronts_exact {
                "yes"
            } else {
                "NO"
            }
        )?;
        for row in &self.replay {
            writeln!(
                f,
                "[{:>14}] repeat: {} | engine: {} | resume: {}",
                row.strategy,
                if row.repeat_identical {
                    "ok"
                } else {
                    "DIVERGED"
                },
                if row.engine_matches { "ok" } else { "DIVERGED" },
                if row.resume_identical {
                    "ok"
                } else {
                    "DIVERGED"
                }
            )?;
        }
        write!(
            f,
            "replay stable: {} | gates: {}",
            if self.replay_stable { "yes" } else { "NO" },
            if self.gates_passed { "PASS" } else { "FAIL" }
        )
    }
}

/// A context whose config swaps in `strategy`, everything else paper.
fn context_with(
    ctx: &ExperimentContext,
    strategy: SearchStrategy,
) -> Result<ExperimentContext, OdinError> {
    let config = OdinConfig::builder()
        .crossbar(ctx.config.crossbar().clone())
        .eta(ctx.config.eta())
        .strategy(strategy)
        .build()?;
    Ok(ExperimentContext {
        config,
        schedule: ctx.schedule.clone(),
        seed: ctx.seed,
    })
}

fn campaign(
    ctx: &ExperimentContext,
    net: &NetworkDescriptor,
    strategy: SearchStrategy,
) -> Result<CampaignReport, OdinError> {
    let sctx = context_with(ctx, strategy)?;
    let mut rt = sctx.odin_for(net, workload_dataset(net.name()))?;
    rt.run_campaign(net, &sctx.schedule)
}

fn total_probes(report: &CampaignReport) -> u64 {
    report
        .runs
        .iter()
        .flat_map(|r| &r.decisions)
        .map(|d| d.search_evaluations as u64)
        .sum()
}

fn row_from(
    net: &NetworkDescriptor,
    strategy: SearchStrategy,
    report: &CampaignReport,
) -> StrategyRow {
    StrategyRow {
        workload: net.name().to_string(),
        strategy: strategy.to_string(),
        total_edp: report.total_edp().value(),
        probes: total_probes(report),
        fronts: report.search.pareto_fronts,
        front_members: report.search.pareto_front_members,
        decision_checksum: format!("{:016x}", decision_checksum(report)),
    }
}

/// The brute-force non-dominated feasible set for one layer at one
/// age: evaluate all 36 cells, keep feasible ones, peel the strict
/// Pareto-minimal `[energy, latency, wear]` points, ascending
/// row-major. Among feasible points Deb-constrained dominance reduces
/// to plain Pareto dominance, and infeasible points never dominate
/// feasible ones, so this is exactly the front the exact-regime
/// NSGA-II searcher must report.
fn brute_force_front(
    model: &AnalyticModel,
    layer: &LayerDescriptor,
    age: Seconds,
    eta: f64,
) -> Result<Vec<(OuShape, [f64; 3])>, OdinError> {
    let grid = model.grid();
    let n = grid.levels_per_axis();
    let mut feasible = Vec::new();
    for r in 0..n {
        for c in 0..n {
            let eval = model.evaluate_in(layer, grid.shape(r, c), age, SearchContext::default())?;
            if !eval.feasible(eta) {
                continue;
            }
            let wear = model.wear_rate(layer, eval.shape, eta);
            feasible.push((
                eval.shape,
                [eval.cost.energy.value(), eval.cost.latency.value(), wear],
            ));
        }
    }
    let dominates = |a: &[f64; 3], b: &[f64; 3]| {
        a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
    };
    Ok(feasible
        .iter()
        .filter(|(_, objs)| !feasible.iter().any(|(_, other)| dominates(other, objs)))
        .cloned()
        .collect())
}

/// Checks every layer of every workload at each [`FRONT_AGES`] age:
/// the NSGA-II front from [`pareto_front_with`] (full population, so
/// the searcher probes the whole grid) must equal the brute-force
/// front bit for bit. Returns `(fronts checked, all exact)`.
fn front_exactness(ctx: &ExperimentContext) -> Result<(usize, bool), OdinError> {
    let model = ctx.analytic();
    let eta = ctx.config.eta();
    let strategy = SearchStrategy::pareto();
    let mut checked = 0usize;
    let mut exact = true;
    for net in zoo::paper_workloads() {
        for layer in net.layers() {
            for age in FRONT_AGES {
                let age = Seconds::new(age);
                let front = pareto_front_with(
                    &model,
                    layer,
                    age,
                    eta,
                    (0, 0),
                    strategy,
                    SearchContext::default(),
                )?;
                let brute = brute_force_front(&model, layer, age, eta)?;
                checked += 1;
                let matches = front.points.len() == brute.len()
                    && front.points.iter().zip(&brute).all(|(p, (shape, objs))| {
                        p.eval.shape == *shape
                            && p.eval.cost.energy.value().to_bits() == objs[0].to_bits()
                            && p.eval.cost.latency.value().to_bits() == objs[1].to_bits()
                            && p.wear.to_bits() == objs[2].to_bits()
                    })
                    && front.knee.is_some() == !brute.is_empty()
                    && front.knee.is_none_or(|k| k < front.points.len());
                exact &= matches;
            }
        }
    }
    Ok((checked, exact))
}

/// Seeded-repeat, lockstep-engine, and checkpoint/resume replay checks
/// for one strategy on the given workload. The checkpointed engine run
/// retains every generation; all but the *oldest* are then deleted
/// (simulating a crash that lost most of the store) and the campaign
/// is resumed and replayed to completion.
fn replay_check(
    ctx: &ExperimentContext,
    net: &NetworkDescriptor,
    strategy: SearchStrategy,
    reference: &CampaignReport,
) -> Result<ReplayRow, OdinError> {
    let reference_checksum = decision_checksum(reference);
    let repeat = campaign(ctx, net, strategy)?;
    let repeat_identical = decision_checksum(&repeat) == reference_checksum;

    let dir = std::env::temp_dir().join(format!(
        "odin-search-bench-{}-{}",
        std::process::id(),
        strategy.to_string().replace(['(', ')', ',', '='], "-")
    ));
    std::fs::remove_dir_all(&dir).ok();
    let every = (ctx.schedule.runs() / 8).max(1);
    let engine = CampaignEngine::new(2)
        .checkpoint(CheckpointPolicy::new(&dir).every_runs(every).retain(1024));
    let sctx = context_with(ctx, strategy)?;
    let mut rt = sctx.odin_for(net, workload_dataset(net.name()))?;
    let engined = engine.run_campaign(&mut rt, net, &sctx.schedule)?;
    let engine_matches = decision_checksum(&engined) == reference_checksum;

    let mut generations: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| {
            OdinError::Snapshot(odin_core::SnapshotError::Io {
                path: dir.display().to_string(),
                op: "list",
                message: e.to_string(),
            })
        })?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    generations.sort();
    for stale in generations.iter().skip(1) {
        std::fs::remove_file(stale).ok();
    }
    let (_, resumed) = engine.resume_from(&dir, net, &sctx.schedule)?;
    let resume_identical = decision_checksum(&resumed) == reference_checksum;
    std::fs::remove_dir_all(&dir).ok();

    Ok(ReplayRow {
        strategy: strategy.to_string(),
        repeat_identical,
        engine_matches,
        resume_identical,
    })
}

/// Runs the full sweep and evaluates every gate.
///
/// # Errors
///
/// Propagates campaign and snapshot failures.
pub fn run(ctx: &ExperimentContext) -> Result<SearchBenchReport, OdinError> {
    let mut rows = Vec::new();
    let mut workload_gates = Vec::new();
    let mut bo_edp_sum = 0.0f64;
    let mut ex_edp_sum = 0.0f64;
    let mut probe_gates = true;
    for net in zoo::paper_workloads() {
        let mut ex: Option<CampaignReport> = None;
        let mut bo: Option<CampaignReport> = None;
        for strategy in strategies() {
            let report = campaign(ctx, &net, strategy)?;
            rows.push(row_from(&net, strategy, &report));
            match strategy {
                SearchStrategy::Exhaustive => ex = Some(report),
                SearchStrategy::Bayesian { .. } => bo = Some(report),
                _ => {}
            }
        }
        let (ex, bo) = (ex.expect("EX is swept"), bo.expect("BO is swept"));
        let bo_edp_ratio = bo.total_edp().value() / ex.total_edp().value();
        let bo_probe_ratio = total_probes(&bo) as f64 / total_probes(&ex) as f64;
        let probe_gate = bo_probe_ratio <= BO_PROBE_CEILING;
        probe_gates &= probe_gate;
        bo_edp_sum += bo.total_edp().value();
        ex_edp_sum += ex.total_edp().value();
        workload_gates.push(WorkloadGate {
            workload: net.name().to_string(),
            bo_edp_ratio,
            bo_probe_ratio,
            probe_gate,
        });
    }
    let bo_total_edp_ratio = bo_edp_sum / ex_edp_sum;
    let bo_gates_passed = bo_total_edp_ratio <= BO_EDP_CEILING && probe_gates;

    let (pareto_fronts_checked, pareto_fronts_exact) = front_exactness(ctx)?;

    let replay_net = zoo::vgg11(Dataset::Cifar10);
    let mut replay = Vec::new();
    let mut replay_stable = true;
    for strategy in strategies() {
        let reference = campaign(ctx, &replay_net, strategy)?;
        let row = replay_check(ctx, &replay_net, strategy, &reference)?;
        replay_stable &= row.repeat_identical && row.engine_matches && row.resume_identical;
        replay.push(row);
    }

    let gates_passed = bo_gates_passed && pareto_fronts_exact && replay_stable;
    Ok(SearchBenchReport {
        meta: BenchMeta::paper(),
        seed: ctx.seed,
        runs: ctx.schedule.runs(),
        rows,
        bo_edp_ceiling: BO_EDP_CEILING,
        bo_probe_ceiling: BO_PROBE_CEILING,
        bo_total_edp_ratio,
        workload_gates,
        bo_gates_passed,
        pareto_fronts_checked,
        pareto_fronts_exact,
        replay,
        replay_stable,
        gates_passed,
    })
}

/// Records the sweep into `BENCH_search.json` at the workspace root
/// (same convention as the other `BENCH_*.json` artifacts: generated,
/// never hand-edited).
///
/// # Errors
///
/// Propagates serialization and filesystem failures.
pub fn write_report(report: &SearchBenchReport) -> io::Result<PathBuf> {
    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_search.json"
    ));
    let json = serde_json::to_string_pretty(report).map_err(io::Error::other)?;
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_core::TimeSchedule;

    /// A few-run context so the tier-1 suite stays fast; the strict
    /// sweep gates run in the `search_bench` binary / CI smoke job.
    fn tiny() -> ExperimentContext {
        ExperimentContext {
            schedule: TimeSchedule::geometric(1.0, 1e4, 4),
            ..ExperimentContext::paper()
        }
    }

    #[test]
    fn bo_halves_the_probe_count_at_near_exhaustive_quality() {
        let ctx = tiny();
        let net = zoo::vgg11(Dataset::Cifar10);
        let ex = campaign(&ctx, &net, SearchStrategy::Exhaustive).unwrap();
        let bo = campaign(&ctx, &net, SearchStrategy::bayesian()).unwrap();
        let probe_ratio = total_probes(&bo) as f64 / total_probes(&ex) as f64;
        assert!(probe_ratio <= BO_PROBE_CEILING, "probe ratio {probe_ratio}");
        let edp_ratio = bo.total_edp().value() / ex.total_edp().value();
        assert!(edp_ratio <= 1.10, "BO EDP ratio {edp_ratio}");
        assert!(bo.search.bayesian_searches > 0);
        assert_eq!(total_probes(&bo), bo.search.bayesian_probes);
    }

    #[test]
    fn exact_regime_fronts_match_brute_force_on_vgg11() {
        let ctx = ExperimentContext::paper();
        let model = ctx.analytic();
        let eta = ctx.config.eta();
        let net = zoo::vgg11(Dataset::Cifar10);
        for layer in net.layers() {
            for age in FRONT_AGES {
                let age = Seconds::new(age);
                let front = pareto_front_with(
                    &model,
                    layer,
                    age,
                    eta,
                    (0, 0),
                    SearchStrategy::pareto(),
                    SearchContext::default(),
                )
                .unwrap();
                let brute = brute_force_front(&model, layer, age, eta).unwrap();
                assert_eq!(front.points.len(), brute.len(), "front size");
                for (p, (shape, objs)) in front.points.iter().zip(&brute) {
                    assert_eq!(p.eval.shape, *shape);
                    assert_eq!(p.wear.to_bits(), objs[2].to_bits());
                }
                assert_eq!(front.knee.is_some(), !brute.is_empty());
            }
        }
    }

    #[test]
    fn new_strategies_replay_and_resume_bit_identically() {
        let ctx = tiny();
        let net = zoo::vgg11(Dataset::Cifar10);
        for strategy in [SearchStrategy::bayesian(), SearchStrategy::pareto()] {
            let reference = campaign(&ctx, &net, strategy).unwrap();
            let row = replay_check(&ctx, &net, strategy, &reference).unwrap();
            assert!(row.repeat_identical, "{strategy} repeat diverged");
            assert!(row.engine_matches, "{strategy} engine diverged");
            assert!(row.resume_identical, "{strategy} resume diverged");
        }
    }

    #[test]
    fn pareto_campaigns_record_front_telemetry() {
        let ctx = tiny();
        let net = zoo::vgg11(Dataset::Cifar10);
        let report = campaign(&ctx, &net, SearchStrategy::pareto()).unwrap();
        assert!(report.search.pareto_searches > 0);
        assert!(report.search.pareto_fronts > 0);
        assert!(report.search.pareto_front_members >= report.search.pareto_fronts);
        let row = row_from(&net, SearchStrategy::pareto(), &report);
        assert_eq!(row.fronts, report.search.pareto_fronts);
        assert!(row.decision_checksum.len() == 16);
    }
}
