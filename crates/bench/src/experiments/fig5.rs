//! Fig. 5: layer-wise OU configurations for the unseen VGG11 — the
//! offline-optimal assignment versus what Odin's online policy (with
//! resource-bounded and exhaustive search) selects at `t = t₀`,
//! `1e2 s` and `1e4 s`.

use odin_core::search::SearchStrategy;
use odin_core::{OdinConfig, OdinError, TimeSchedule};
use odin_dnn::zoo::{self, Dataset};
use odin_units::Seconds;
use odin_xbar::OuShape;
use serde::Serialize;

use crate::setup::ExperimentContext;

/// Layer-wise OU products for one strategy at one instant.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Series {
    /// Strategy label ("offline", "odin-RB", "odin-EX").
    pub label: String,
    /// `R·C` per layer, in layer order.
    pub products: Vec<usize>,
}

/// The three-panel Fig. 5 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Result {
    /// One panel per sampled instant: `(time, series)`.
    pub panels: Vec<(f64, Vec<Fig5Series>)>,
}

impl Fig5Result {
    /// Mean absolute log₂ gap between a strategy's products and the
    /// offline-optimal products in one panel (lower = closer match).
    #[must_use]
    pub fn gap_to_offline(&self, panel: usize, label: &str) -> Option<f64> {
        let (_, series) = self.panels.get(panel)?;
        let offline = &series.iter().find(|s| s.label == "offline")?.products;
        let target = &series.iter().find(|s| s.label == label)?.products;
        let n = offline.len().min(target.len());
        if n == 0 {
            return None;
        }
        let sum: f64 = offline
            .iter()
            .zip(target)
            .map(|(&a, &b)| ((a as f64).log2() - (b as f64).log2()).abs())
            .sum();
        Some(sum / n as f64)
    }
}

impl std::fmt::Display for Fig5Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 5 — VGG11 (unseen) layer-wise OU: offline vs online RB/EX"
        )?;
        for (t, series) in &self.panels {
            writeln!(f, "t = {t:.2e} s")?;
            for s in series {
                let joined: Vec<String> = s
                    .products
                    .iter()
                    .map(std::string::ToString::to_string)
                    .collect();
                writeln!(f, "  {:<10} [{}]", s.label, joined.join(", "))?;
            }
        }
        Ok(())
    }
}

/// The Fig. 5 sample instants (panels a–c).
#[must_use]
pub fn sample_times() -> Vec<f64> {
    vec![1.0, 1e2, 1e4]
}

fn layer_products(
    runtime: &mut odin_core::OdinRuntime,
    net: &odin_dnn::NetworkDescriptor,
    t: f64,
) -> Result<Vec<usize>, OdinError> {
    let record = runtime.run_inference(net, Seconds::new(t))?;
    Ok(record.decisions.iter().map(|d| d.chosen.area()).collect())
}

/// Runs the Fig. 5 experiment.
///
/// The "offline" reference is the exhaustive-search optimum computed
/// with full knowledge of VGG11 (what a designer would precompute);
/// the online runtimes start from a leave-one-out policy and adapt
/// between panels by running the inference runs of the schedule that
/// fall before each sample instant.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn run(ctx: &ExperimentContext) -> Result<Fig5Result, OdinError> {
    let net = zoo::vgg11(Dataset::Cifar10);
    let model = ctx.analytic();
    let eta = ctx.config.eta();

    let ex_cfg = OdinConfig::builder()
        .crossbar(ctx.config.crossbar().clone())
        .eta(eta)
        .strategy(SearchStrategy::Exhaustive)
        .build()?;
    let mut rb = ctx.odin_for(&net, Dataset::Cifar10)?;
    let mut ex = odin_core::OdinRuntime::builder(ex_cfg)
        .policy(ctx.odin_for(&net, Dataset::Cifar10)?.policy().clone())
        .build()?;

    // Warm the online runtimes over the schedule between panels.
    let mut panels = Vec::new();
    let mut previous = 0.0f64;
    for t in sample_times() {
        // Adaptation runs strictly between the previous panel and this
        // one.
        let warmup: Vec<f64> = TimeSchedule::paper()
            .times()
            .iter()
            .map(|s| s.value())
            .filter(|&x| x > previous && x < t)
            .collect();
        for &w in &warmup {
            let _ = rb.run_inference(&net, Seconds::new(w))?;
            let _ = ex.run_inference(&net, Seconds::new(w))?;
        }
        previous = t;

        // Offline-optimal assignment at this drift age.
        let mut offline = Vec::new();
        for layer in net.layers() {
            let best = odin_core::search::find_best(
                &model,
                layer,
                Seconds::new(t),
                eta,
                (0, 0),
                SearchStrategy::Exhaustive,
            )?
            .best
            .map_or(OuShape::new(4, 4), |e| e.shape);
            offline.push(best.area());
        }

        let series = vec![
            Fig5Series {
                label: "offline".into(),
                products: offline,
            },
            Fig5Series {
                label: "odin-RB".into(),
                products: layer_products(&mut rb, &net, t)?,
            },
            Fig5Series {
                label: "odin-EX".into(),
                products: layer_products(&mut ex, &net, t)?,
            },
        ];
        panels.push((t, series));
    }
    Ok(Fig5Result { panels })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_converges_toward_offline() {
        let result = run(&ExperimentContext::quick()).unwrap();
        assert_eq!(result.panels.len(), 3);
        // By the second panel (t = 1e2 s, after adaptation runs) RB
        // closely follows the offline assignment (§V.B).
        let late_rb = result.gap_to_offline(1, "odin-RB").unwrap();
        assert!(late_rb < 1.0, "RB gap at 1e2 s: {late_rb}");
        // EX is at least as close as RB in the first panel.
        let rb0 = result.gap_to_offline(0, "odin-RB").unwrap();
        let ex0 = result.gap_to_offline(0, "odin-EX").unwrap();
        assert!(ex0 <= rb0 + 1e-9, "EX {ex0} vs RB {rb0}");
        assert!(result.to_string().contains("VGG11"));
    }
}
