//! Executor-layer campaign: scheduler scaling, engine parity, and
//! serve-fusion gates for the shared `odin-exec` execution layer,
//! recorded into `BENCH_exec.json` at the workspace root.
//!
//! Three sections run back-to-back:
//!
//! - **scaling** — a synthetic round workload driven through
//!   [`Executor`] at 1/2/4/8 workers: wall-clock, speedup over one
//!   worker, and the steal/park/barrier counters. The commit-order
//!   checksum must be identical at every worker count — the
//!   determinism contract both engines lean on.
//! - **campaign parity** — the paper workload through
//!   [`CampaignEngine`] in both shard modes at 1/2/4/8 shards.
//!   Lockstep must reproduce the sequential
//!   [`OdinRuntime::run_campaign`] decision stream bit for bit at
//!   every shard count; independent mode must be replay-stable.
//! - **serving** — the demo fleet once inline and once bounced
//!   through a pooled executor (digests must match), a congested
//!   fleet with cross-tenant fusion enabled (ledger balanced, replay
//!   stable, fused passes counted), and the fault-storm fleet with
//!   fusion on (gold goodput must still clear
//!   [`GOLD_GOODPUT_FLOOR`]).

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use odin_core::prelude::*;
use odin_dnn::zoo::{self, Dataset};
use odin_serve::{ServeConfig, ServeEngine, ServeReport};
use serde::Serialize;

use crate::experiments::chaos::fnv1a64;
use crate::experiments::serving::{self, GOLD_GOODPUT_FLOOR};
use crate::BenchMeta;

/// The swept executor worker counts.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The swept campaign shard counts.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One executor-bench workload.
#[derive(Debug, Clone)]
pub struct ExecWorkload {
    /// Synthetic rounds submitted per worker count.
    pub rounds: usize,
    /// Tasks per synthetic round.
    pub tasks_per_round: usize,
    /// Xorshift iterations each synthetic task spins.
    pub spin_iters: u32,
    /// Scheduled inferences in the parity campaigns.
    pub campaign_runs: usize,
    /// Healthy serve-trace horizon, virtual milliseconds.
    pub serve_duration_ms: f64,
    /// Storm serve-trace horizon, virtual milliseconds.
    pub storm_duration_ms: f64,
    /// Stuck-cell fault rate of the storm fabric.
    pub fault_rate: f64,
    /// Fusion window of the fused scenarios.
    pub fusion_window: usize,
    /// Seed for the executor, campaigns, and serve traces.
    pub seed: u64,
}

impl ExecWorkload {
    /// The reduced smoke workload (`--quick`).
    #[must_use]
    pub fn quick() -> Self {
        ExecWorkload {
            rounds: 8,
            tasks_per_round: 32,
            spin_iters: 2_000,
            campaign_runs: 6,
            serve_duration_ms: 400.0,
            storm_duration_ms: 400.0,
            fault_rate: 0.15,
            fusion_window: 4,
            seed: 7,
        }
    }

    /// The full workload.
    #[must_use]
    pub fn paper() -> Self {
        ExecWorkload {
            rounds: 64,
            tasks_per_round: 128,
            spin_iters: 20_000,
            campaign_runs: 16,
            serve_duration_ms: 1_500.0,
            storm_duration_ms: 800.0,
            fault_rate: 0.15,
            fusion_window: 4,
            seed: 7,
        }
    }
}

/// One worker-count point of the scaling sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Executor workers.
    pub workers: usize,
    /// Wall-clock for all rounds, milliseconds.
    pub wall_ms: f64,
    /// Speedup over the one-worker point.
    pub speedup: f64,
    /// Tasks executed.
    pub executed: u64,
    /// Tasks stolen across deques.
    pub stolen: u64,
    /// Worker park events.
    pub parked: u64,
    /// Microseconds callers spent blocked on commit barriers.
    pub barrier_wait_us: u64,
    /// Commit-order checksum (hex) — must match every other row.
    pub checksum: String,
}

/// One (mode, shard count) point of the campaign-parity sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ParityRow {
    /// Execution model (`lockstep` / `independent`).
    pub mode: String,
    /// Worker shards.
    pub shards: usize,
    /// Campaign EDP (J·s).
    pub total_edp: f64,
    /// Checksum (hex) over the per-layer decision stream.
    pub decision_checksum: String,
    /// Schedule slots committed by the engine.
    pub committed: u64,
    /// `true` when the decision stream is bit-identical to the
    /// sequential runtime (gated for every lockstep row).
    pub matches_sequential: bool,
}

/// One serving scenario of the executor campaign.
#[derive(Debug, Clone, Serialize)]
pub struct ServeRow {
    /// Scenario name.
    pub scenario: String,
    /// Fusion window in force.
    pub fusion_window: usize,
    /// Requests the arrival trace generated.
    pub generated: u64,
    /// Requests that shared a fused pass beyond its head.
    pub fused: u64,
    /// `(served + served_degraded) / generated`.
    pub goodput: f64,
    /// Goodput of the gold class alone.
    pub gold_goodput: f64,
    /// The total-accounting invariant.
    pub balanced: bool,
    /// Outcome digest (hex).
    pub digest: String,
}

impl ServeRow {
    fn from_report(scenario: &str, window: usize, report: &ServeReport) -> ServeRow {
        ServeRow {
            scenario: scenario.to_string(),
            fusion_window: window,
            generated: report.totals.generated,
            fused: report.telemetry.counter("serve_fused"),
            goodput: report.totals.goodput(),
            gold_goodput: report.goodput(odin_serve::QosClass::Gold),
            balanced: report.balanced(),
            digest: format!("{:016x}", report.digest),
        }
    }
}

/// The recorded executor campaign (`BENCH_exec.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ExecBenchReport {
    /// Schema version and configuration fingerprint shared by every
    /// `BENCH_*.json` artifact.
    pub meta: BenchMeta,
    /// Executor/campaign/trace seed.
    pub seed: u64,
    /// Scaling sweep, one row per worker count.
    pub scaling: Vec<ScalingRow>,
    /// `true` iff every scaling row committed the same checksum.
    pub scheduler_deterministic: bool,
    /// Parity sweep, one row per (mode, shard count).
    pub parity: Vec<ParityRow>,
    /// `true` iff every lockstep row matched the sequential stream.
    pub lockstep_parity: bool,
    /// `true` iff a replayed independent campaign reproduced its
    /// decision checksum at every shard count.
    pub independent_replay_stable: bool,
    /// `true` iff the pooled-executor serve digest equalled inline.
    pub serve_locus_invariant: bool,
    /// `true` iff a fused replay reproduced the fused digest.
    pub fused_replay_matches: bool,
    /// The gate the fused storm's gold goodput must clear.
    pub gold_goodput_floor: f64,
    /// Serving scenarios: inline, pooled, fused, fused storm.
    pub serve: Vec<ServeRow>,
    /// Every gate above, conjoined.
    pub gates_passed: bool,
}

impl fmt::Display for ExecBenchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "executor campaign: seed {}", self.seed)?;
        writeln!(
            f,
            "{:>8} {:>10} {:>8} {:>9} {:>8} {:>8} {:>12} {:>18}",
            "workers",
            "wall (ms)",
            "speedup",
            "executed",
            "stolen",
            "parked",
            "barrier (µs)",
            "checksum"
        )?;
        for row in &self.scaling {
            writeln!(
                f,
                "{:>8} {:>10.1} {:>7.2}× {:>9} {:>8} {:>8} {:>12} {:>18}",
                row.workers,
                row.wall_ms,
                row.speedup,
                row.executed,
                row.stolen,
                row.parked,
                row.barrier_wait_us,
                row.checksum
            )?;
        }
        writeln!(
            f,
            "scheduler deterministic: {}",
            if self.scheduler_deterministic {
                "yes"
            } else {
                "NO"
            }
        )?;
        writeln!(
            f,
            "{:>12} {:>7} {:>12} {:>18} {:>10} {:>8}",
            "mode", "shards", "EDP (J·s)", "decisions", "committed", "parity"
        )?;
        for row in &self.parity {
            writeln!(
                f,
                "{:>12} {:>7} {:>12.4e} {:>18} {:>10} {:>8}",
                row.mode,
                row.shards,
                row.total_edp,
                row.decision_checksum,
                row.committed,
                if row.matches_sequential { "yes" } else { "—" }
            )?;
        }
        writeln!(
            f,
            "lockstep parity: {} | independent replay-stable: {}",
            if self.lockstep_parity { "yes" } else { "NO" },
            if self.independent_replay_stable {
                "yes"
            } else {
                "NO"
            }
        )?;
        for row in &self.serve {
            writeln!(
                f,
                "[{}] window {} | {} generated, {} fused | goodput {:.3} (gold {:.3}) | balanced: {} | digest {}",
                row.scenario,
                row.fusion_window,
                row.generated,
                row.fused,
                row.goodput,
                row.gold_goodput,
                if row.balanced { "yes" } else { "NO" },
                row.digest
            )?;
        }
        write!(
            f,
            "serve locus-invariant: {} | fused replay: {} | gold goodput floor {:.2} | gates: {}",
            if self.serve_locus_invariant {
                "yes"
            } else {
                "NO"
            },
            if self.fused_replay_matches {
                "yes"
            } else {
                "NO"
            },
            self.gold_goodput_floor,
            if self.gates_passed { "PASS" } else { "FAIL" }
        )
    }
}

/// One deterministic synthetic task: an xorshift spin seeded by the
/// (round, slot) coordinates, so the result is a pure function of the
/// task identity and the commit-order checksum is a pure function of
/// the executor's ordering contract.
fn spin(seed: u64, iters: u32) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

/// Order-sensitive fold of one committed result into the checksum.
fn fold(hash: u64, value: u64) -> u64 {
    fnv1a64(&(hash.rotate_left(5) ^ value).to_le_bytes())
}

fn scaling_sweep(workload: &ExecWorkload) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let mut base_wall = None;
    for workers in WORKER_COUNTS {
        let exec = Executor::new(workers, workload.seed);
        let before = exec.stats();
        let mut checksum = 0u64;
        let start = Instant::now();
        for round in 0..workload.rounds {
            let iters = workload.spin_iters;
            let tasks: Vec<odin_exec::RoundTask<u64>> = (0..workload.tasks_per_round)
                .map(|slot| {
                    let seed = workload
                        .seed
                        .wrapping_add((round as u64) << 32)
                        .wrapping_add(slot as u64);
                    Box::new(move || spin(seed, iters)) as odin_exec::RoundTask<u64>
                })
                .collect();
            for value in exec.run_round(tasks) {
                checksum = fold(checksum, value);
            }
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let delta = exec.stats().since(&before);
        let base = *base_wall.get_or_insert(wall_ms);
        rows.push(ScalingRow {
            workers,
            wall_ms,
            speedup: base / wall_ms,
            executed: delta.executed,
            stolen: delta.stolen,
            parked: delta.parked,
            barrier_wait_us: delta.barrier_wait_ns / 1_000,
            checksum: format!("{checksum:016x}"),
        });
    }
    rows
}

/// Checksum over a campaign's full per-layer decision stream: layer
/// index, predicted and chosen shapes, mismatch flag, and the chosen
/// evaluation's EDP bits, in run order. Bit-identical decision
/// streams — the lockstep parity contract — produce equal checksums.
#[must_use]
pub fn decision_checksum(report: &CampaignReport) -> u64 {
    let mut hash = 0u64;
    for run in &report.runs {
        for d in &run.decisions {
            hash = fold(hash, d.layer_index as u64);
            hash = fold(
                hash,
                ((d.predicted.rows() as u64) << 48)
                    | ((d.predicted.cols() as u64) << 32)
                    | ((d.chosen.rows() as u64) << 16)
                    | (d.chosen.cols() as u64),
            );
            hash = fold(hash, u64::from(d.mismatch));
            hash = fold(hash, d.eval.edp.value().to_bits());
        }
        hash = fold(hash, run.inference.energy.value().to_bits());
    }
    hash
}

fn fresh_runtime(seed: u64) -> Result<OdinRuntime, OdinError> {
    OdinRuntime::builder(OdinConfig::paper())
        .rng_seed(seed)
        .build()
}

fn parity_sweep(workload: &ExecWorkload) -> Result<(Vec<ParityRow>, bool, bool), OdinError> {
    let net = zoo::vgg11(Dataset::Cifar10);
    let schedule = TimeSchedule::geometric(1.0, 1e4, workload.campaign_runs);

    let sequential = fresh_runtime(workload.seed)?.run_campaign(&net, &schedule)?;
    let sequential_checksum = decision_checksum(&sequential);
    let sequential_edp = sequential.total_edp().value();

    let mut rows = Vec::new();
    let mut lockstep_parity = true;
    let mut independent_replay_stable = true;
    for mode in [ShardMode::Lockstep, ShardMode::Independent] {
        for shards in SHARD_COUNTS {
            let engine = CampaignEngine::new(shards).with_mode(mode);
            let mut rt = fresh_runtime(workload.seed)?;
            let report = engine.run_campaign(&mut rt, &net, &schedule)?;
            let checksum = decision_checksum(&report);
            let matches_sequential = checksum == sequential_checksum
                && report.total_edp().value().to_bits() == sequential_edp.to_bits();
            match mode {
                ShardMode::Lockstep => lockstep_parity &= matches_sequential,
                ShardMode::Independent => {
                    let mut rt2 = fresh_runtime(workload.seed)?;
                    let replay = engine.run_campaign(&mut rt2, &net, &schedule)?;
                    independent_replay_stable &= decision_checksum(&replay) == checksum;
                }
            }
            rows.push(ParityRow {
                mode: mode.to_string(),
                shards,
                total_edp: report.total_edp().value(),
                decision_checksum: format!("{checksum:016x}"),
                committed: report.engine.committed,
                matches_sequential,
            });
        }
    }
    Ok((rows, lockstep_parity, independent_replay_stable))
}

/// The congested fused fleet: the demo three-tenant shape with a 20 ms
/// host pass, so queues build and compatible tenants actually share
/// fused passes.
#[must_use]
pub fn fused_config(duration_ms: f64, seed: u64, window: usize) -> ServeConfig {
    let mut config = ServeConfig::demo(seed);
    config.trace.duration_ms = duration_ms;
    config.host_overhead_ms = 20.0;
    config.deadline_ms = [400.0; odin_serve::QosClass::COUNT];
    config.fusion_window = window;
    config
}

fn serve_sweep(workload: &ExecWorkload) -> Result<(Vec<ServeRow>, bool, bool), OdinError> {
    let mut demo = ServeConfig::demo(workload.seed);
    demo.trace.duration_ms = workload.serve_duration_ms;

    let inline = ServeEngine::builder(demo.clone())
        .build()?
        .run(&mut fresh_runtime(workload.seed)?)?;
    let pooled_exec = Arc::new(Executor::new(3, workload.seed));
    let pooled = ServeEngine::builder(demo)
        .executor(Arc::clone(&pooled_exec))
        .build()?
        .run(&mut fresh_runtime(workload.seed)?)?;
    let locus_invariant = pooled.digest == inline.digest && pooled.totals == inline.totals;

    let fused_cfg = fused_config(
        workload.serve_duration_ms,
        workload.seed,
        workload.fusion_window,
    );
    let fused_engine = ServeEngine::builder(fused_cfg)
        .telemetry(Telemetry::enabled())
        .build()?;
    let fused = fused_engine.run(&mut fresh_runtime(workload.seed)?)?;
    let fused_replay = fused_engine.run(&mut fresh_runtime(workload.seed)?)?;
    let fused_replay_matches =
        fused_replay.digest == fused.digest && fused_replay.totals == fused.totals;

    let mut storm_cfg = serving::storm_config(workload.storm_duration_ms, workload.seed);
    storm_cfg.fusion_window = workload.fusion_window;
    let mut storm_rt = serving::storm_runtime(&storm_cfg, workload.fault_rate)?;
    let window = storm_cfg.fusion_window;
    let storm = ServeEngine::builder(storm_cfg)
        .telemetry(Telemetry::enabled())
        .build()?
        .run(&mut storm_rt)?;

    let rows = vec![
        ServeRow::from_report("inline", 1, &inline),
        ServeRow::from_report("pooled", 1, &pooled),
        ServeRow::from_report("fused", workload.fusion_window, &fused),
        ServeRow::from_report("fused-storm", window, &storm),
    ];
    Ok((rows, locus_invariant, fused_replay_matches))
}

/// Runs all three sections and conjoins the gates.
///
/// # Errors
///
/// Propagates configuration, build, and campaign failures.
pub fn run(workload: &ExecWorkload) -> Result<ExecBenchReport, OdinError> {
    let scaling = scaling_sweep(workload);
    let scheduler_deterministic = scaling
        .iter()
        .all(|row| row.checksum == scaling[0].checksum);

    let (parity, lockstep_parity, independent_replay_stable) = parity_sweep(workload)?;
    let (serve, serve_locus_invariant, fused_replay_matches) = serve_sweep(workload)?;

    let fused_balanced = serve
        .iter()
        .filter(|row| row.scenario.starts_with("fused"))
        .all(|row| row.balanced);
    let storm_gate = serve
        .iter()
        .find(|row| row.scenario == "fused-storm")
        .is_some_and(|row| row.balanced && row.gold_goodput >= GOLD_GOODPUT_FLOOR);

    let gates_passed = scheduler_deterministic
        && lockstep_parity
        && independent_replay_stable
        && serve_locus_invariant
        && fused_replay_matches
        && fused_balanced
        && storm_gate;

    Ok(ExecBenchReport {
        meta: BenchMeta::paper(),
        seed: workload.seed,
        scaling,
        scheduler_deterministic,
        parity,
        lockstep_parity,
        independent_replay_stable,
        serve_locus_invariant,
        fused_replay_matches,
        gold_goodput_floor: GOLD_GOODPUT_FLOOR,
        serve,
        gates_passed,
    })
}

/// Records the campaign into `BENCH_exec.json` at the workspace root
/// (same convention as the other `BENCH_*.json` artifacts: generated,
/// never hand-edited).
///
/// # Errors
///
/// Propagates serialization and filesystem failures.
pub fn write_report(report: &ExecBenchReport) -> io::Result<PathBuf> {
    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_exec.json"
    ));
    let json = serde_json::to_string_pretty(report).map_err(io::Error::other)?;
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExecWorkload {
        ExecWorkload {
            rounds: 2,
            tasks_per_round: 8,
            spin_iters: 200,
            campaign_runs: 3,
            serve_duration_ms: 200.0,
            storm_duration_ms: 200.0,
            fault_rate: 0.15,
            fusion_window: 3,
            seed: 7,
        }
    }

    #[test]
    fn scaling_checksums_agree_at_every_worker_count() {
        let rows = scaling_sweep(&tiny());
        assert_eq!(rows.len(), WORKER_COUNTS.len());
        for row in &rows {
            assert_eq!(row.checksum, rows[0].checksum, "{} workers", row.workers);
            assert_eq!(row.executed, (2 * 8) as u64);
        }
    }

    #[test]
    fn campaign_gates_hold_on_the_tiny_workload() {
        let (rows, lockstep, independent) = parity_sweep(&tiny()).unwrap();
        assert_eq!(rows.len(), 2 * SHARD_COUNTS.len());
        assert!(lockstep, "lockstep must match the sequential stream");
        assert!(independent, "independent replay must be stable");
    }

    #[test]
    fn serve_gates_hold_on_the_tiny_workload() {
        let (rows, locus_invariant, fused_replay) = serve_sweep(&tiny()).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(locus_invariant, "pooled digest must equal inline");
        assert!(fused_replay, "fused replay must reproduce the digest");
        for row in &rows {
            assert!(row.balanced, "{}: ledger must balance", row.scenario);
        }
    }

    #[test]
    fn report_renders_and_serializes() {
        let workload = tiny();
        let report = run(&workload).unwrap();
        assert!(report.scheduler_deterministic);
        assert!(report.lockstep_parity);
        let table = report.to_string();
        assert!(table.contains("lockstep"));
        assert!(table.contains("fused-storm"));
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"gates_passed\""));
    }
}
