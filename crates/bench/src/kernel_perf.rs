//! Wall-clock comparison of the hot-path kernels against their scalar
//! references: the flat [`LayerKernel`] grid pass vs. 36 virtual
//! [`OuEvaluator::evaluate_in`] calls, the scratch-buffer MLP forward
//! vs. the allocating one, and the [`DriftMemo`] vs. a raw `powf` per
//! query.
//!
//! Shared by the `kernel_perf` binary and the `kernel_perf`
//! integration test; both record the numbers into `BENCH_kernel.json`
//! at the workspace root, which DESIGN.md §10 and the README table
//! quote.

use std::fmt;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use odin_core::kernel::{GridEvals, LayerKernel};
use odin_core::search::{OuEvaluator, SearchContext};
use odin_core::AnalyticModel;
use odin_device::{DeviceParams, DriftMemo, DriftModel};
use odin_dnn::zoo::{self, Dataset};
use odin_policy::{MlpScratch, MultiHeadMlp};
use odin_units::Seconds;
use odin_xbar::CrossbarConfig;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::experiments::ratio;

/// Measured nanoseconds-per-operation for one kernel/reference pair.
#[derive(Debug, Clone, Serialize)]
pub struct PerfRow {
    /// What was measured.
    pub name: String,
    /// The scalar / allocating reference implementation, ns per op.
    pub reference_ns: f64,
    /// The hot-path implementation, ns per op.
    pub kernel_ns: f64,
    /// `reference_ns / kernel_ns`.
    pub speedup: f64,
}

impl PerfRow {
    fn new(name: &str, reference_ns: f64, kernel_ns: f64) -> Self {
        Self {
            name: name.to_string(),
            reference_ns,
            kernel_ns,
            speedup: reference_ns / kernel_ns.max(f64::MIN_POSITIVE),
        }
    }
}

/// The hot-path perf report (`BENCH_kernel.json`).
#[derive(Debug, Clone, Serialize)]
pub struct KernelPerfReport {
    /// Schema version and configuration fingerprint shared by every
    /// `BENCH_*.json` artifact.
    pub meta: crate::BenchMeta,
    /// Measurement rounds per kernel (each round covers every VGG11
    /// layer × one programming age).
    pub iters: usize,
    /// One row per kernel/reference pair.
    pub rows: Vec<PerfRow>,
    /// `true` when the kernel and scalar grid sweeps accumulated
    /// bit-identical EDP checksums — the parity contract, measured
    /// rather than assumed.
    pub parity: bool,
}

impl KernelPerfReport {
    /// The row with the given name, if measured.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&PerfRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

impl fmt::Display for KernelPerfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hot-path kernels vs scalar references ({} rounds)",
            self.iters
        )?;
        writeln!(
            f,
            "{:<22} {:>14} {:>12} {:>9}",
            "kernel", "reference ns", "kernel ns", "speedup"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<22} {:>14.0} {:>12.0} {:>9}",
                row.name,
                row.reference_ns,
                row.kernel_ns,
                ratio(row.speedup)
            )?;
        }
        write!(
            f,
            "grid parity: {}",
            if self.parity {
                "bit-identical"
            } else {
                "MISMATCH"
            }
        )
    }
}

/// Runs all measurements at `iters` rounds each and returns the
/// report. Ages cycle through eight decades so the drift memo is
/// exercised at a realistic (repeating) age mix.
#[must_use]
pub fn run(iters: usize) -> KernelPerfReport {
    let model = AnalyticModel::new(CrossbarConfig::paper_128()).expect("paper crossbar is valid");
    let net = zoo::vgg11(Dataset::Cifar10);
    let ctx = SearchContext::default();
    let grid = model.grid();
    let levels = grid.levels_per_axis();
    let ages: Vec<Seconds> = (0..8).map(|i| Seconds::new(10f64.powi(i))).collect();
    let grids = iters * net.layers().len();

    // Scalar reference: one virtual evaluate_in call per grid shape,
    // each rebuilding the layer mapping and recomputing the severity.
    let mut scalar_sum = 0.0f64;
    let start = Instant::now();
    for round in 0..iters {
        let age = ages[round % ages.len()];
        for layer in net.layers() {
            for r in 0..levels {
                for c in 0..levels {
                    let eval = model
                        .evaluate_in(layer, grid.shape(r, c), age, ctx)
                        .expect("every grid shape maps");
                    scalar_sum += eval.edp.value();
                }
            }
        }
    }
    let scalar_grid_ns = start.elapsed().as_nanos() as f64 / grids as f64;
    black_box(scalar_sum);

    // Kernel, fresh build per pass: exactly what the OuEvaluator seam
    // does inside a search (`AnalyticModel::evaluate_grid`).
    let mut evals = GridEvals::new();
    let mut fresh_sum = 0.0f64;
    let start = Instant::now();
    for round in 0..iters {
        let age = ages[round % ages.len()];
        for layer in net.layers() {
            let kernel = LayerKernel::new(&model, layer).expect("mappable layer");
            kernel.evaluate_grid_into(age, ctx, &mut evals);
            for e in evals.iter() {
                fresh_sum += e.edp.value();
            }
        }
    }
    let fresh_grid_ns = start.elapsed().as_nanos() as f64 / grids as f64;
    black_box(fresh_sum);

    // Kernel, amortized: tables built once per (layer, fabric) and
    // reused across ages — the steady state of a campaign.
    let kernels: Vec<LayerKernel> = net
        .layers()
        .iter()
        .map(|l| LayerKernel::new(&model, l).expect("mappable layer"))
        .collect();
    let mut amortized_sum = 0.0f64;
    let start = Instant::now();
    for round in 0..iters {
        let age = ages[round % ages.len()];
        for kernel in &kernels {
            kernel.evaluate_grid_into(age, ctx, &mut evals);
            for e in evals.iter() {
                amortized_sum += e.edp.value();
            }
        }
    }
    let amortized_grid_ns = start.elapsed().as_nanos() as f64 / grids as f64;
    black_box(amortized_sum);

    // Both kernel modes accumulate in the scalar sweep's exact visit
    // order, so bit-identical terms give bit-identical sums.
    let parity = scalar_sum.to_bits() == fresh_sum.to_bits()
        && scalar_sum.to_bits() == amortized_sum.to_bits();

    // MLP forward: fresh Vec allocations per call vs. reused scratch.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mlp = MultiHeadMlp::new(4, 16, 6, &mut rng);
    let feats: Vec<[f64; 4]> = (0..64)
        .map(|_| [rng.gen(), rng.gen(), rng.gen(), rng.gen()])
        .collect();
    let forwards = iters * 200;
    let mut alloc_acc = 0.0f64;
    let start = Instant::now();
    for i in 0..forwards {
        let (pa, pb) = mlp.forward(&feats[i % feats.len()]);
        alloc_acc += pa[0] + pb[5];
    }
    let alloc_forward_ns = start.elapsed().as_nanos() as f64 / forwards as f64;
    black_box(alloc_acc);

    let mut scratch = MlpScratch::new();
    let mut scratch_acc = 0.0f64;
    let start = Instant::now();
    for i in 0..forwards {
        mlp.forward_into(&feats[i % feats.len()], &mut scratch);
        scratch_acc += scratch.head_a()[0] + scratch.head_b()[5];
    }
    let scratch_forward_ns = start.elapsed().as_nanos() as f64 / forwards as f64;
    black_box(scratch_acc);

    // Drift decay factor: a `powf` per query vs. the direct-mapped
    // memo (the age mix repeats, as it does across a campaign round).
    let drift = DriftModel::new(&DeviceParams::paper());
    let mut memo = DriftMemo::new(drift.clone());
    let queries = iters * 500;
    let mut powf_acc = 0.0f64;
    let start = Instant::now();
    for i in 0..queries {
        powf_acc += drift.scale_at(ages[i % ages.len()]);
    }
    let powf_ns = start.elapsed().as_nanos() as f64 / queries as f64;
    black_box(powf_acc);

    let mut memo_acc = 0.0f64;
    let start = Instant::now();
    for i in 0..queries {
        memo_acc += memo.scale_at(ages[i % ages.len()]);
    }
    let memo_ns = start.elapsed().as_nanos() as f64 / queries as f64;
    black_box(memo_acc);

    KernelPerfReport {
        meta: crate::BenchMeta::paper(),
        iters,
        rows: vec![
            PerfRow::new("grid_pass_fresh", scalar_grid_ns, fresh_grid_ns),
            PerfRow::new("grid_pass_amortized", scalar_grid_ns, amortized_grid_ns),
            PerfRow::new("mlp_forward", alloc_forward_ns, scratch_forward_ns),
            PerfRow::new("drift_scale", powf_ns, memo_ns),
        ],
        parity: parity && powf_acc.to_bits() == memo_acc.to_bits(),
    }
}

/// Writes the report to `BENCH_kernel.json` at the workspace root
/// (resolved relative to this crate's manifest, so it lands in the
/// same place whether invoked via `cargo run`, `cargo test`, or from
/// another directory).
///
/// # Errors
///
/// Returns I/O errors from writing the file.
pub fn write_report(report: &KernelPerfReport) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_kernel.json"
    ));
    let json = serde_json::to_string_pretty(report).map_err(std::io::Error::other)?;
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_reports_all_rows_with_parity() {
        let report = run(2);
        assert!(report.parity, "kernel sweeps must match the scalar path");
        for name in [
            "grid_pass_fresh",
            "grid_pass_amortized",
            "mlp_forward",
            "drift_scale",
        ] {
            let row = report.row(name).expect(name);
            assert!(row.reference_ns > 0.0 && row.kernel_ns > 0.0, "{name}");
        }
        assert!(report.row("nope").is_none());
        let text = report.to_string();
        assert!(text.contains("grid parity: bit-identical"), "{text}");
    }
}
