//! Wall-clock comparison of the hot-path kernels against their scalar
//! references: the flat [`LayerKernel`] grid pass vs. 36 virtual
//! [`OuEvaluator::evaluate_in`] calls (with a SIMD lane-width
//! ablation), the scratch-buffer MLP forward vs. the allocating one,
//! the batched SIMD forward vs. per-row calls (plus its lane ablation
//! and the guarded-INT8 precision ablation), and the [`DriftMemo`]
//! vs. a raw `powf` per query.
//!
//! Shared by the `kernel_perf` binary and the `kernel_perf`
//! integration test; both record the numbers into `BENCH_kernel.json`
//! at the workspace root, which DESIGN.md §10 and the README table
//! quote.

use std::fmt;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use odin_core::kernel::{GridEvals, LayerKernel};
use odin_core::search::{OuEvaluator, SearchContext};
use odin_core::AnalyticModel;
use odin_device::{DeviceParams, DriftMemo, DriftModel};
use odin_dnn::zoo::{self, Dataset};
use odin_policy::{
    MlpScratch, MultiHeadMlp, OuPolicy, PolicyConfig, QuantizedPolicy, TrainingExample,
};
use odin_simd::Backend;
use odin_units::Seconds;
use odin_xbar::CrossbarConfig;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::experiments::ratio;

/// Measured nanoseconds-per-operation for one kernel/reference pair.
#[derive(Debug, Clone, Serialize)]
pub struct PerfRow {
    /// What was measured.
    pub name: String,
    /// The scalar / allocating reference implementation, ns per op.
    pub reference_ns: f64,
    /// The hot-path implementation, ns per op.
    pub kernel_ns: f64,
    /// `reference_ns / kernel_ns`.
    pub speedup: f64,
}

impl PerfRow {
    fn new(name: &str, reference_ns: f64, kernel_ns: f64) -> Self {
        Self {
            name: name.to_string(),
            reference_ns,
            kernel_ns,
            speedup: reference_ns / kernel_ns.max(f64::MIN_POSITIVE),
        }
    }
}

/// The hot-path perf report (`BENCH_kernel.json`).
#[derive(Debug, Clone, Serialize)]
pub struct KernelPerfReport {
    /// Schema version and configuration fingerprint shared by every
    /// `BENCH_*.json` artifact.
    pub meta: crate::BenchMeta,
    /// The resolved SIMD backend the un-forced rows ran under (the
    /// lane-ablation rows force their own; see `ODIN_SIMD`).
    pub backend: String,
    /// Measurement rounds per kernel (each round covers every VGG11
    /// layer × one programming age).
    pub iters: usize,
    /// One row per kernel/reference pair.
    pub rows: Vec<PerfRow>,
    /// `true` when the kernel and scalar grid sweeps accumulated
    /// bit-identical EDP checksums — the parity contract, measured
    /// rather than assumed.
    pub parity: bool,
}

impl KernelPerfReport {
    /// The row with the given name, if measured.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&PerfRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

impl fmt::Display for KernelPerfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hot-path kernels vs scalar references ({} rounds, backend {})",
            self.iters, self.backend
        )?;
        writeln!(
            f,
            "{:<22} {:>14} {:>12} {:>9}",
            "kernel", "reference ns", "kernel ns", "speedup"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<22} {:>14.0} {:>12.0} {:>9}",
                row.name,
                row.reference_ns,
                row.kernel_ns,
                ratio(row.speedup)
            )?;
        }
        write!(
            f,
            "grid parity: {}",
            if self.parity {
                "bit-identical"
            } else {
                "MISMATCH"
            }
        )
    }
}

/// Runs all measurements at `iters` rounds each and returns the
/// report. Ages cycle through eight decades so the drift memo is
/// exercised at a realistic (repeating) age mix.
#[must_use]
pub fn run(iters: usize) -> KernelPerfReport {
    let model = AnalyticModel::new(CrossbarConfig::paper_128()).expect("paper crossbar is valid");
    let net = zoo::vgg11(Dataset::Cifar10);
    let ctx = SearchContext::default();
    let grid = model.grid();
    let levels = grid.levels_per_axis();
    let ages: Vec<Seconds> = (0..8).map(|i| Seconds::new(10f64.powi(i))).collect();
    let grids = iters * net.layers().len();

    // Scalar reference: one virtual evaluate_in call per grid shape,
    // each rebuilding the layer mapping and recomputing the severity.
    let mut scalar_sum = 0.0f64;
    let start = Instant::now();
    for round in 0..iters {
        let age = ages[round % ages.len()];
        for layer in net.layers() {
            for r in 0..levels {
                for c in 0..levels {
                    let eval = model
                        .evaluate_in(layer, grid.shape(r, c), age, ctx)
                        .expect("every grid shape maps");
                    scalar_sum += eval.edp.value();
                }
            }
        }
    }
    let scalar_grid_ns = start.elapsed().as_nanos() as f64 / grids as f64;
    black_box(scalar_sum);

    // Kernel, fresh build per pass: exactly what the OuEvaluator seam
    // does inside a search (`AnalyticModel::evaluate_grid`).
    let mut evals = GridEvals::new();
    let mut fresh_sum = 0.0f64;
    let start = Instant::now();
    for round in 0..iters {
        let age = ages[round % ages.len()];
        for layer in net.layers() {
            let kernel = LayerKernel::new(&model, layer).expect("mappable layer");
            kernel.evaluate_grid_into(age, ctx, &mut evals);
            for e in evals.iter() {
                fresh_sum += e.edp.value();
            }
        }
    }
    let fresh_grid_ns = start.elapsed().as_nanos() as f64 / grids as f64;
    black_box(fresh_sum);

    // Kernel, amortized: tables built once per (layer, fabric) and
    // reused across ages — the steady state of a campaign.
    let kernels: Vec<LayerKernel> = net
        .layers()
        .iter()
        .map(|l| LayerKernel::new(&model, l).expect("mappable layer"))
        .collect();
    let mut amortized_sum = 0.0f64;
    let start = Instant::now();
    for round in 0..iters {
        let age = ages[round % ages.len()];
        for kernel in &kernels {
            kernel.evaluate_grid_into(age, ctx, &mut evals);
            for e in evals.iter() {
                amortized_sum += e.edp.value();
            }
        }
    }
    let amortized_grid_ns = start.elapsed().as_nanos() as f64 / grids as f64;
    black_box(amortized_sum);

    // Lane-width ablation: the amortized pass forced through each
    // explicit backend (lanes1 is the scalar path inside the SIMD
    // seam). The backends are bit-identical by contract, so their
    // checksums feed the parity bit too.
    let mut lane_rows = Vec::new();
    let mut lanes_parity = true;
    for (name, backend) in [
        ("grid_pass_lanes1", Backend::Scalar),
        ("grid_pass_lanes2", Backend::Lanes2),
        ("grid_pass_lanes4", Backend::Lanes4),
    ] {
        let mut lane_sum = 0.0f64;
        let start = Instant::now();
        for round in 0..iters {
            let age = ages[round % ages.len()];
            for kernel in &kernels {
                kernel.evaluate_grid_into_with(backend, age, ctx, &mut evals);
                for e in evals.iter() {
                    lane_sum += e.edp.value();
                }
            }
        }
        let lane_ns = start.elapsed().as_nanos() as f64 / grids as f64;
        black_box(lane_sum);
        lanes_parity &= lane_sum.to_bits() == amortized_sum.to_bits();
        lane_rows.push(PerfRow::new(name, scalar_grid_ns, lane_ns));
    }

    // Both kernel modes accumulate in the scalar sweep's exact visit
    // order, so bit-identical terms give bit-identical sums.
    let parity = scalar_sum.to_bits() == fresh_sum.to_bits()
        && scalar_sum.to_bits() == amortized_sum.to_bits()
        && lanes_parity;

    // MLP forward: fresh Vec allocations per call vs. reused scratch.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mlp = MultiHeadMlp::new(4, 16, 6, &mut rng);
    let feats: Vec<[f64; 4]> = (0..64)
        .map(|_| [rng.gen(), rng.gen(), rng.gen(), rng.gen()])
        .collect();
    let forwards = iters * 200;
    let mut alloc_acc = 0.0f64;
    let start = Instant::now();
    for i in 0..forwards {
        let (pa, pb) = mlp.forward(&feats[i % feats.len()]);
        alloc_acc += pa[0] + pb[5];
    }
    let alloc_forward_ns = start.elapsed().as_nanos() as f64 / forwards as f64;
    black_box(alloc_acc);

    let mut scratch = MlpScratch::new();
    let mut scratch_acc = 0.0f64;
    let start = Instant::now();
    for i in 0..forwards {
        mlp.forward_into(&feats[i % feats.len()], &mut scratch);
        scratch_acc += scratch.head_a()[0] + scratch.head_b()[5];
    }
    let scratch_forward_ns = start.elapsed().as_nanos() as f64 / forwards as f64;
    black_box(scratch_acc);

    // Batched forward — the decide-all path: per-row allocating
    // `forward` calls vs one SIMD `forward_batch` over the whole
    // feature matrix, plus the same lane-width ablation as the grid.
    let flat: Vec<f64> = feats.iter().flat_map(|f| f.iter().copied()).collect();
    let batch_rows = feats.len();
    let batches = iters * 4;
    let row_count = batches * batch_rows;
    let mut batch_ref_acc = 0.0f64;
    let start = Instant::now();
    for _ in 0..batches {
        for f in &feats {
            let (pa, pb) = mlp.forward(f);
            batch_ref_acc += pa[0] + pb[5];
        }
    }
    let batch_ref_ns = start.elapsed().as_nanos() as f64 / row_count as f64;
    black_box(batch_ref_acc);

    let mut probs_a = Vec::new();
    let mut probs_b = Vec::new();
    let mut batch_acc = 0.0f64;
    let start = Instant::now();
    for _ in 0..batches {
        mlp.forward_batch(&flat, &mut scratch, &mut probs_a, &mut probs_b);
        batch_acc += probs_a[0] + probs_b[probs_b.len() - 1];
    }
    let batch_ns = start.elapsed().as_nanos() as f64 / row_count as f64;
    black_box(batch_acc);

    let mut batch_lane_rows = Vec::new();
    let mut batch_parity = true;
    for (name, backend) in [
        ("forward_batch_lanes1", Backend::Scalar),
        ("forward_batch_lanes2", Backend::Lanes2),
        ("forward_batch_lanes4", Backend::Lanes4),
    ] {
        let mut lane_acc = 0.0f64;
        let start = Instant::now();
        for _ in 0..batches {
            mlp.forward_batch_with(backend, &flat, &mut scratch, &mut probs_a, &mut probs_b);
            lane_acc += probs_a[0] + probs_b[probs_b.len() - 1];
        }
        let lane_ns = start.elapsed().as_nanos() as f64 / row_count as f64;
        black_box(lane_acc);
        batch_parity &= lane_acc.to_bits() == batch_acc.to_bits();
        batch_lane_rows.push(PerfRow::new(name, batch_ref_ns, lane_ns));
    }

    // Precision ablation: the f64 batched forward vs the guarded INT8
    // path on a policy trained far enough that most rows clear the
    // parity guard. (The INT8 row is informative, not floored — its
    // win is energy/footprint, and every ambiguous row pays for both
    // passes.)
    let mut prng = rand::rngs::StdRng::seed_from_u64(19);
    let mut policy = OuPolicy::new(PolicyConfig::paper(), &mut prng);
    let examples: Vec<TrainingExample> = (0..200)
        .map(|_| {
            let f: [f64; 4] = [prng.gen(), prng.gen(), prng.gen(), prng.gen()];
            let row = ((f[0] * 5.0).round() as usize).min(5);
            let col = ((f[1] * 5.0).round() as usize).min(5);
            TrainingExample::new(f, row, col)
        })
        .collect();
    policy.fit_with(&examples, 60, &mut scratch);
    let quant = QuantizedPolicy::calibrate(&policy, &[]);

    let mut f64_acc = 0.0f64;
    let start = Instant::now();
    for _ in 0..batches {
        policy.predict_batch(&flat, &mut scratch, &mut probs_a, &mut probs_b);
        f64_acc += probs_a[0] + probs_b[probs_b.len() - 1];
    }
    let f64_batch_ns = start.elapsed().as_nanos() as f64 / row_count as f64;
    black_box(f64_acc);

    let mut int8_acc = 0.0f64;
    let mut fallbacks = 0u64;
    let start = Instant::now();
    for _ in 0..batches {
        fallbacks += quant.predict_batch_guarded(
            &policy,
            &flat,
            None,
            &mut scratch,
            &mut probs_a,
            &mut probs_b,
        );
        int8_acc += probs_a[0] + probs_b[probs_b.len() - 1];
    }
    let int8_batch_ns = start.elapsed().as_nanos() as f64 / row_count as f64;
    black_box(int8_acc);
    black_box(fallbacks);

    // Drift decay factor: a `powf` per query vs. the direct-mapped
    // memo (the age mix repeats, as it does across a campaign round).
    let drift = DriftModel::new(&DeviceParams::paper());
    let mut memo = DriftMemo::new(drift.clone());
    let queries = iters * 500;
    let mut powf_acc = 0.0f64;
    let start = Instant::now();
    for i in 0..queries {
        powf_acc += drift.scale_at(ages[i % ages.len()]);
    }
    let powf_ns = start.elapsed().as_nanos() as f64 / queries as f64;
    black_box(powf_acc);

    let mut memo_acc = 0.0f64;
    let start = Instant::now();
    for i in 0..queries {
        memo_acc += memo.scale_at(ages[i % ages.len()]);
    }
    let memo_ns = start.elapsed().as_nanos() as f64 / queries as f64;
    black_box(memo_acc);

    let mut rows = vec![
        PerfRow::new("grid_pass_fresh", scalar_grid_ns, fresh_grid_ns),
        PerfRow::new("grid_pass_amortized", scalar_grid_ns, amortized_grid_ns),
    ];
    rows.extend(lane_rows);
    rows.push(PerfRow::new(
        "mlp_forward",
        alloc_forward_ns,
        scratch_forward_ns,
    ));
    rows.push(PerfRow::new("forward_batch", batch_ref_ns, batch_ns));
    rows.extend(batch_lane_rows);
    rows.push(PerfRow::new("policy_int8", f64_batch_ns, int8_batch_ns));
    rows.push(PerfRow::new("drift_scale", powf_ns, memo_ns));

    KernelPerfReport {
        meta: crate::BenchMeta::paper(),
        backend: Backend::active().resolved().to_string(),
        iters,
        rows,
        parity: parity && batch_parity && powf_acc.to_bits() == memo_acc.to_bits(),
    }
}

/// Writes the report to `BENCH_kernel.json` at the workspace root
/// (resolved relative to this crate's manifest, so it lands in the
/// same place whether invoked via `cargo run`, `cargo test`, or from
/// another directory).
///
/// # Errors
///
/// Returns I/O errors from writing the file.
pub fn write_report(report: &KernelPerfReport) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_kernel.json"
    ));
    let json = serde_json::to_string_pretty(report).map_err(std::io::Error::other)?;
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_reports_all_rows_with_parity() {
        let report = run(2);
        assert!(report.parity, "kernel sweeps must match the scalar path");
        for name in [
            "grid_pass_fresh",
            "grid_pass_amortized",
            "grid_pass_lanes1",
            "grid_pass_lanes2",
            "grid_pass_lanes4",
            "mlp_forward",
            "forward_batch",
            "forward_batch_lanes1",
            "forward_batch_lanes2",
            "forward_batch_lanes4",
            "policy_int8",
            "drift_scale",
        ] {
            let row = report.row(name).expect(name);
            assert!(row.reference_ns > 0.0 && row.kernel_ns > 0.0, "{name}");
        }
        assert!(report.row("nope").is_none());
        assert!(!report.backend.is_empty());
        let text = report.to_string();
        assert!(text.contains("grid parity: bit-identical"), "{text}");
    }
}
