//! Perf-regression gate for the hot-path kernels: runs the shared
//! `kernel_perf` measurement at a reduced round count, asserts the
//! kernel/scalar parity contract, pins loose speedup floors, and
//! records `BENCH_kernel.json` so a plain `cargo test` refreshes the
//! numbers the README and DESIGN.md §10 quote.

#[test]
fn kernel_beats_scalar_reference_with_bit_parity() {
    let report = odin_bench::kernel_perf::run(30);
    assert!(
        report.parity,
        "kernel and scalar sweeps must be bit-identical:\n{report}"
    );

    // Loose floors, far below the typical margins (see BENCH_kernel
    // .json), so a loaded CI box cannot flake the gate: the amortized
    // grid pass and the drift memo must clearly beat their scalar
    // references, and the fresh-build pass (table build + sweep, what
    // the search seam actually runs) must at minimum not regress.
    let amortized = report.row("grid_pass_amortized").expect("row exists");
    assert!(
        amortized.speedup > 1.2,
        "amortized grid pass too slow:\n{report}"
    );
    let fresh = report.row("grid_pass_fresh").expect("row exists");
    assert!(
        fresh.speedup > 0.9,
        "fresh-build grid pass regressed:\n{report}"
    );
    let drift = report.row("drift_scale").expect("row exists");
    assert!(drift.speedup > 1.2, "drift memo too slow:\n{report}");
    let mlp = report.row("mlp_forward").expect("row exists");
    assert!(
        mlp.speedup > 0.9,
        "scratch MLP forward regressed:\n{report}"
    );

    let path = odin_bench::kernel_perf::write_report(&report).expect("BENCH_kernel.json written");
    assert!(path.ends_with("BENCH_kernel.json"), "{}", path.display());
}
