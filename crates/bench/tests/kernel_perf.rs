//! Perf-regression gate for the hot-path kernels: runs the shared
//! `kernel_perf` measurement at a reduced round count, asserts the
//! kernel/scalar parity contract, pins speedup floors, and records
//! `BENCH_kernel.json` so a plain `cargo test` refreshes the numbers
//! the README and DESIGN.md §10/§15 quote.
//!
//! Floors are gated on the build profile: release builds (what CI's
//! perf job runs) demand the ≥2× SIMD wins; debug builds only pin
//! "not slower", because unoptimized lane code is not representative.

#[test]
fn kernel_beats_scalar_reference_with_bit_parity() {
    let report = odin_bench::kernel_perf::run(30);
    assert!(
        report.parity,
        "kernel and scalar sweeps must be bit-identical:\n{report}"
    );

    // Release floors sit far below the typical margins (see
    // BENCH_kernel.json) so a loaded CI box cannot flake the gate,
    // but high enough that losing the vectorization would trip them.
    let (grid_floor, batch_floor) = if cfg!(debug_assertions) {
        (0.9, 0.9)
    } else {
        (2.0, 2.0)
    };
    let amortized = report.row("grid_pass_amortized").expect("row exists");
    assert!(
        amortized.speedup > grid_floor,
        "amortized grid pass too slow:\n{report}"
    );
    let fresh = report.row("grid_pass_fresh").expect("row exists");
    assert!(
        fresh.speedup > 0.9,
        "fresh-build grid pass regressed:\n{report}"
    );
    let batch = report.row("forward_batch").expect("row exists");
    assert!(
        batch.speedup > batch_floor,
        "batched MLP forward too slow:\n{report}"
    );
    let drift = report.row("drift_scale").expect("row exists");
    assert!(drift.speedup > 1.2, "drift memo too slow:\n{report}");
    let mlp = report.row("mlp_forward").expect("row exists");
    assert!(
        mlp.speedup > 0.9,
        "scratch MLP forward regressed:\n{report}"
    );

    // The ablation rows must be present and measured — they are the
    // record DESIGN.md §15 quotes; the INT8 row is informative (its
    // win is energy/footprint, not wall clock) so it carries no floor.
    for name in [
        "grid_pass_lanes1",
        "grid_pass_lanes2",
        "grid_pass_lanes4",
        "forward_batch_lanes1",
        "forward_batch_lanes2",
        "forward_batch_lanes4",
        "policy_int8",
    ] {
        let row = report.row(name).expect(name);
        assert!(row.kernel_ns > 0.0, "{name} not measured:\n{report}");
    }

    let path = odin_bench::kernel_perf::write_report(&report).expect("BENCH_kernel.json written");
    assert!(path.ends_with("BENCH_kernel.json"), "{}", path.display());

    // Schema gate on the artifact actually written: the BenchMeta
    // header must carry the current schema version and the paper-config
    // fingerprint, or downstream trajectory tooling would mix records
    // it cannot compare.
    let written = std::fs::read_to_string(&path).expect("artifact readable");
    let value: serde_json::Value = serde_json::from_str(&written).expect("artifact is JSON");
    assert_eq!(
        value["meta"]["schema_version"],
        serde_json::json!(odin_bench::BENCH_SCHEMA_VERSION)
    );
    let expected = odin_bench::BenchMeta::paper();
    assert_eq!(
        value["meta"]["config_fingerprint"]
            .as_str()
            .expect("fingerprint is a string"),
        expected.config_fingerprint
    );
    assert!(value["backend"].is_string(), "backend field missing");
}
