//! Telemetry gate: runs the shared trace-campaign comparison at a
//! reduced size, asserts the observation-only and reconciliation
//! invariants, and records `BENCH_telemetry.json` plus the Chrome
//! trace artifact so a plain `cargo test` refreshes both.
//!
//! The <2 % overhead target is recorded, not asserted — wall-clock
//! ratios on a loaded CI box flake; the invariants that cannot flake
//! (bit-identical reports, counter reconciliation, artifact
//! well-formedness) are the gate.

use odin_bench::experiments::telemetry::{self, TraceWorkload};

#[test]
fn trace_campaign_is_equivalent_reconciled_and_perfetto_loadable() {
    let workload = TraceWorkload {
        runs: 12,
        shards: 2,
        samples: 1,
        seed: 7,
    };
    let outcome = telemetry::run(&workload).unwrap();
    let mut report = outcome.report;
    assert!(
        report.perturbation_free,
        "telemetry must not change a single bit of the campaign:\n{report}"
    );
    assert!(
        report.counters_reconcile,
        "summary counters must match the report's cache/engine stats:\n{report}"
    );
    assert!(
        report.events_captured > 0,
        "traced ring is empty:\n{report}"
    );
    assert_eq!(report.meta.schema_version, odin_bench::BENCH_SCHEMA_VERSION);
    assert_eq!(
        report.meta.config_fingerprint.len(),
        16,
        "fingerprint is a 64-bit hex digest"
    );

    let trace_path = telemetry::write_trace(&outcome.telemetry).expect("trace artifact written");
    let text = std::fs::read_to_string(&trace_path).expect("trace readable");
    let value: serde_json::Value = serde_json::from_str(&text).expect("trace is valid JSON");
    let events = value["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(events.len(), report.events_captured);
    assert!(events.iter().all(|e| e["ph"] == "X" && e["cat"] == "odin"));

    report.trace_path = Some(trace_path.display().to_string());
    let path = telemetry::write_report(&report).expect("BENCH_telemetry.json written");
    assert!(path.ends_with("BENCH_telemetry.json"), "{}", path.display());
}
