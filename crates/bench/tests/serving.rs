//! End-to-end serving gates: drive the `serve_campaign` and
//! `serve_chaos` binaries the way CI does and assert their own gates
//! hold — balanced accounting, bit-identical replay, the storm's gold
//! goodput floor, and kill/resume equivalence under the fault-storm
//! ramp.

use std::process::Command;

#[test]
fn serve_campaign_emits_a_balanced_gated_report() {
    let out = Command::new(env!("CARGO_BIN_EXE_serve_campaign"))
        .args(["--quick", "--seed", "11"])
        .output()
        .expect("serve_campaign spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "serve_campaign failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("replay bit-identical: yes"), "{stdout}");
    assert!(stdout.contains("balanced: yes"), "{stdout}");
    assert!(stdout.contains("BENCH_serving.json"), "{stdout}");
}

#[test]
fn serve_chaos_survives_seeded_kills_through_the_storm_ramp() {
    let out = Command::new(env!("CARGO_BIN_EXE_serve_chaos"))
        .args(["--quick", "--trials", "2", "--seed", "11"])
        .output()
        .expect("serve_chaos spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "serve_chaos failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("all gates passed: yes"), "{stdout}");
}
