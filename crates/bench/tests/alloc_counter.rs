//! Counting-allocator harness pinning the decision hot path at zero
//! heap allocations after warmup: the flat grid kernel, the exhaustive
//! search over it, the scratch-buffer MLP forward and training step,
//! the batched SIMD forward, the INT8 guarded predict path,
//! the replay-buffer drain/update cycle, the drift memo, and the
//! telemetry recorder (both the disabled no-op default and an enabled
//! handle whose preallocated ring is overwriting at capacity).
//!
//! The counter wraps `std::alloc::System` and counts every
//! `alloc`/`realloc`/`alloc_zeroed` call process-wide. Everything
//! lives in ONE `#[test]` so no parallel test thread can allocate
//! concurrently and pollute the counts. (The workspace libraries are
//! `forbid(unsafe_code)`; the allocator shim below is the one place
//! unsafe is warranted, and integration tests are a separate
//! compilation unit, so the lint stays intact on every library.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

use odin_core::kernel::{GridEvals, LayerKernel};
use odin_core::prelude::{CounterId, HistogramId, SpanId, Telemetry, TelemetryConfig};
use odin_core::search::{find_best_with, SearchContext, SearchStrategy};
use odin_core::AnalyticModel;
use odin_device::{DeviceParams, DriftMemo, DriftModel};
use odin_dnn::zoo::{self, Dataset};
use odin_policy::{
    MlpScratch, OuPolicy, PolicyConfig, QuantizedPolicy, ReplayBuffer, TrainingExample,
};
use odin_units::Seconds;
use odin_xbar::CrossbarConfig;
use rand::SeedableRng;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations performed while running `f`.
fn allocations(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn hot_path_is_allocation_free_after_warmup() {
    // Sanity: the counter actually sees heap traffic.
    let observed = allocations(|| {
        let v: Vec<u64> = Vec::with_capacity(32);
        black_box(&v);
    });
    assert!(observed > 0, "counting allocator is not installed");

    let model = AnalyticModel::new(CrossbarConfig::paper_128()).unwrap();
    let net = zoo::vgg11(Dataset::Cifar10);
    let layer = &net.layers()[4];
    let ctx = SearchContext::default();
    let ages: Vec<Seconds> = (0..8).map(|i| Seconds::new(10f64.powi(i))).collect();

    // --- Grid kernel pass into a reused buffer -----------------------
    let kernel = LayerKernel::new(&model, layer).unwrap();
    let mut evals = GridEvals::new();
    kernel.evaluate_grid_into(ages[0], ctx, &mut evals); // warmup
    let n = allocations(|| {
        for age in &ages {
            for _ in 0..50 {
                kernel.evaluate_grid_into(*age, ctx, &mut evals);
                black_box(evals.len());
            }
        }
    });
    assert_eq!(n, 0, "grid kernel pass allocated {n} times");

    // --- Exhaustive search over a prebuilt kernel --------------------
    let warm = find_best_with(
        &kernel,
        layer,
        ages[2],
        0.005,
        (2, 2),
        SearchStrategy::Exhaustive,
        ctx,
    )
    .unwrap();
    black_box(&warm);
    let n = allocations(|| {
        for age in &ages {
            for _ in 0..50 {
                let out = find_best_with(
                    &kernel,
                    layer,
                    *age,
                    0.005,
                    (2, 2),
                    SearchStrategy::Exhaustive,
                    ctx,
                )
                .unwrap();
                black_box(out.evaluations);
            }
        }
    });
    assert_eq!(n, 0, "exhaustive search over a kernel allocated {n} times");

    // --- Resource-bounded search (the §III.B default) ----------------
    let n = allocations(|| {
        for age in &ages {
            for _ in 0..50 {
                let out = find_best_with(
                    &kernel,
                    layer,
                    *age,
                    0.005,
                    (2, 2),
                    SearchStrategy::ResourceBounded { k: 3 },
                    ctx,
                )
                .unwrap();
                black_box(out.evaluations);
            }
        }
    });
    assert_eq!(n, 0, "resource-bounded search allocated {n} times");

    // --- Policy decision: scratch-buffer MLP forward -----------------
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut policy = OuPolicy::new(PolicyConfig::paper(), &mut rng);
    let mut scratch = MlpScratch::new();
    let features = [0.25, 0.6, 0.43, 0.1];
    black_box(policy.predict_with(&features, &mut scratch)); // warmup sizes buffers
    let n = allocations(|| {
        for _ in 0..400 {
            black_box(policy.predict_with(&features, &mut scratch));
        }
    });
    assert_eq!(n, 0, "scratch MLP forward allocated {n} times");

    // --- Batched forward: the decide-all path. The column-major
    // weight transposes the SIMD matvec reads live in the scratch and
    // are rebuilt in place each call ---------------------------------
    let mut probs_a = Vec::new();
    let mut probs_b = Vec::new();
    let batch: Vec<f64> = (0..12)
        .flat_map(|i| {
            let t = f64::from(i) / 12.0;
            [t, 1.0 - t, 0.5 * t, t * t]
        })
        .collect();
    policy.predict_batch(&batch, &mut scratch, &mut probs_a, &mut probs_b); // warmup
    let n = allocations(|| {
        for _ in 0..200 {
            policy.predict_batch(&batch, &mut scratch, &mut probs_a, &mut probs_b);
            black_box(probs_a.len());
        }
    });
    assert_eq!(n, 0, "batched MLP forward allocated {n} times");

    // --- INT8 guarded predict: integer matvecs, with ambiguous rows
    // recomputed through the already-warmed f64 scratch ---------------
    let quant = QuantizedPolicy::calibrate(&policy, &[]);
    black_box(quant.predict_batch_guarded(
        &policy,
        &batch,
        Some(0.7),
        &mut scratch,
        &mut probs_a,
        &mut probs_b,
    )); // warmup sizes the i8 buffers
    let n = allocations(|| {
        for _ in 0..200 {
            black_box(quant.predict_batch_guarded(
                &policy,
                &batch,
                Some(0.7),
                &mut scratch,
                &mut probs_a,
                &mut probs_b,
            ));
        }
    });
    assert_eq!(n, 0, "INT8 guarded predict allocated {n} times");

    // --- Replay-buffer cycle: fill, drain, 100-epoch update ----------
    let mut buffer = ReplayBuffer::paper();
    let mut examples: Vec<TrainingExample> = Vec::new();
    // Warmup cycle: sizes the drain vector and the momentum buffers.
    for i in 0..buffer.capacity() {
        buffer.push(TrainingExample::new(features, i % 6, (i + 1) % 6));
    }
    buffer.drain_into(&mut examples);
    policy.update_online_with(&examples, &mut scratch);
    let n = allocations(|| {
        for _ in 0..3 {
            for i in 0..buffer.capacity() {
                buffer.push(TrainingExample::new(features, i % 6, (i + 1) % 6));
            }
            buffer.drain_into(&mut examples);
            black_box(policy.update_online_with(&examples, &mut scratch));
        }
    });
    assert_eq!(n, 0, "replay-buffer update cycle allocated {n} times");

    // --- Drift memo --------------------------------------------------
    let mut memo = DriftMemo::new(DriftModel::new(&DeviceParams::paper()));
    black_box(memo.scale_at(ages[0])); // warmup (memo storage is inline)
    let n = allocations(|| {
        for _ in 0..100 {
            for age in &ages {
                black_box(memo.scale_at(*age));
            }
        }
    });
    assert_eq!(n, 0, "drift memo allocated {n} times");

    // --- Telemetry, disabled (the default every runtime starts with):
    // every recording call is an inlined early-return ----------------
    let off = Telemetry::disabled();
    let n = allocations(|| {
        for _ in 0..500 {
            off.incr(CounterId::RunsExecuted);
            off.observe(HistogramId::SearchEvaluations, 9.0);
            let token = off.start();
            black_box(off.finish(SpanId::Run, token));
        }
    });
    assert_eq!(n, 0, "disabled telemetry allocated {n} times");

    // --- Telemetry, enabled: fixed metric arrays plus a preallocated
    // ring that overwrites its oldest entry once full, so steady-state
    // recording — including eviction — never touches the allocator ---
    let telemetry = Telemetry::with_config(TelemetryConfig { event_capacity: 64 });
    let warm = telemetry.start();
    telemetry.finish(SpanId::Run, warm); // warmup
    let n = allocations(|| {
        for i in 0..500i64 {
            telemetry.incr(CounterId::RunsExecuted);
            telemetry.add(CounterId::SearchEvaluations, 9);
            telemetry.observe(HistogramId::SearchEvaluations, 9.0);
            let token = telemetry.start();
            black_box(telemetry.finish_with(SpanId::Search, token, i));
        }
    });
    assert_eq!(n, 0, "enabled telemetry recording allocated {n} times");
    assert!(
        telemetry.dropped_events() > 0,
        "the ring wrapped during the measured loop, so eviction was covered"
    );

    // Snapshots copy into fixed inline arrays — also allocation-free.
    let n = allocations(|| {
        for _ in 0..100 {
            black_box(telemetry.snapshot().counter(CounterId::RunsExecuted));
        }
    });
    assert_eq!(n, 0, "telemetry snapshot allocated {n} times");
}
