//! End-to-end chaos gate: drives the `chaos_campaign` binary (the
//! parent SIGKILLs child campaigns at seeded points, tears snapshot
//! files mid-write, and resumes), asserting the whole kill/resume
//! cycle stays bit-for-bit equivalent to an uninterrupted run.

use std::process::Command;

#[test]
fn chaos_campaign_survives_seeded_kills_bit_for_bit() {
    let out = Command::new(env!("CARGO_BIN_EXE_chaos_campaign"))
        .args(["--quick", "--trials", "2", "--seed", "11"])
        .output()
        .expect("chaos_campaign spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "chaos_campaign failed ({}):\n--- stdout\n{stdout}\n--- stderr\n{stderr}",
        out.status
    );
    assert!(
        stdout.contains("all trials bit-equivalent to uninterrupted reference: yes"),
        "equivalence line missing:\n{stdout}"
    );
    assert!(
        stdout.contains("BENCH_chaos.json"),
        "report not recorded:\n{stdout}"
    );
}
