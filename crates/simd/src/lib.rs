//! Explicit SIMD lanes for Odin's hot kernels.
//!
//! The decide-all hot path spends its cycles in two places: the flat
//! 36-shape grid sweep of `odin_core::kernel::LayerKernel` and the
//! batched MLP passes of `odin_policy`. Both are elementwise or
//! independent-output loops, so they vectorize without changing a
//! single result bit — *as long as every lane preserves the scalar
//! per-element operation order*. This crate provides those loops in
//! four interchangeable [`Backend`]s:
//!
//! * [`Backend::Scalar`] — the plain loop, the bit-parity reference.
//! * [`Backend::Lanes2`] / [`Backend::Lanes4`] — portable
//!   array-of-lanes forms (safe code; the compiler lowers them to
//!   SSE2/AVX on x86). These keep `forbid(unsafe_code)` callers on a
//!   fully safe path.
//! * [`Backend::Avx2`] — `core::arch::x86_64` intrinsics behind
//!   runtime feature detection (`is_x86_feature_detected!`), falling
//!   back to the portable 4-wide form when the host lacks AVX2 or the
//!   target is not x86-64.
//!
//! # The bit-parity contract
//!
//! Every operation here is *elementwise* or accumulates strictly in
//! the scalar iteration order per output: lanes run across
//! *independent outputs*, never across a single reduction. No FMA is
//! ever used — multiplies and adds stay separate instructions, which
//! IEEE 754 defines exactly per element — so all four backends return
//! bit-identical results and the kernel-vs-scalar parity proptests in
//! `odin-core`/`odin-policy` hold on every backend.
//!
//! The active backend is chosen once per process by
//! [`Backend::active`]: the `ODIN_SIMD` environment variable
//! (`scalar`, `lanes2`, `portable`/`lanes4`, `avx2`) overrides the
//! default of AVX2-when-detected. CI's `simd-smoke` job forces
//! `ODIN_SIMD=portable` so the safe path is exercised on any host.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

/// The additive identity `Iterator::sum::<f64>()` folds from. The
/// standard library starts its fold at `-0.0` (the true IEEE additive
/// identity: `-0.0 + x == x` for every `x`, including `-0.0` itself),
/// so every accumulator here must start there too — starting at `0.0`
/// would flip the sign bit of all-signed-zero sums and break the
/// bit-parity contract with the scalar `iter().sum()` reference.
const SUM_IDENTITY: f64 = -0.0;

/// A vectorization strategy for the lane operations in this crate.
///
/// All backends are bit-identical; they differ only in speed. Use
/// [`Backend::active`] for the process-wide choice, or pass an
/// explicit backend for lane-width ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Plain scalar loops — the bit-parity reference (1 lane).
    Scalar,
    /// Portable 2-wide array-of-lanes (safe code).
    Lanes2,
    /// Portable 4-wide array-of-lanes (safe code).
    Lanes4,
    /// AVX2 `core::arch` intrinsics behind runtime detection; resolves
    /// to [`Backend::Lanes4`] when the host cannot run them.
    Avx2,
}

impl Backend {
    /// Every backend, in ascending lane width.
    pub const ALL: [Backend; 4] = [
        Backend::Scalar,
        Backend::Lanes2,
        Backend::Lanes4,
        Backend::Avx2,
    ];

    /// Lane width of this backend (`f64`s processed per step).
    #[must_use]
    pub fn lanes(self) -> usize {
        match self {
            Backend::Scalar => 1,
            Backend::Lanes2 => 2,
            Backend::Lanes4 | Backend::Avx2 => 4,
        }
    }

    /// Stable lowercase name, also accepted by [`Backend::parse`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Lanes2 => "lanes2",
            Backend::Lanes4 => "lanes4",
            Backend::Avx2 => "avx2",
        }
    }

    /// Parse a backend name as used by the `ODIN_SIMD` env override.
    #[must_use]
    pub fn parse(value: &str) -> Option<Backend> {
        match value.trim().to_ascii_lowercase().as_str() {
            "scalar" | "lanes1" | "off" => Some(Backend::Scalar),
            "lanes2" | "portable2" => Some(Backend::Lanes2),
            "lanes4" | "portable4" | "portable" => Some(Backend::Lanes4),
            "avx2" | "native" => Some(Backend::Avx2),
            _ => None,
        }
    }

    /// Whether this backend can execute its own code path on this
    /// host (portable backends always can).
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            Backend::Avx2 => avx2_available(),
            _ => true,
        }
    }

    /// Collapse to a backend executable on this host: [`Backend::Avx2`]
    /// becomes [`Backend::Lanes4`] when AVX2 is absent.
    #[must_use]
    pub fn resolved(self) -> Backend {
        if self == Backend::Avx2 && !avx2_available() {
            Backend::Lanes4
        } else {
            self
        }
    }

    /// The process-wide backend: the `ODIN_SIMD` environment variable
    /// if set to a recognized name, else AVX2 when the host supports
    /// it, else the portable 4-wide lanes. Evaluated once and cached.
    #[must_use]
    pub fn active() -> Backend {
        static ACTIVE: OnceLock<Backend> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            std::env::var("ODIN_SIMD")
                .ok()
                .and_then(|v| Backend::parse(&v))
                .unwrap_or(Backend::Avx2)
                .resolved()
        })
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

/// Dispatch an op over the resolved backend. The AVX2 arm only exists
/// on x86-64; `resolved()` guarantees it is never selected elsewhere.
macro_rules! dispatch {
    ($backend:expr, $lanes:ident($($arg:expr),*), $avx2:path) => {
        match $backend.resolved() {
            Backend::Scalar => $lanes::<1>($($arg),*),
            Backend::Lanes2 => $lanes::<2>($($arg),*),
            Backend::Lanes4 => $lanes::<4>($($arg),*),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => $avx2($($arg),*),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => $lanes::<4>($($arg),*),
        }
    };
}

// ---------------------------------------------------------------------
// Elementwise kernels (grid-impact sweep, softmax division)
// ---------------------------------------------------------------------

/// `out[i] = k2 * (a[i] * k1)` — the fault-free grid-impact sweep
/// (`sensitivity * (ir * severity)`), on the given backend.
pub fn scale_mul_with(backend: Backend, out: &mut [f64], a: &[f64], k1: f64, k2: f64) {
    debug_assert_eq!(out.len(), a.len());
    dispatch!(backend, scale_mul_lanes(out, a, k1, k2), avx2::scale_mul);
}

/// [`scale_mul_with`] on [`Backend::active`].
pub fn scale_mul(out: &mut [f64], a: &[f64], k1: f64, k2: f64) {
    scale_mul_with(Backend::active(), out, a, k1, k2);
}

/// `out[i] = k2 * (a[i] * k1 + b[i])` — the faulted grid-impact sweep
/// (`sensitivity * (ir * severity + fault)`), on the given backend.
pub fn scale_mul_add_with(
    backend: Backend,
    out: &mut [f64],
    a: &[f64],
    b: &[f64],
    k1: f64,
    k2: f64,
) {
    debug_assert_eq!(out.len(), a.len());
    debug_assert_eq!(out.len(), b.len());
    dispatch!(
        backend,
        scale_mul_add_lanes(out, a, b, k1, k2),
        avx2::scale_mul_add
    );
}

/// [`scale_mul_add_with`] on [`Backend::active`].
pub fn scale_mul_add(out: &mut [f64], a: &[f64], b: &[f64], k1: f64, k2: f64) {
    scale_mul_add_with(Backend::active(), out, a, b, k1, k2);
}

/// `v[i] /= divisor` — the in-place softmax normalization. Division
/// is elementwise-exact, so lanes cannot change a bit.
pub fn div_in_place_with(backend: Backend, v: &mut [f64], divisor: f64) {
    dispatch!(backend, div_lanes(v, divisor), avx2::div_in_place);
}

/// [`div_in_place_with`] on [`Backend::active`].
pub fn div_in_place(v: &mut [f64], divisor: f64) {
    div_in_place_with(Backend::active(), v, divisor);
}

// ---------------------------------------------------------------------
// Matrix-vector kernels (MLP hidden + head passes)
// ---------------------------------------------------------------------

/// Dense matrix–vector product `out[o] = Σ_i w[o·n_in + i]·x[i] + bias[o]`
/// with **row-major** weights, lanes across independent outputs.
///
/// Each output's accumulator starts at the `-0.0` additive identity
/// and adds products in ascending `i` — exactly the scalar
/// `iter().sum()` fold — so the result is bit-identical on every
/// backend. On [`Backend::Avx2`] the
/// row-major layout would need strided gathers, which do not pay on
/// the policy's short rows, so it runs the portable 4-wide form.
pub fn matvec_rowmajor_with(backend: Backend, out: &mut [f64], w: &[f64], x: &[f64], bias: &[f64]) {
    debug_assert_eq!(w.len(), out.len() * x.len());
    debug_assert_eq!(bias.len(), out.len());
    match backend.resolved() {
        Backend::Scalar => matvec_rowmajor_lanes::<1>(out, w, x, bias),
        Backend::Lanes2 => matvec_rowmajor_lanes::<2>(out, w, x, bias),
        Backend::Lanes4 | Backend::Avx2 => matvec_rowmajor_lanes::<4>(out, w, x, bias),
    }
}

/// Dense matrix–vector product with **column-major** (transposed)
/// weights `wt[i·n_out + o]`: `out[o] = Σ_i wt[i·n_out + o]·x[i] + bias[o]`.
///
/// The transposed layout makes each lane load contiguous, which is
/// what the AVX2 path wants; build `wt` once per batch with
/// [`transpose_into`]. Accumulation order per output is identical to
/// [`matvec_rowmajor_with`], so both layouts agree bit for bit.
pub fn matvec_colmajor_with(
    backend: Backend,
    out: &mut [f64],
    wt: &[f64],
    x: &[f64],
    bias: &[f64],
) {
    debug_assert_eq!(wt.len(), out.len() * x.len());
    debug_assert_eq!(bias.len(), out.len());
    dispatch!(
        backend,
        matvec_colmajor_lanes(out, wt, x, bias),
        avx2::matvec_colmajor
    );
}

/// `out[c·rows + r] = src[r·cols + c]` — transpose a row-major
/// `rows × cols` matrix into `out`, resizing it to `rows·cols`.
/// Reuses `out`'s capacity, so a warmed buffer never reallocates.
pub fn transpose_into(src: &[f64], rows: usize, cols: usize, out: &mut Vec<f64>) {
    debug_assert_eq!(src.len(), rows * cols);
    out.clear();
    out.resize(rows * cols, 0.0);
    for (r, row) in src.chunks_exact(cols).enumerate() {
        for (c, &v) in row.iter().enumerate() {
            out[c * rows + r] = v;
        }
    }
}

/// `out[i] = out[i].max(0.0)` — ReLU. Kept scalar (and shared by all
/// backends) so the `f64::max` NaN/signed-zero semantics of the
/// scalar reference are preserved exactly.
pub fn relu_in_place(out: &mut [f64]) {
    for v in out {
        *v = v.max(0.0);
    }
}

// ---------------------------------------------------------------------
// Training kernels (SGD head pass)
// ---------------------------------------------------------------------

/// `acc[i] += a[i] * k` — the backprop `grad_hidden += w_row · gc`
/// accumulation, on the given backend.
pub fn axpy_with(backend: Backend, acc: &mut [f64], a: &[f64], k: f64) {
    debug_assert_eq!(acc.len(), a.len());
    dispatch!(backend, axpy_lanes(acc, a, k), avx2::axpy);
}

/// `w[i] -= k2 * (k1 * a[i])` — the plain-SGD weight update
/// `w -= lr · (gc · activation)`, on the given backend.
pub fn sub_scaled_with(backend: Backend, w: &mut [f64], a: &[f64], k1: f64, k2: f64) {
    debug_assert_eq!(w.len(), a.len());
    dispatch!(backend, sub_scaled_lanes(w, a, k1, k2), avx2::sub_scaled);
}

// ---------------------------------------------------------------------
// Portable array-of-lanes implementations
// ---------------------------------------------------------------------

fn scale_mul_lanes<const L: usize>(out: &mut [f64], a: &[f64], k1: f64, k2: f64) {
    let mut out_it = out.chunks_exact_mut(L);
    let mut a_it = a.chunks_exact(L);
    for (o, av) in (&mut out_it).zip(&mut a_it) {
        let mut t = [0.0f64; L];
        for (tl, &al) in t.iter_mut().zip(av) {
            *tl = al * k1;
        }
        for (ol, &tl) in o.iter_mut().zip(&t) {
            *ol = k2 * tl;
        }
    }
    for (ol, &al) in out_it.into_remainder().iter_mut().zip(a_it.remainder()) {
        *ol = k2 * (al * k1);
    }
}

fn scale_mul_add_lanes<const L: usize>(out: &mut [f64], a: &[f64], b: &[f64], k1: f64, k2: f64) {
    let mut out_it = out.chunks_exact_mut(L);
    let mut a_it = a.chunks_exact(L);
    let mut b_it = b.chunks_exact(L);
    for ((o, av), bv) in (&mut out_it).zip(&mut a_it).zip(&mut b_it) {
        let mut t = [0.0f64; L];
        for ((tl, &al), &bl) in t.iter_mut().zip(av).zip(bv) {
            *tl = al * k1 + bl;
        }
        for (ol, &tl) in o.iter_mut().zip(&t) {
            *ol = k2 * tl;
        }
    }
    for ((ol, &al), &bl) in out_it
        .into_remainder()
        .iter_mut()
        .zip(a_it.remainder())
        .zip(b_it.remainder())
    {
        *ol = k2 * (al * k1 + bl);
    }
}

fn div_lanes<const L: usize>(v: &mut [f64], divisor: f64) {
    let mut it = v.chunks_exact_mut(L);
    for chunk in &mut it {
        for vl in chunk.iter_mut() {
            *vl /= divisor;
        }
    }
    for vl in it.into_remainder() {
        *vl /= divisor;
    }
}

fn matvec_rowmajor_lanes<const L: usize>(out: &mut [f64], w: &[f64], x: &[f64], bias: &[f64]) {
    let n_in = x.len();
    let n_out = out.len();
    let mut o = 0;
    while o + L <= n_out {
        // -0.0 is the additive identity `iter().sum::<f64>()` folds
        // from; starting anywhere else flips signed-zero bits.
        let mut acc = [SUM_IDENTITY; L];
        for (i, &xi) in x.iter().enumerate() {
            for (l, al) in acc.iter_mut().enumerate() {
                *al += w[(o + l) * n_in + i] * xi;
            }
        }
        for (l, &al) in acc.iter().enumerate() {
            out[o + l] = al + bias[o + l];
        }
        o += L;
    }
    while o < n_out {
        let row = &w[o * n_in..(o + 1) * n_in];
        let mut acc = SUM_IDENTITY;
        for (&wv, &xi) in row.iter().zip(x) {
            acc += wv * xi;
        }
        out[o] = acc + bias[o];
        o += 1;
    }
}

fn matvec_colmajor_lanes<const L: usize>(out: &mut [f64], wt: &[f64], x: &[f64], bias: &[f64]) {
    let n_out = out.len();
    let mut o = 0;
    while o + L <= n_out {
        // -0.0 is the additive identity `iter().sum::<f64>()` folds
        // from; starting anywhere else flips signed-zero bits.
        let mut acc = [SUM_IDENTITY; L];
        for (i, &xi) in x.iter().enumerate() {
            let base = i * n_out + o;
            for (al, &wv) in acc.iter_mut().zip(&wt[base..base + L]) {
                *al += wv * xi;
            }
        }
        for (l, &al) in acc.iter().enumerate() {
            out[o + l] = al + bias[o + l];
        }
        o += L;
    }
    while o < n_out {
        let mut acc = SUM_IDENTITY;
        for (i, &xi) in x.iter().enumerate() {
            acc += wt[i * n_out + o] * xi;
        }
        out[o] = acc + bias[o];
        o += 1;
    }
}

fn axpy_lanes<const L: usize>(acc: &mut [f64], a: &[f64], k: f64) {
    let mut acc_it = acc.chunks_exact_mut(L);
    let mut a_it = a.chunks_exact(L);
    for (av, src) in (&mut acc_it).zip(&mut a_it) {
        let mut t = [0.0f64; L];
        for (tl, &sl) in t.iter_mut().zip(src) {
            *tl = sl * k;
        }
        for (al, &tl) in av.iter_mut().zip(&t) {
            *al += tl;
        }
    }
    for (al, &sl) in acc_it.into_remainder().iter_mut().zip(a_it.remainder()) {
        *al += sl * k;
    }
}

fn sub_scaled_lanes<const L: usize>(w: &mut [f64], a: &[f64], k1: f64, k2: f64) {
    let mut w_it = w.chunks_exact_mut(L);
    let mut a_it = a.chunks_exact(L);
    for (wv, av) in (&mut w_it).zip(&mut a_it) {
        let mut t = [0.0f64; L];
        for (tl, &al) in t.iter_mut().zip(av) {
            *tl = k2 * (k1 * al);
        }
        for (wl, &tl) in wv.iter_mut().zip(&t) {
            *wl -= tl;
        }
    }
    for (wl, &al) in w_it.into_remainder().iter_mut().zip(a_it.remainder()) {
        *wl -= k2 * (k1 * al);
    }
}

// ---------------------------------------------------------------------
// AVX2 intrinsics (x86-64 only, runtime-detected)
// ---------------------------------------------------------------------

/// The one place unsafe code is warranted in this workspace's
/// libraries: `core::arch::x86_64` intrinsics. Every public function
/// here re-checks `is_x86_feature_detected!("avx2")` (a cached atomic
/// load) and falls back to the portable 4-wide form, so calling them
/// is sound on any x86-64 host. No FMA: multiplies and adds stay
/// separate `vmulpd`/`vaddpd`, which are IEEE-exact per element and
/// therefore bit-identical to the scalar reference.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use core::arch::x86_64::{
        _mm256_add_pd, _mm256_div_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd,
        _mm256_storeu_pd, _mm256_sub_pd,
    };

    const W: usize = 4;

    pub fn scale_mul(out: &mut [f64], a: &[f64], k1: f64, k2: f64) {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { scale_mul_impl(out, a, k1, k2) }
        } else {
            super::scale_mul_lanes::<W>(out, a, k1, k2);
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn scale_mul_impl(out: &mut [f64], a: &[f64], k1: f64, k2: f64) {
        let n = out.len();
        let k1v = _mm256_set1_pd(k1);
        let k2v = _mm256_set1_pd(k2);
        let mut i = 0;
        while i + W <= n {
            let av = _mm256_loadu_pd(a.as_ptr().add(i));
            let t = _mm256_mul_pd(av, k1v);
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_mul_pd(k2v, t));
            i += W;
        }
        while i < n {
            out[i] = k2 * (a[i] * k1);
            i += 1;
        }
    }

    pub fn scale_mul_add(out: &mut [f64], a: &[f64], b: &[f64], k1: f64, k2: f64) {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { scale_mul_add_impl(out, a, b, k1, k2) }
        } else {
            super::scale_mul_add_lanes::<W>(out, a, b, k1, k2);
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn scale_mul_add_impl(out: &mut [f64], a: &[f64], b: &[f64], k1: f64, k2: f64) {
        let n = out.len();
        let k1v = _mm256_set1_pd(k1);
        let k2v = _mm256_set1_pd(k2);
        let mut i = 0;
        while i + W <= n {
            let av = _mm256_loadu_pd(a.as_ptr().add(i));
            let bv = _mm256_loadu_pd(b.as_ptr().add(i));
            let t = _mm256_add_pd(_mm256_mul_pd(av, k1v), bv);
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_mul_pd(k2v, t));
            i += W;
        }
        while i < n {
            out[i] = k2 * (a[i] * k1 + b[i]);
            i += 1;
        }
    }

    pub fn div_in_place(v: &mut [f64], divisor: f64) {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { div_in_place_impl(v, divisor) }
        } else {
            super::div_lanes::<W>(v, divisor);
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn div_in_place_impl(v: &mut [f64], divisor: f64) {
        let n = v.len();
        let dv = _mm256_set1_pd(divisor);
        let mut i = 0;
        while i + W <= n {
            let xv = _mm256_loadu_pd(v.as_ptr().add(i));
            _mm256_storeu_pd(v.as_mut_ptr().add(i), _mm256_div_pd(xv, dv));
            i += W;
        }
        while i < n {
            v[i] /= divisor;
            i += 1;
        }
    }

    pub fn matvec_colmajor(out: &mut [f64], wt: &[f64], x: &[f64], bias: &[f64]) {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { matvec_colmajor_impl(out, wt, x, bias) }
        } else {
            super::matvec_colmajor_lanes::<W>(out, wt, x, bias);
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn matvec_colmajor_impl(out: &mut [f64], wt: &[f64], x: &[f64], bias: &[f64]) {
        let n_out = out.len();
        let mut o = 0;
        while o + W <= n_out {
            let mut acc = _mm256_set1_pd(super::SUM_IDENTITY);
            for (i, &xi) in x.iter().enumerate() {
                let wv = _mm256_loadu_pd(wt.as_ptr().add(i * n_out + o));
                let xv = _mm256_set1_pd(xi);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(wv, xv));
            }
            let bv = _mm256_loadu_pd(bias.as_ptr().add(o));
            _mm256_storeu_pd(out.as_mut_ptr().add(o), _mm256_add_pd(acc, bv));
            o += W;
        }
        while o < n_out {
            let mut acc = super::SUM_IDENTITY;
            for (i, &xi) in x.iter().enumerate() {
                acc += wt[i * n_out + o] * xi;
            }
            out[o] = acc + bias[o];
            o += 1;
        }
    }

    pub fn axpy(acc: &mut [f64], a: &[f64], k: f64) {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { axpy_impl(acc, a, k) }
        } else {
            super::axpy_lanes::<W>(acc, a, k);
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn axpy_impl(acc: &mut [f64], a: &[f64], k: f64) {
        let n = acc.len();
        let kv = _mm256_set1_pd(k);
        let mut i = 0;
        while i + W <= n {
            let av = _mm256_loadu_pd(a.as_ptr().add(i));
            let cur = _mm256_loadu_pd(acc.as_ptr().add(i));
            let t = _mm256_mul_pd(av, kv);
            _mm256_storeu_pd(acc.as_mut_ptr().add(i), _mm256_add_pd(cur, t));
            i += W;
        }
        while i < n {
            acc[i] += a[i] * k;
            i += 1;
        }
    }

    pub fn sub_scaled(w: &mut [f64], a: &[f64], k1: f64, k2: f64) {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { sub_scaled_impl(w, a, k1, k2) }
        } else {
            super::sub_scaled_lanes::<W>(w, a, k1, k2);
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn sub_scaled_impl(w: &mut [f64], a: &[f64], k1: f64, k2: f64) {
        let n = w.len();
        let k1v = _mm256_set1_pd(k1);
        let k2v = _mm256_set1_pd(k2);
        let mut i = 0;
        while i + W <= n {
            let av = _mm256_loadu_pd(a.as_ptr().add(i));
            let t = _mm256_mul_pd(k2v, _mm256_mul_pd(k1v, av));
            let cur = _mm256_loadu_pd(w.as_ptr().add(i));
            _mm256_storeu_pd(w.as_mut_ptr().add(i), _mm256_sub_pd(cur, t));
            i += W;
        }
        while i < n {
            w[i] -= k2 * (k1 * a[i]);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// splitmix64 — deterministic pseudo-random doubles in (-2, 2)
    /// plus a sprinkling of exact zeros and subnormals, with no
    /// dependency on `rand`.
    struct Mix(u64);

    impl Mix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn next_f64(&mut self) -> f64 {
            match self.next_u64() % 16 {
                0 => 0.0,
                1 => -0.0,
                2 => f64::MIN_POSITIVE / 2.0,
                _ => {
                    let u = self.next_u64() >> 11; // 53 bits
                    (u as f64 / (1u64 << 52) as f64) - 1.0
                }
            }
        }

        fn vec(&mut self, n: usize) -> Vec<f64> {
            (0..n).map(|_| self.next_f64()).collect()
        }
    }

    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("portable"), Some(Backend::Lanes4));
        assert_eq!(Backend::parse("  AVX2  "), Some(Backend::Avx2));
        assert_eq!(Backend::parse("neon"), None);
        assert!(Backend::Scalar.is_available());
        assert!(Backend::Lanes4.is_available());
        assert!(Backend::ALL.contains(&Backend::active()));
        assert!(Backend::active().is_available());
        assert_eq!(Backend::Scalar.lanes(), 1);
        assert_eq!(Backend::Avx2.lanes(), 4);
        assert_eq!(Backend::Avx2.resolved().lanes(), 4);
    }

    #[test]
    fn elementwise_ops_are_bit_identical_across_backends() {
        let mut mix = Mix(7);
        // Odd lengths exercise every remainder path.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 33, 36, 64] {
            let a = mix.vec(n);
            let b = mix.vec(n);
            let k1 = mix.next_f64() * 3.0;
            let k2 = mix.next_f64() * 3.0;
            let mut reference = vec![0.0; n];
            scale_mul_with(Backend::Scalar, &mut reference, &a, k1, k2);
            for (i, (&r, &av)) in reference.iter().zip(&a).enumerate() {
                assert_eq!(r.to_bits(), (k2 * (av * k1)).to_bits(), "scalar def [{i}]");
            }
            for backend in Backend::ALL {
                let mut out = vec![0.0; n];
                scale_mul_with(backend, &mut out, &a, k1, k2);
                assert_bits_eq(&out, &reference, &format!("scale_mul/{backend}/n={n}"));
            }

            let mut reference = vec![0.0; n];
            scale_mul_add_with(Backend::Scalar, &mut reference, &a, &b, k1, k2);
            for backend in Backend::ALL {
                let mut out = vec![0.0; n];
                scale_mul_add_with(backend, &mut out, &a, &b, k1, k2);
                assert_bits_eq(&out, &reference, &format!("scale_mul_add/{backend}/n={n}"));
            }

            let divisor = 1.0 + mix.next_f64().abs();
            let mut reference = a.clone();
            div_in_place_with(Backend::Scalar, &mut reference, divisor);
            for backend in Backend::ALL {
                let mut out = a.clone();
                div_in_place_with(backend, &mut out, divisor);
                assert_bits_eq(&out, &reference, &format!("div/{backend}/n={n}"));
            }

            let k = mix.next_f64();
            let mut reference = b.clone();
            axpy_with(Backend::Scalar, &mut reference, &a, k);
            for backend in Backend::ALL {
                let mut out = b.clone();
                axpy_with(backend, &mut out, &a, k);
                assert_bits_eq(&out, &reference, &format!("axpy/{backend}/n={n}"));
            }

            let mut reference = b.clone();
            sub_scaled_with(Backend::Scalar, &mut reference, &a, k1, k2);
            for backend in Backend::ALL {
                let mut out = b.clone();
                sub_scaled_with(backend, &mut out, &a, k1, k2);
                assert_bits_eq(&out, &reference, &format!("sub_scaled/{backend}/n={n}"));
            }
        }
    }

    /// The scalar matvec reference: the exact `iter().sum()` fold the
    /// policy MLP uses, per output row.
    fn matvec_reference(w: &[f64], x: &[f64], bias: &[f64]) -> Vec<f64> {
        bias.iter()
            .enumerate()
            .map(|(o, &b)| {
                let row = &w[o * x.len()..(o + 1) * x.len()];
                row.iter().zip(x).map(|(&wv, &xi)| wv * xi).sum::<f64>() + b
            })
            .collect()
    }

    #[test]
    fn matvec_layouts_and_backends_are_bit_identical() {
        let mut mix = Mix(41);
        for (n_out, n_in) in [(1, 1), (2, 3), (4, 4), (6, 16), (16, 4), (17, 5), (31, 9)] {
            let w = mix.vec(n_out * n_in);
            let x = mix.vec(n_in);
            let bias = mix.vec(n_out);
            let reference = matvec_reference(&w, &x, &bias);
            let mut wt = Vec::new();
            transpose_into(&w, n_out, n_in, &mut wt);
            for backend in Backend::ALL {
                let mut out = vec![0.0; n_out];
                matvec_rowmajor_with(backend, &mut out, &w, &x, &bias);
                assert_bits_eq(
                    &out,
                    &reference,
                    &format!("rowmajor/{backend}/{n_out}x{n_in}"),
                );
                let mut out = vec![0.0; n_out];
                matvec_colmajor_with(backend, &mut out, &wt, &x, &bias);
                assert_bits_eq(
                    &out,
                    &reference,
                    &format!("colmajor/{backend}/{n_out}x{n_in}"),
                );
            }
        }
    }

    #[test]
    fn transpose_round_trips_and_reuses_capacity() {
        let mut mix = Mix(3);
        let src = mix.vec(6 * 4);
        let mut t = Vec::new();
        transpose_into(&src, 6, 4, &mut t);
        let mut back = Vec::new();
        transpose_into(&t, 4, 6, &mut back);
        assert_bits_eq(&back, &src, "transpose round trip");
        let cap = t.capacity();
        transpose_into(&src, 6, 4, &mut t);
        assert_eq!(t.capacity(), cap, "warmed transpose must not reallocate");
    }

    #[test]
    fn relu_matches_scalar_max() {
        let mut v = vec![-1.0, -0.0, 0.0, 2.5, f64::NAN, f64::MIN_POSITIVE / 4.0];
        let reference: Vec<f64> = v.iter().map(|x| x.max(0.0)).collect();
        relu_in_place(&mut v);
        assert_bits_eq(&v, &reference, "relu");
    }

    /// Randomized sweep: shapes 1..24 on both axes, magnitudes
    /// spanning subnormal to huge via power-of-two scaling — every
    /// backend reproduces the scalar fold bit for bit.
    #[test]
    fn matvec_parity_over_random_matrices() {
        let mut mix = Mix(0xD1CE);
        for case in 0u64..200 {
            let n_out = 1 + (mix.next_u64() % 23) as usize;
            let n_in = 1 + (mix.next_u64() % 23) as usize;
            let scale_exp = (mix.next_u64() % 600) as i32 - 300;
            let scale = 2f64.powi(scale_exp);
            let w: Vec<f64> = (0..n_out * n_in).map(|_| mix.next_f64() * scale).collect();
            let x = mix.vec(n_in);
            let bias = mix.vec(n_out);
            let reference = matvec_reference(&w, &x, &bias);
            let mut wt = Vec::new();
            transpose_into(&w, n_out, n_in, &mut wt);
            for backend in Backend::ALL {
                let mut out = vec![0.0; n_out];
                matvec_rowmajor_with(backend, &mut out, &w, &x, &bias);
                assert_bits_eq(
                    &out,
                    &reference,
                    &format!("rowmajor/{backend}/case{case}/{n_out}x{n_in}"),
                );
                let mut out = vec![0.0; n_out];
                matvec_colmajor_with(backend, &mut out, &wt, &x, &bias);
                assert_bits_eq(
                    &out,
                    &reference,
                    &format!("colmajor/{backend}/case{case}/{n_out}x{n_in}"),
                );
            }
        }
    }
}
