//! NSGA-II multi-objective search over the OU grid.
//!
//! Three objectives — energy, latency, wear — are minimized jointly
//! under the feasibility constraint, using Deb's constrained-domination
//! rule: a feasible cell always dominates an infeasible one, two
//! infeasible cells compare by violation magnitude, and two feasible
//! cells compare by plain Pareto dominance. The searcher memoizes
//! oracle probes (distinct cells only), runs the standard generational
//! loop (binary tournament on rank then crowding, uniform coordinate
//! crossover, ±1-level mutation), and reports the non-dominated front
//! of the *entire probed archive* — never just the final population —
//! so no dominated point can masquerade as front member.
//!
//! When the population covers the whole grid the searcher skips the
//! generational loop and probes every cell, making the reported front
//! exactly the brute-force non-dominated set. The runtime's default
//! `Pareto` strategy uses that regime, which is what lets the bench
//! harness gate every reported front against an independent
//! brute-force dominance check.
//!
//! A single winner is still required by the runtime, so the front is
//! scalarized at its *knee point*: objectives are normalized to the
//! front's own range and the point closest (L2) to the per-objective
//! ideal wins; ties resolve to the lowest row-major cell index.

use crate::rng::SplitMix64;
use crate::{Cell, CellEval, GridSpace, SearchFailure, Searcher, Selection, NUM_OBJECTIVES};

/// Mutation probability per coordinate axis.
const MUTATION_RATE: f64 = 0.3;

/// Deb's constrained-domination: does `a` dominate `b`?
#[must_use]
pub fn dominates(a: &CellEval, b: &CellEval) -> bool {
    match (a.feasible, b.feasible) {
        (true, false) => true,
        (false, true) => false,
        (false, false) => a.violation < b.violation,
        (true, true) => {
            let mut strictly = false;
            for k in 0..NUM_OBJECTIVES {
                if a.objectives[k] > b.objectives[k] {
                    return false;
                }
                if a.objectives[k] < b.objectives[k] {
                    strictly = true;
                }
            }
            strictly
        }
    }
}

/// Deb's fast non-dominated sort: partitions `0..evals.len()` into
/// fronts; front 0 holds the non-dominated set, front `i+1` what
/// becomes non-dominated once fronts `0..=i` are removed. Within a
/// front, indices stay in ascending order (determinism).
#[must_use]
pub fn fast_non_dominated_sort(evals: &[CellEval]) -> Vec<Vec<usize>> {
    let n = evals.len();
    let mut dominated_by: Vec<usize> = vec![0; n];
    let mut dominates_set: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if dominates(&evals[i], &evals[j]) {
                dominates_set[i].push(j);
            } else if dominates(&evals[j], &evals[i]) {
                dominated_by[i] += 1;
            }
        }
        if dominated_by[i] == 0 {
            current.push(i);
        }
    }
    while !current.is_empty() {
        let mut next: Vec<usize> = Vec::new();
        for &i in &current {
            for &j in &dominates_set[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        next.sort_unstable();
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// Crowding distance of each member of `front` (positions parallel to
/// `front`): boundary points on every objective get `∞`, interior
/// points the normalized side-length sum of their bounding cuboid.
/// Sorting uses `total_cmp` with index tie-breaks, so the result is
/// deterministic even under duplicate objective values.
#[must_use]
pub fn crowding_distance(front: &[usize], evals: &[CellEval]) -> Vec<f64> {
    let m = front.len();
    let mut distance = vec![0.0f64; m];
    if m == 0 {
        return distance;
    }
    if m <= 2 {
        return vec![f64::INFINITY; m];
    }
    for k in 0..NUM_OBJECTIVES {
        let mut by_obj: Vec<usize> = (0..m).collect();
        by_obj.sort_by(|&a, &b| {
            evals[front[a]].objectives[k]
                .total_cmp(&evals[front[b]].objectives[k])
                .then(front[a].cmp(&front[b]))
        });
        let lo = evals[front[by_obj[0]]].objectives[k];
        let hi = evals[front[by_obj[m - 1]]].objectives[k];
        distance[by_obj[0]] = f64::INFINITY;
        distance[by_obj[m - 1]] = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        for w in 1..m - 1 {
            let gap = evals[front[by_obj[w + 1]]].objectives[k]
                - evals[front[by_obj[w - 1]]].objectives[k];
            distance[by_obj[w]] += gap / span;
        }
    }
    distance
}

/// One member of a [`ParetoFront`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontPoint {
    /// The grid cell.
    pub cell: Cell,
    /// Its evaluation.
    pub eval: CellEval,
}

/// The non-dominated feasible set over everything a search probed,
/// in row-major cell order, with its knee point.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFront {
    /// Non-dominated feasible points, ascending row-major.
    pub points: Vec<FrontPoint>,
    /// Index into `points` of the knee point; `None` iff the front is
    /// empty (no feasible cell was probed).
    pub knee: Option<usize>,
}

impl ParetoFront {
    /// The knee point, when the front is non-empty.
    #[must_use]
    pub fn knee_point(&self) -> Option<&FrontPoint> {
        self.knee.and_then(|k| self.points.get(k))
    }
}

/// Deterministic knee selection: normalize each objective to the
/// front's own `[min, max]` range (degenerate ranges collapse to 0),
/// then pick the point with the smallest L2 distance to the ideal
/// (all-zeros) corner. Strict `<` comparison in ascending index order
/// makes ties resolve to the lowest index.
#[must_use]
pub fn knee_index(points: &[FrontPoint]) -> Option<usize> {
    if points.is_empty() {
        return None;
    }
    let mut lo = [f64::INFINITY; NUM_OBJECTIVES];
    let mut hi = [f64::NEG_INFINITY; NUM_OBJECTIVES];
    for p in points {
        for k in 0..NUM_OBJECTIVES {
            lo[k] = lo[k].min(p.eval.objectives[k]);
            hi[k] = hi[k].max(p.eval.objectives[k]);
        }
    }
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, p) in points.iter().enumerate() {
        let mut d = 0.0;
        for k in 0..NUM_OBJECTIVES {
            let span = hi[k] - lo[k];
            if span > 0.0 {
                let z = (p.eval.objectives[k] - lo[k]) / span;
                d += z * z;
            }
        }
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    Some(best)
}

/// The NSGA-II searcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NsgaSearcher {
    /// Population size. At or above the grid's cell count the searcher
    /// probes every cell and the front is exact.
    pub population: usize,
    /// Generations of the evolutionary loop (ignored in the probe-all
    /// regime).
    pub generations: usize,
    /// Seed for sampling, tournaments, crossover, and mutation.
    pub seed: u64,
}

impl NsgaSearcher {
    /// Builds a searcher.
    #[must_use]
    pub fn new(population: usize, generations: usize, seed: u64) -> Self {
        NsgaSearcher {
            population,
            generations,
            seed,
        }
    }
}

impl Searcher for NsgaSearcher {
    fn select<E>(
        &self,
        space: GridSpace,
        seed: Cell,
        oracle: &mut dyn FnMut(Cell) -> Result<CellEval, E>,
    ) -> Result<Selection, SearchFailure<E>> {
        let total = space.len();
        let mut evals: Vec<Option<CellEval>> = vec![None; total];
        let mut probes = 0usize;
        let mut probe = |idx: usize,
                         evals: &mut Vec<Option<CellEval>>,
                         probes: &mut usize|
         -> Result<CellEval, SearchFailure<E>> {
            if let Some(e) = evals[idx] {
                return Ok(e);
            }
            let e = oracle(space.cell(idx)).map_err(SearchFailure::Oracle)?;
            evals[idx] = Some(e);
            *probes += 1;
            Ok(e)
        };
        if self.population >= total {
            // Exact regime: the population covers the grid, so skip
            // the generational loop and probe everything.
            for idx in 0..total {
                probe(idx, &mut evals, &mut probes)?;
            }
        } else {
            let mut rng = SplitMix64::new(self.seed);
            let pop_size = self.population.max(2);
            let mut pop: Vec<usize> = vec![space.index(space.clamp(seed))];
            while pop.len() < pop_size {
                pop.push(rng.below(total));
            }
            for &idx in &pop {
                probe(idx, &mut evals, &mut probes)?;
            }
            for _ in 0..self.generations {
                let pe: Vec<CellEval> = pop
                    .iter()
                    .map(|&i| evals[i].expect("population members are probed"))
                    .collect();
                let fronts = fast_non_dominated_sort(&pe);
                let mut rank = vec![0usize; pop.len()];
                let mut crowd = vec![0.0f64; pop.len()];
                for (fr, members) in fronts.iter().enumerate() {
                    let dist = crowding_distance(members, &pe);
                    for (pos, &member) in members.iter().enumerate() {
                        rank[member] = fr;
                        crowd[member] = dist[pos];
                    }
                }
                // Binary tournament on (rank asc, crowding desc),
                // position tie-break for determinism.
                let tournament = |rng: &mut SplitMix64| -> usize {
                    let a = rng.below(pop.len());
                    let b = rng.below(pop.len());
                    if rank[a] != rank[b] {
                        if rank[a] < rank[b] {
                            a
                        } else {
                            b
                        }
                    } else if crowd[a] != crowd[b] {
                        if crowd[a] > crowd[b] {
                            a
                        } else {
                            b
                        }
                    } else {
                        a.min(b)
                    }
                };
                let mut offspring: Vec<usize> = Vec::with_capacity(pop_size);
                for _ in 0..pop_size {
                    let p1 = space.cell(pop[tournament(&mut rng)]);
                    let p2 = space.cell(pop[tournament(&mut rng)]);
                    // Uniform coordinate crossover …
                    let mut row = if rng.coin() { p1.row } else { p2.row };
                    let mut col = if rng.coin() { p1.col } else { p2.col };
                    // … then ±1-level mutation per axis.
                    if rng.next_f64() < MUTATION_RATE {
                        row = step(row, space.cap(), &mut rng);
                    }
                    if rng.next_f64() < MUTATION_RATE {
                        col = step(col, space.cap(), &mut rng);
                    }
                    let child = space.index(Cell::new(row, col));
                    probe(child, &mut evals, &mut probes)?;
                    offspring.push(child);
                }
                // Environmental selection over parents ∪ offspring.
                let combined: Vec<usize> = pop.iter().copied().chain(offspring).collect();
                let ce: Vec<CellEval> = combined
                    .iter()
                    .map(|&i| evals[i].expect("combined members are probed"))
                    .collect();
                let fronts = fast_non_dominated_sort(&ce);
                let mut next_pop: Vec<usize> = Vec::with_capacity(pop_size);
                for members in &fronts {
                    if next_pop.len() + members.len() <= pop_size {
                        next_pop.extend(members.iter().map(|&p| combined[p]));
                    } else {
                        let dist = crowding_distance(members, &ce);
                        let mut order: Vec<usize> = (0..members.len()).collect();
                        order.sort_by(|&a, &b| {
                            dist[b]
                                .total_cmp(&dist[a])
                                .then(members[a].cmp(&members[b]))
                        });
                        for &pos in &order {
                            if next_pop.len() == pop_size {
                                break;
                            }
                            next_pop.push(combined[members[pos]]);
                        }
                    }
                    if next_pop.len() == pop_size {
                        break;
                    }
                }
                pop = next_pop;
            }
        }
        // Report the front of the whole probed archive, not the final
        // population: memoization makes the archive a superset, and
        // front membership must survive everything we learned.
        let archive: Vec<usize> = (0..total).filter(|&i| evals[i].is_some()).collect();
        let ae: Vec<CellEval> = archive
            .iter()
            .map(|&i| evals[i].expect("archive members are probed"))
            .collect();
        let fronts = fast_non_dominated_sort(&ae);
        let points: Vec<FrontPoint> = fronts
            .first()
            .map(|members| {
                members
                    .iter()
                    .filter(|&&p| ae[p].feasible)
                    .map(|&p| FrontPoint {
                        cell: space.cell(archive[p]),
                        eval: ae[p],
                    })
                    .collect()
            })
            .unwrap_or_default();
        let knee = knee_index(&points);
        let best = knee.map(|k| points[k].cell);
        Ok(Selection {
            best,
            probes,
            front: Some(ParetoFront { points, knee }),
        })
    }
}

/// One ±1 step along an axis, clamped to `[0, cap]`; at a boundary the
/// only legal direction is taken.
fn step(level: usize, cap: usize, rng: &mut SplitMix64) -> usize {
    if cap == 0 {
        return 0;
    }
    if level == 0 {
        1
    } else if level == cap {
        cap - 1
    } else if rng.coin() {
        level + 1
    } else {
        level - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Bowl;

    fn eval(objs: [f64; 3], feasible: bool, violation: f64) -> CellEval {
        CellEval {
            objective: objs[0] * objs[1],
            objectives: objs,
            feasible,
            violation,
        }
    }

    #[test]
    fn constrained_domination_rules() {
        let feas_good = eval([1.0, 1.0, 1.0], true, 0.0);
        let feas_bad = eval([2.0, 2.0, 2.0], true, 0.0);
        let feas_mixed = eval([0.5, 3.0, 1.0], true, 0.0);
        let infeas_near = eval([0.1, 0.1, 0.1], false, 0.5);
        let infeas_far = eval([0.1, 0.1, 0.1], false, 2.0);
        assert!(dominates(&feas_good, &feas_bad));
        assert!(!dominates(&feas_bad, &feas_good));
        // Incomparable feasible pair: neither dominates.
        assert!(!dominates(&feas_good, &feas_mixed));
        assert!(!dominates(&feas_mixed, &feas_good));
        // Feasible beats infeasible regardless of objectives.
        assert!(dominates(&feas_bad, &infeas_near));
        assert!(!dominates(&infeas_near, &feas_bad));
        // Infeasible pair: lower violation wins.
        assert!(dominates(&infeas_near, &infeas_far));
        assert!(!dominates(&infeas_far, &infeas_near));
        // Equal points never dominate each other.
        assert!(!dominates(&feas_good, &feas_good));
    }

    #[test]
    fn sort_produces_layered_fronts() {
        let evals = vec![
            eval([1.0, 1.0, 1.0], true, 0.0),  // front 0
            eval([2.0, 2.0, 2.0], true, 0.0),  // front 1 (dominated by 0)
            eval([0.5, 3.0, 1.0], true, 0.0),  // front 0 (incomparable)
            eval([3.0, 3.0, 3.0], true, 0.0),  // front 2
            eval([9.0, 9.0, 9.0], false, 1.0), // last (infeasible)
        ];
        let fronts = fast_non_dominated_sort(&evals);
        assert_eq!(fronts[0], vec![0, 2]);
        assert_eq!(fronts[1], vec![1]);
        assert_eq!(fronts[2], vec![3]);
        assert_eq!(fronts[3], vec![4]);
    }

    #[test]
    fn crowding_keeps_boundaries_infinite() {
        let evals = vec![
            eval([0.0, 4.0, 0.0], true, 0.0),
            eval([1.0, 3.0, 0.0], true, 0.0),
            eval([2.0, 2.0, 0.0], true, 0.0),
            eval([4.0, 0.0, 0.0], true, 0.0),
        ];
        let front: Vec<usize> = (0..4).collect();
        let d = crowding_distance(&front, &evals);
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn knee_prefers_the_balanced_point() {
        let points = vec![
            FrontPoint {
                cell: Cell::new(0, 0),
                eval: eval([0.0, 10.0, 0.0], true, 0.0),
            },
            FrontPoint {
                cell: Cell::new(1, 1),
                eval: eval([1.0, 1.0, 0.0], true, 0.0),
            },
            FrontPoint {
                cell: Cell::new(2, 2),
                eval: eval([10.0, 0.0, 0.0], true, 0.0),
            },
        ];
        assert_eq!(knee_index(&points), Some(1));
        assert_eq!(knee_index(&[]), None);
    }

    #[test]
    fn probe_all_regime_reports_the_exact_front() {
        let bowl = Bowl {
            space: GridSpace::new(6),
            opt: Cell::new(2, 3),
            feasible_budget: 7,
        };
        let sel = NsgaSearcher::new(36, 8, 1)
            .select(bowl.space, Cell::new(0, 0), &mut bowl.oracle())
            .expect("infallible oracle");
        assert_eq!(sel.probes, 36);
        let front = sel.front.expect("NSGA always reports a front");
        assert!(!front.points.is_empty());
        // Brute-force check: every feasible cell is either on the
        // front or dominated by a front member, and no front member
        // dominates another.
        let mut oracle = bowl.oracle();
        for cell in bowl.space.cells() {
            let e = oracle(cell).expect("infallible oracle");
            if !e.feasible {
                assert!(!front.points.iter().any(|p| p.cell == cell));
                continue;
            }
            let on_front = front.points.iter().any(|p| p.cell == cell);
            let dominated = front.points.iter().any(|p| dominates(&p.eval, &e));
            assert!(on_front || dominated, "{cell:?} unaccounted for");
        }
        for a in &front.points {
            for b in &front.points {
                assert!(!dominates(&a.eval, &b.eval) || a.cell == b.cell);
            }
        }
        assert!(sel.best.is_some());
        assert_eq!(sel.best, front.knee_point().map(|p| p.cell));
    }

    #[test]
    fn evolutionary_regime_is_seed_deterministic() {
        let bowl = Bowl {
            space: GridSpace::new(6),
            opt: Cell::new(4, 1),
            feasible_budget: 8,
        };
        let run = |seed: u64| {
            NsgaSearcher::new(10, 6, seed)
                .select(bowl.space, Cell::new(2, 2), &mut bowl.oracle())
                .expect("infallible oracle")
        };
        assert_eq!(run(5), run(5));
        let sel = run(5);
        assert!(sel.probes <= 36, "memoization caps distinct probes");
        assert!(sel.best.is_some());
    }

    #[test]
    fn all_infeasible_yields_an_empty_front_and_no_best() {
        let space = GridSpace::new(4);
        let mut hostile = |_: Cell| -> Result<CellEval, std::convert::Infallible> {
            Ok(eval([1.0, 1.0, 1.0], false, 3.0))
        };
        let sel = NsgaSearcher::new(16, 4, 2)
            .select(space, Cell::new(0, 0), &mut hostile)
            .expect("infallible oracle");
        assert_eq!(sel.best, None);
        let front = sel.front.expect("front is always reported");
        assert!(front.points.is_empty());
        assert_eq!(front.knee, None);
    }
}
