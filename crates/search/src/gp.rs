//! A lightweight Gaussian-process surrogate for Bayesian optimization
//! over the OU grid.
//!
//! The design stays deliberately small: the search space holds at most
//! 36 points, so the GP fits a dense `n × n` kernel matrix (n ≤ 36)
//! with a plain Cholesky factorization — no approximations, no
//! external linear-algebra crate. Targets are standardized internally
//! and the RBF kernel operates on grid coordinates normalized to
//! `[0, 1]²`, so one set of default hyperparameters serves every layer
//! without per-layer tuning.
//!
//! Numerical robustness is a contract, not best-effort: a degenerate
//! design (duplicate probe coordinates, zero-variance targets) must
//! never panic. Duplicates are absorbed by an escalating diagonal
//! jitter ladder; zero-variance targets by a standard-deviation floor.
//! Only when the kernel matrix stays non-positive-definite through the
//! whole ladder does [`Surrogate::fit`] return a typed [`GpError`] for
//! the caller to surface.

/// Hyperparameters of the RBF-kernel Gaussian process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpParams {
    /// RBF length scale in normalized-coordinate units. The default
    /// (0.3) makes probes two grid levels apart meaningfully
    /// correlated while keeping opposite corners nearly independent.
    pub length_scale: f64,
    /// Prior signal variance (kernel amplitude).
    pub signal_variance: f64,
    /// Observation-noise variance added to the kernel diagonal. The
    /// oracle is deterministic, so this is a numerical regularizer
    /// more than a noise model.
    pub noise: f64,
    /// Largest diagonal jitter the Cholesky ladder may add before
    /// giving up with [`GpError::Singular`]. Set to `0.0` to forbid
    /// any rescue jitter (used by the robustness tests to force the
    /// typed failure path).
    pub max_jitter: f64,
}

impl Default for GpParams {
    fn default() -> Self {
        GpParams {
            length_scale: 0.3,
            signal_variance: 1.0,
            noise: 1e-6,
            max_jitter: 1e-2,
        }
    }
}

/// Why a surrogate could not be fitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpError {
    /// The kernel matrix was not positive-definite even after the
    /// jitter ladder was exhausted.
    Singular,
    /// The design was empty or the coordinate/target lengths differ.
    EmptyDesign,
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::Singular => {
                write!(f, "kernel matrix stayed singular through the jitter ladder")
            }
            GpError::EmptyDesign => write!(f, "cannot fit a GP on an empty design"),
        }
    }
}

impl std::error::Error for GpError {}

/// A fitted GP posterior over `[0, 1]²`.
///
/// Targets are standardized at fit time; [`Surrogate::predict`]
/// returns the posterior mean and variance *in standardized space*.
/// Acquisition functions (expected improvement) are invariant to that
/// affine map, so callers compare against
/// [`Surrogate::standardize`]`(best_raw)` instead of de-standardizing
/// every prediction.
#[derive(Debug, Clone)]
pub struct Surrogate {
    xs: Vec<[f64; 2]>,
    /// Lower-triangular Cholesky factor of `K + (noise + jitter)·I`,
    /// row-major `n × n`.
    chol: Vec<f64>,
    /// `K⁻¹ y` (standardized targets).
    alpha: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    params: GpParams,
}

/// Floor on the target standard deviation: below this the design is
/// treated as zero-variance and standardized with σ = 1 so the fit
/// degrades to a flat posterior instead of dividing by ~0.
const STD_FLOOR: f64 = 1e-12;

/// First rung of the diagonal jitter ladder.
const BASE_JITTER: f64 = 1e-8;

impl Surrogate {
    /// Fits the GP to `xs` (normalized coordinates) and `ys` (raw
    /// targets, standardized internally).
    ///
    /// # Errors
    ///
    /// [`GpError::EmptyDesign`] on an empty or length-mismatched
    /// design; [`GpError::Singular`] when the kernel matrix is not
    /// positive-definite even at `params.max_jitter`.
    pub fn fit(xs: &[[f64; 2]], ys: &[f64], params: GpParams) -> Result<Surrogate, GpError> {
        let n = xs.len();
        if n == 0 || ys.len() != n {
            return Err(GpError::EmptyDesign);
        }
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let var = ys.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>() / n as f64;
        let y_std = if var.sqrt() < STD_FLOOR {
            1.0
        } else {
            var.sqrt()
        };
        let ys_std: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();
        let mut jitter = 0.0;
        loop {
            let mut k = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    k[i * n + j] = rbf(xs[i], xs[j], params);
                }
                k[i * n + i] += params.noise + jitter;
            }
            if let Some(chol) = cholesky(&k, n) {
                let alpha = solve_cholesky(&chol, n, &ys_std);
                return Ok(Surrogate {
                    xs: xs.to_vec(),
                    chol,
                    alpha,
                    y_mean,
                    y_std,
                    params,
                });
            }
            jitter = if jitter == 0.0 {
                BASE_JITTER
            } else {
                jitter * 10.0
            };
            if jitter > params.max_jitter {
                return Err(GpError::Singular);
            }
        }
    }

    /// Posterior `(mean, variance)` at `x`, in standardized target
    /// space. The variance is clamped to be non-negative.
    #[must_use]
    pub fn predict(&self, x: [f64; 2]) -> (f64, f64) {
        let n = self.xs.len();
        let kstar: Vec<f64> = self.xs.iter().map(|xi| rbf(*xi, x, self.params)).collect();
        let mean = kstar
            .iter()
            .zip(&self.alpha)
            .map(|(k, a)| k * a)
            .sum::<f64>();
        // v = L⁻¹ k*  (forward substitution), var = k(x,x) − ‖v‖².
        let mut v = kstar;
        for i in 0..n {
            let dot: f64 = self.chol[i * n..i * n + i]
                .iter()
                .zip(&v[..i])
                .map(|(l, vj)| l * vj)
                .sum();
            v[i] = (v[i] - dot) / self.chol[i * n + i];
        }
        let prior = rbf(x, x, self.params) + self.params.noise;
        let var = (prior - v.iter().map(|vi| vi * vi).sum::<f64>()).max(0.0);
        (mean, var)
    }

    /// Maps a raw target value into the surrogate's standardized
    /// space (for comparing an incumbent against predictions).
    #[must_use]
    pub fn standardize(&self, y: f64) -> f64 {
        (y - self.y_mean) / self.y_std
    }
}

/// RBF (squared-exponential) kernel.
fn rbf(a: [f64; 2], b: [f64; 2], params: GpParams) -> f64 {
    let d2 = (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2);
    params.signal_variance * (-d2 / (2.0 * params.length_scale * params.length_scale)).exp()
}

/// Dense Cholesky factorization of a symmetric matrix (row-major,
/// `n × n`). Returns `None` when the matrix is not positive-definite.
fn cholesky(k: &[f64], n: usize) -> Option<Vec<f64>> {
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let dot: f64 = l[i * n..i * n + j]
                .iter()
                .zip(&l[j * n..j * n + j])
                .map(|(a, b)| a * b)
                .sum();
            let s = k[i * n + j] - dot;
            if i == j {
                if !(s.is_finite() && s > 0.0) {
                    return None;
                }
                l[i * n + i] = s.sqrt();
            } else {
                l[i * n + j] = s / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Solves `L Lᵀ x = y` by forward then back substitution.
fn solve_cholesky(l: &[f64], n: usize, y: &[f64]) -> Vec<f64> {
    let mut x = y.to_vec();
    for i in 0..n {
        let dot: f64 = l[i * n..i * n + i]
            .iter()
            .zip(&x[..i])
            .map(|(a, b)| a * b)
            .sum();
        x[i] = (x[i] - dot) / l[i * n + i];
    }
    for i in (0..n).rev() {
        let dot: f64 = ((i + 1)..n).map(|j| l[j * n + i] * x[j]).sum();
        x[i] = (x[i] - dot) / l[i * n + i];
    }
    x
}

/// Expected improvement for *minimization*, given a posterior
/// `(mean, variance)` and the incumbent best target — all in the same
/// (standardized) space. Returns 0 for a vanishing posterior standard
/// deviation unless the mean already beats the incumbent.
#[must_use]
pub fn expected_improvement(mean: f64, variance: f64, best: f64) -> f64 {
    let s = variance.max(0.0).sqrt();
    let improvement = best - mean;
    if s < 1e-12 {
        return improvement.max(0.0);
    }
    let z = improvement / s;
    improvement * normal_cdf(z) + s * normal_pdf(z)
}

/// Standard normal CDF via [`erf`].
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal PDF.
fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Error function, Abramowitz & Stegun 7.1.26 (max absolute error
/// ≈ 1.5 × 10⁻⁷ — far below anything the acquisition argmax can
/// distinguish on a 36-cell grid).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = ((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
        * t
        + 0.254_829_592;
    sign * (1.0 - poly * t * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> (Vec<[f64; 2]>, Vec<f64>) {
        let xs: Vec<[f64; 2]> = vec![[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0], [0.5, 0.5]];
        let ys = xs
            .iter()
            .map(|x| (x[0] - 0.4).powi(2) + (x[1] - 0.6).powi(2))
            .collect();
        (xs, ys)
    }

    #[test]
    fn posterior_interpolates_observations() {
        let (xs, ys) = design();
        let gp = Surrogate::fit(&xs, &ys, GpParams::default()).expect("well-posed design");
        for (x, y) in xs.iter().zip(&ys) {
            let (mean, var) = gp.predict(*x);
            let resid = (mean - gp.standardize(*y)).abs();
            assert!(resid < 1e-2, "residual {resid} at {x:?}");
            assert!(var < 1e-3, "variance {var} at an observed point");
        }
    }

    #[test]
    fn variance_grows_away_from_the_design() {
        let (xs, ys) = design();
        let gp = Surrogate::fit(&xs, &ys, GpParams::default()).expect("well-posed design");
        let (_, at_obs) = gp.predict([0.0, 0.0]);
        let (_, far) = gp.predict([0.2, 0.85]);
        assert!(far > at_obs, "far {far} ≤ observed {at_obs}");
    }

    #[test]
    fn duplicate_probes_are_rescued_by_jitter() {
        let xs = vec![[0.5, 0.5]; 6];
        let ys = vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0];
        // Zero declared noise: the kernel matrix is exactly rank-1 and
        // only the jitter ladder can make it factorizable.
        let params = GpParams {
            noise: 0.0,
            ..GpParams::default()
        };
        let gp = Surrogate::fit(&xs, &ys, params).expect("jitter rescues duplicates");
        let (mean, _) = gp.predict([0.5, 0.5]);
        assert!(mean.is_finite());
    }

    #[test]
    fn zero_variance_targets_do_not_panic() {
        let xs = vec![[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]];
        let ys = vec![3.0; 3];
        let gp = Surrogate::fit(&xs, &ys, GpParams::default()).expect("std floor handles it");
        let (mean, var) = gp.predict([0.5, 0.5]);
        assert!(mean.is_finite() && var.is_finite());
        // Standardizing the common value is exactly zero (σ floored).
        assert_eq!(gp.standardize(3.0), 0.0);
    }

    #[test]
    fn exhausted_jitter_ladder_is_a_typed_error() {
        let xs = vec![[0.5, 0.5]; 4];
        let ys = vec![1.0, 2.0, 3.0, 4.0];
        let params = GpParams {
            noise: 0.0,
            max_jitter: 0.0,
            ..GpParams::default()
        };
        let err = Surrogate::fit(&xs, &ys, params).expect_err("no jitter allowed");
        assert_eq!(err, GpError::Singular);
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn empty_design_is_a_typed_error() {
        assert_eq!(
            Surrogate::fit(&[], &[], GpParams::default()).expect_err("empty"),
            GpError::EmptyDesign
        );
        assert_eq!(
            Surrogate::fit(&[[0.0, 0.0]], &[], GpParams::default()).expect_err("mismatch"),
            GpError::EmptyDesign
        );
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_26).abs() < 2e-7);
    }

    #[test]
    fn expected_improvement_behaves_at_the_limits() {
        // No variance, mean worse than best → no improvement.
        assert_eq!(expected_improvement(1.0, 0.0, 0.5), 0.0);
        // No variance, mean better than best → the full gap.
        assert!((expected_improvement(0.2, 0.0, 0.5) - 0.3).abs() < 1e-12);
        // More variance at the same mean → more expected improvement.
        let low = expected_improvement(0.5, 0.01, 0.5);
        let high = expected_improvement(0.5, 1.0, 0.5);
        assert!(high > low);
        assert!(low > 0.0);
    }
}
