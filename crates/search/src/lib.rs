//! **odin-search**: pluggable search strategies over the discrete OU
//! configuration grid.
//!
//! The Odin runtime searches a small discrete grid (6×6 on the paper's
//! 128×128 crossbar) for the operation-unit shape minimizing EDP under
//! a non-ideality budget. This crate generalizes that search behind the
//! [`Searcher`] trait so the runtime can swap strategies without
//! touching the evaluator: the strategy decides *which* cells to probe,
//! an oracle closure supplied by the caller decides *how* a probe is
//! scored (analytic model, memoized cache, fault-aware kernel — the
//! strategy never knows).
//!
//! Four strategies ship:
//!
//! - [`GridScan`] — probe every cell row-major, keep the strictly best
//!   feasible one (the exhaustive reference).
//! - [`HillClimb`] — greedy ±1-level local search from a seed cell (the
//!   paper's resource-bounded search).
//! - [`BoSearcher`] — seeded Bayesian optimization: a Gaussian-process
//!   surrogate ([`gp`]) over normalized grid coordinates with
//!   expected-improvement acquisition and a fixed probe budget.
//! - [`NsgaSearcher`] — NSGA-II multi-objective search ([`nsga`])
//!   returning a [`ParetoFront`] over (energy, latency, wear) plus a
//!   deterministic knee point.
//!
//! Everything is dependency-free, deterministic for a fixed seed, and
//! allocation-light; the crate never performs I/O.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bo;
pub mod gp;
pub mod nsga;
pub mod rng;

pub use bo::BoSearcher;
pub use gp::{GpError, GpParams, Surrogate};
pub use nsga::{
    crowding_distance, dominates, fast_non_dominated_sort, knee_index, FrontPoint, NsgaSearcher,
    ParetoFront,
};
pub use rng::SplitMix64;

/// Number of objectives carried by every probe: energy, latency, wear.
pub const NUM_OBJECTIVES: usize = 3;

/// One cell on the discrete search grid, addressed by level indices
/// (row exponent, column exponent) — *not* the physical OU dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cell {
    /// Row-dimension level index.
    pub row: usize,
    /// Column-dimension level index.
    pub col: usize,
}

impl Cell {
    /// Builds a cell from level indices.
    #[must_use]
    pub fn new(row: usize, col: usize) -> Self {
        Cell { row, col }
    }
}

/// The square level grid a search runs over: `levels × levels` cells,
/// iterated row-major. A wear-shrunk grid is just a smaller
/// `GridSpace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSpace {
    levels: usize,
}

impl GridSpace {
    /// A `levels × levels` grid. `levels` must be at least 1.
    #[must_use]
    pub fn new(levels: usize) -> Self {
        GridSpace {
            levels: levels.max(1),
        }
    }

    /// Levels per axis.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Highest level index on each axis.
    #[must_use]
    pub fn cap(&self) -> usize {
        self.levels - 1
    }

    /// Total cell count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels * self.levels
    }

    /// `true` when the grid has no cells (never: `levels >= 1`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major flat index of `cell`.
    #[must_use]
    pub fn index(&self, cell: Cell) -> usize {
        cell.row * self.levels + cell.col
    }

    /// The cell at row-major flat index `index`.
    #[must_use]
    pub fn cell(&self, index: usize) -> Cell {
        Cell::new(index / self.levels, index % self.levels)
    }

    /// Clamps a cell onto the grid.
    #[must_use]
    pub fn clamp(&self, cell: Cell) -> Cell {
        Cell::new(cell.row.min(self.cap()), cell.col.min(self.cap()))
    }

    /// `true` when `cell` lies on the grid.
    #[must_use]
    pub fn contains(&self, cell: Cell) -> bool {
        cell.row < self.levels && cell.col < self.levels
    }

    /// All cells in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        (0..self.len()).map(move |i| self.cell(i))
    }
}

/// The oracle's verdict on one probed cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellEval {
    /// Scalar objective to minimize (EDP in the Odin runtime).
    pub objective: f64,
    /// The multi-objective vector `[energy, latency, wear]` used by
    /// the NSGA-II searcher; single-objective strategies ignore it.
    pub objectives: [f64; NUM_OBJECTIVES],
    /// Whether the cell satisfies the hard constraint (`impact < η`).
    /// Kept as an explicit flag — `violation == 0` alone cannot
    /// represent the boundary case where the impact *equals* the
    /// budget, which the runtime treats as infeasible.
    pub feasible: bool,
    /// Constraint violation magnitude (`max(0, impact − η)`); used to
    /// rank infeasible cells against each other.
    pub violation: f64,
}

/// What a search returns: a single winning cell (if any feasible cell
/// was probed), how many oracle calls it spent, and — for
/// multi-objective strategies — the full Pareto front.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The selected cell, `None` when no probed cell was feasible.
    pub best: Option<Cell>,
    /// Distinct oracle probes issued.
    pub probes: usize,
    /// The non-dominated front over probed cells (NSGA-II only).
    pub front: Option<ParetoFront>,
}

/// Why a search could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchFailure<E> {
    /// The oracle failed to score a cell; carries the caller's error.
    Oracle(E),
    /// The strategy's own numerics broke down (e.g. the GP Cholesky
    /// factorization stayed singular through the jitter ladder).
    Numeric {
        /// Which numeric step failed.
        what: &'static str,
    },
}

/// A search strategy over a [`GridSpace`].
///
/// The oracle maps a [`Cell`] to a [`CellEval`]; implementations must
/// be deterministic — the same `(space, seed, oracle)` always probes
/// the same cells in the same order and returns the same selection.
pub trait Searcher {
    /// Runs the search, probing cells through `oracle`.
    ///
    /// # Errors
    ///
    /// [`SearchFailure::Oracle`] when the oracle fails;
    /// [`SearchFailure::Numeric`] when the strategy's numerics break.
    fn select<E>(
        &self,
        space: GridSpace,
        seed: Cell,
        oracle: &mut dyn FnMut(Cell) -> Result<CellEval, E>,
    ) -> Result<Selection, SearchFailure<E>>;
}

/// The exhaustive reference strategy: probe every cell in row-major
/// order, keep the strictly best (`objective <`) feasible cell. Ties
/// resolve to the earliest cell in visit order — the same rule as the
/// runtime's exhaustive flat-buffer scan, which the parity proptests
/// pin down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GridScan;

impl Searcher for GridScan {
    fn select<E>(
        &self,
        space: GridSpace,
        _seed: Cell,
        oracle: &mut dyn FnMut(Cell) -> Result<CellEval, E>,
    ) -> Result<Selection, SearchFailure<E>> {
        let mut best: Option<(Cell, f64)> = None;
        let mut probes = 0;
        for cell in space.cells() {
            let eval = oracle(cell).map_err(SearchFailure::Oracle)?;
            probes += 1;
            if !eval.feasible {
                continue;
            }
            if best.is_none_or(|(_, obj)| eval.objective < obj) {
                best = Some((cell, eval.objective));
            }
        }
        Ok(Selection {
            best: best.map(|(c, _)| c),
            probes,
            front: None,
        })
    }
}

/// The paper's resource-bounded greedy local search: from the seed
/// cell, take up to `k` steps; each step probes the four ±1-level
/// neighbours in the fixed order `[-row, +row, -col, +col]`, tracks
/// the strictly best feasible probe globally, and moves to the last
/// neighbour that improved it. Stops early when no neighbour improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HillClimb {
    /// Maximum number of greedy steps.
    pub k: usize,
}

impl Searcher for HillClimb {
    fn select<E>(
        &self,
        space: GridSpace,
        seed: Cell,
        oracle: &mut dyn FnMut(Cell) -> Result<CellEval, E>,
    ) -> Result<Selection, SearchFailure<E>> {
        let n = space.levels() as isize;
        let Cell {
            row: mut r,
            col: mut c,
        } = space.clamp(seed);
        let mut probes = 0;
        let mut probe = |r: usize, c: usize, probes: &mut usize| {
            *probes += 1;
            oracle(Cell::new(r, c)).map_err(SearchFailure::Oracle)
        };
        let seed_eval = probe(r, c, &mut probes)?;
        let mut best: Option<(Cell, f64)> = seed_eval
            .feasible
            .then_some((Cell::new(r, c), seed_eval.objective));
        for _ in 0..self.k {
            let mut improved = false;
            let mut next = (r, c);
            for (dr, dc) in [(-1isize, 0isize), (1, 0), (0, -1), (0, 1)] {
                let (nr, nc) = (r as isize + dr, c as isize + dc);
                if nr < 0 || nr >= n || nc < 0 || nc >= n {
                    continue;
                }
                let (nr, nc) = (nr as usize, nc as usize);
                let eval = probe(nr, nc, &mut probes)?;
                if !eval.feasible {
                    continue;
                }
                if best.is_none_or(|(_, obj)| eval.objective < obj) {
                    best = Some((Cell::new(nr, nc), eval.objective));
                    next = (nr, nc);
                    improved = true;
                }
            }
            if !improved {
                break;
            }
            (r, c) = next;
        }
        Ok(Selection {
            best: best.map(|(cell, _)| cell),
            probes,
            front: None,
        })
    }
}

impl<E> std::fmt::Display for SearchFailure<E>
where
    E: std::fmt::Display,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchFailure::Oracle(e) => write!(f, "search oracle failed: {e}"),
            SearchFailure::Numeric { what } => {
                write!(f, "search numerics failed in `{what}`")
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::{Cell, CellEval, GridSpace};
    use std::convert::Infallible;

    /// A deterministic synthetic landscape: a smooth bowl with its
    /// minimum at `(opt_r, opt_c)`, every cell feasible unless its
    /// row+col exceed `feasible_budget`.
    pub(crate) struct Bowl {
        pub space: GridSpace,
        pub opt: Cell,
        pub feasible_budget: usize,
    }

    impl Bowl {
        pub(crate) fn oracle(&self) -> impl FnMut(Cell) -> Result<CellEval, Infallible> {
            let (opt, budget) = (self.opt, self.feasible_budget);
            move |cell| {
                let dr = cell.row.abs_diff(opt.row) as f64;
                let dc = cell.col.abs_diff(opt.col) as f64;
                let objective = 1.0 + dr * dr + dc * dc + 0.1 * dr;
                let feasible = cell.row + cell.col <= budget;
                Ok(CellEval {
                    objective,
                    objectives: [objective * 0.5, objective * 2.0, cell.row as f64],
                    feasible,
                    violation: if feasible {
                        0.0
                    } else {
                        (cell.row + cell.col - budget) as f64
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::Bowl;
    use super::*;

    #[test]
    fn grid_space_round_trips_indices() {
        let space = GridSpace::new(6);
        assert_eq!(space.len(), 36);
        for (i, cell) in space.cells().enumerate() {
            assert_eq!(space.index(cell), i);
            assert_eq!(space.cell(i), cell);
            assert!(space.contains(cell));
        }
        assert_eq!(space.clamp(Cell::new(99, 99)), Cell::new(5, 5));
        assert!(!space.contains(Cell::new(6, 0)));
    }

    #[test]
    fn grid_scan_probes_everything_and_finds_the_optimum() {
        let bowl = Bowl {
            space: GridSpace::new(6),
            opt: Cell::new(2, 3),
            feasible_budget: 10,
        };
        let sel = GridScan
            .select(bowl.space, Cell::new(0, 0), &mut bowl.oracle())
            .expect("infallible oracle");
        assert_eq!(sel.probes, 36);
        assert_eq!(sel.best, Some(Cell::new(2, 3)));
        assert!(sel.front.is_none());
    }

    #[test]
    fn grid_scan_returns_none_when_nothing_is_feasible() {
        let bowl = Bowl {
            space: GridSpace::new(4),
            opt: Cell::new(1, 1),
            feasible_budget: 0,
        };
        // Only (0,0) is feasible with budget 0 — shrink further by
        // making even that infeasible via an oracle wrapper.
        let mut oracle = bowl.oracle();
        let mut none = |cell: Cell| {
            oracle(cell).map(|mut e| {
                e.feasible = false;
                e.violation = e.violation.max(1.0);
                e
            })
        };
        let sel = GridScan
            .select(bowl.space, Cell::new(0, 0), &mut none)
            .expect("infallible oracle");
        assert_eq!(sel.best, None);
        assert_eq!(sel.probes, 16);
    }

    #[test]
    fn hill_climb_descends_the_bowl_from_a_good_seed() {
        let bowl = Bowl {
            space: GridSpace::new(6),
            opt: Cell::new(2, 3),
            feasible_budget: 10,
        };
        let sel = HillClimb { k: 3 }
            .select(bowl.space, Cell::new(3, 4), &mut bowl.oracle())
            .expect("infallible oracle");
        assert_eq!(sel.best, Some(Cell::new(2, 3)));
        // Seed + ≤ 4 neighbours per step.
        assert!(sel.probes <= 13, "probed {}", sel.probes);
    }

    #[test]
    fn hill_climb_clamps_off_grid_seeds() {
        let bowl = Bowl {
            space: GridSpace::new(6),
            opt: Cell::new(5, 5),
            feasible_budget: 10,
        };
        let sel = HillClimb { k: 1 }
            .select(bowl.space, Cell::new(40, 40), &mut bowl.oracle())
            .expect("infallible oracle");
        // Clamped to the top corner: seed + 2 in-bounds neighbours.
        assert!(sel.probes <= 3, "probed {}", sel.probes);
        assert_eq!(sel.best, Some(Cell::new(5, 5)));
    }

    #[test]
    fn oracle_errors_propagate() {
        let space = GridSpace::new(3);
        let mut failing = |_: Cell| -> Result<CellEval, &'static str> { Err("boom") };
        let err = GridScan
            .select(space, Cell::new(0, 0), &mut failing)
            .expect_err("oracle fails");
        assert!(matches!(err, SearchFailure::Oracle("boom")));
        assert!(err.to_string().contains("boom"));
    }
}
