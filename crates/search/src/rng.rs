//! A tiny deterministic PRNG so the crate stays dependency-free.

/// SplitMix64 (Steele, Lea & Flood 2014): a 64-bit mixing generator
/// with a full 2⁶⁴ period. Statistically far stronger than a linear
/// congruential generator at the same cost, and — unlike `rand` —
/// guaranteed to produce the identical stream on every platform and in
/// every build of this crate, which is what makes seeded searches
/// replay bit-identically across checkpoint/resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index from `[0, n)`. `n` must be non-zero; the modulo
    /// bias is negligible for the tiny ranges (≤ 36 grid cells) this
    /// crate draws from.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "empty range");
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// A fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reference_vector() {
        // First outputs for seed 0, from the published reference
        // implementation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn floats_land_in_unit_interval_and_indices_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(rng.below(36) < 36);
        }
    }
}
