//! Seeded, deterministic Bayesian optimization over the OU grid.
//!
//! The searcher spends a fixed probe budget: an initial space-filling
//! design (the caller's seed cell, the four grid corners, and the
//! center), then one probe per iteration at the unprobed cell
//! maximizing expected improvement under a GP surrogate fitted to
//! everything probed so far. Infeasible probes stay in the design with
//! a constant penalty added to their (log-scale) objective, steering
//! the surrogate away from constraint-violating regions without
//! discarding the information they carry.
//!
//! Determinism: cells are enumerated row-major, the acquisition argmax
//! breaks ties toward the earliest cell, and the only randomness — the
//! fallback pick when the acquisition surface degenerates to zero —
//! comes from a [`SplitMix64`] stream derived from the searcher's
//! seed. The same `(budget, seed, oracle)` always probes the same
//! cells in the same order.

use crate::gp::{expected_improvement, GpParams, Surrogate};
use crate::rng::SplitMix64;
use crate::{Cell, CellEval, GridScan, GridSpace, SearchFailure, Searcher, Selection};

/// Penalty added to the log-scale objective of infeasible probes. At 8
/// natural-log units (≈ 3000×) an infeasible cell can never look more
/// promising than any feasible one, yet the surrogate still learns the
/// shape of the infeasible region.
const INFEASIBLE_PENALTY: f64 = 8.0;

/// The Bayesian-optimization searcher.
#[derive(Debug, Clone, PartialEq)]
pub struct BoSearcher {
    /// Total probe budget (oracle calls). A budget at or above the
    /// cell count degrades to the exhaustive [`GridScan`].
    pub budget: usize,
    /// Seed for the degenerate-acquisition fallback stream.
    pub seed: u64,
    /// GP hyperparameters.
    pub params: GpParams,
}

impl BoSearcher {
    /// A searcher with the default GP hyperparameters.
    #[must_use]
    pub fn new(budget: usize, seed: u64) -> Self {
        BoSearcher {
            budget,
            seed,
            params: GpParams::default(),
        }
    }
}

/// The penalized log-scale target the surrogate regresses on.
fn target(eval: &CellEval) -> f64 {
    let y = eval.objective.max(f64::MIN_POSITIVE).ln();
    if eval.feasible {
        y
    } else {
        y + INFEASIBLE_PENALTY
    }
}

impl Searcher for BoSearcher {
    fn select<E>(
        &self,
        space: GridSpace,
        seed: Cell,
        oracle: &mut dyn FnMut(Cell) -> Result<CellEval, E>,
    ) -> Result<Selection, SearchFailure<E>> {
        let total = space.len();
        if self.budget >= total {
            // Nothing to model: the budget covers the whole grid.
            return GridScan.select(space, seed, oracle);
        }
        let cap = space.cap();
        let denom = cap.max(1) as f64;
        let normalize =
            |cell: Cell| -> [f64; 2] { [cell.row as f64 / denom, cell.col as f64 / denom] };
        let mut probed: Vec<Option<CellEval>> = vec![None; total];
        let mut order: Vec<Cell> = Vec::with_capacity(self.budget);
        let mut probe = |cell: Cell,
                         probed: &mut Vec<Option<CellEval>>,
                         order: &mut Vec<Cell>|
         -> Result<(), SearchFailure<E>> {
            let idx = space.index(cell);
            if probed[idx].is_none() {
                probed[idx] = Some(oracle(cell).map_err(SearchFailure::Oracle)?);
                order.push(cell);
            }
            Ok(())
        };
        // Initial design: seed, corners, center — deduplicated by the
        // memoization above, truncated by the budget check below.
        let design = [
            space.clamp(seed),
            Cell::new(0, 0),
            Cell::new(0, cap),
            Cell::new(cap, 0),
            Cell::new(cap, cap),
            Cell::new(cap / 2, cap / 2),
        ];
        for cell in design {
            if order.len() >= self.budget {
                break;
            }
            probe(cell, &mut probed, &mut order)?;
        }
        let mut rng = SplitMix64::new(self.seed);
        while order.len() < self.budget {
            let xs: Vec<[f64; 2]> = order.iter().map(|&c| normalize(c)).collect();
            let ys: Vec<f64> = order
                .iter()
                .map(|&c| {
                    let eval = probed[space.index(c)].expect("probed cells are recorded");
                    target(&eval)
                })
                .collect();
            let surrogate = Surrogate::fit(&xs, &ys, self.params)
                .map_err(|_| SearchFailure::Numeric { what: "gp-fit" })?;
            let incumbent = surrogate.standardize(ys.iter().copied().fold(f64::INFINITY, f64::min));
            // Acquisition argmax over unprobed cells, row-major,
            // strict > — ties resolve to the earliest cell.
            let mut best: Option<(Cell, f64)> = None;
            for cell in space.cells() {
                if probed[space.index(cell)].is_some() {
                    continue;
                }
                let (mean, var) = surrogate.predict(normalize(cell));
                let ei = expected_improvement(mean, var, incumbent);
                if !ei.is_finite() || ei <= 0.0 {
                    continue;
                }
                if best.is_none_or(|(_, b)| ei > b) {
                    best = Some((cell, ei));
                }
            }
            let next = match best {
                Some((cell, _)) => cell,
                None => {
                    // Degenerate acquisition surface (flat posterior):
                    // spend the remaining budget on a seeded-uniform
                    // draw over the unprobed cells.
                    let unprobed: Vec<Cell> = space
                        .cells()
                        .filter(|&c| probed[space.index(c)].is_none())
                        .collect();
                    unprobed[rng.below(unprobed.len())]
                }
            };
            probe(next, &mut probed, &mut order)?;
        }
        // Winner: strictly best feasible probe, in probe order.
        let mut best: Option<(Cell, f64)> = None;
        for &cell in &order {
            let eval = probed[space.index(cell)].expect("probed cells are recorded");
            if !eval.feasible {
                continue;
            }
            if best.is_none_or(|(_, obj)| eval.objective < obj) {
                best = Some((cell, eval.objective));
            }
        }
        Ok(Selection {
            best: best.map(|(c, _)| c),
            probes: order.len(),
            front: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Bowl;

    fn bowl(opt: Cell) -> Bowl {
        Bowl {
            space: GridSpace::new(6),
            opt,
            feasible_budget: 10,
        }
    }

    #[test]
    fn full_budget_degrades_to_grid_scan() {
        let b = bowl(Cell::new(1, 4));
        let sel = BoSearcher::new(36, 9)
            .select(b.space, Cell::new(0, 0), &mut b.oracle())
            .expect("infallible oracle");
        assert_eq!(sel.probes, 36);
        assert_eq!(sel.best, Some(Cell::new(1, 4)));
    }

    #[test]
    fn finds_the_optimum_well_under_the_exhaustive_probe_count() {
        for (r, c) in [(0, 0), (2, 3), (5, 1), (4, 4), (1, 5)] {
            let b = bowl(Cell::new(r, c));
            let sel = BoSearcher::new(16, 2025)
                .select(b.space, Cell::new(2, 2), &mut b.oracle())
                .expect("infallible oracle");
            assert_eq!(sel.probes, 16);
            assert_eq!(sel.best, Some(Cell::new(r, c)), "missed optimum ({r},{c})");
        }
    }

    #[test]
    fn seeded_repeats_probe_identically() {
        let b = bowl(Cell::new(3, 2));
        let run = |seed: u64| {
            let mut visits = Vec::new();
            let mut inner = b.oracle();
            let mut tracing = |cell: Cell| {
                visits.push(cell);
                inner(cell)
            };
            let sel = BoSearcher::new(14, seed)
                .select(b.space, Cell::new(5, 5), &mut tracing)
                .expect("infallible oracle");
            (visits, sel)
        };
        assert_eq!(run(7), run(7));
        // A different seed may (and here does) diverge only via the
        // degenerate fallback; the selected best must still agree on
        // this easy landscape.
        assert_eq!(run(7).1.best, run(8).1.best);
    }

    #[test]
    fn respects_feasibility() {
        // Optimum sits outside the feasible wedge: BO must return the
        // best *feasible* probe instead.
        let b = Bowl {
            space: GridSpace::new(6),
            opt: Cell::new(5, 5),
            feasible_budget: 4,
        };
        let sel = BoSearcher::new(16, 3)
            .select(b.space, Cell::new(0, 0), &mut b.oracle())
            .expect("infallible oracle");
        let best = sel.best.expect("feasible cells exist");
        assert!(best.row + best.col <= 4, "infeasible winner {best:?}");
    }

    #[test]
    fn zero_variance_landscape_spends_the_budget_without_panicking() {
        let space = GridSpace::new(6);
        let mut flat = |_: Cell| -> Result<CellEval, std::convert::Infallible> {
            Ok(CellEval {
                objective: 2.5,
                objectives: [1.0, 1.0, 1.0],
                feasible: true,
                violation: 0.0,
            })
        };
        let sel = BoSearcher::new(12, 11)
            .select(space, Cell::new(2, 2), &mut flat)
            .expect("flat landscape is fine");
        assert_eq!(sel.probes, 12);
        assert!(sel.best.is_some());
    }

    #[test]
    fn exhausted_jitter_ladder_surfaces_as_numeric_failure() {
        let b = bowl(Cell::new(2, 2));
        let mut searcher = BoSearcher::new(16, 1);
        searcher.params.noise = 0.0;
        searcher.params.max_jitter = 0.0;
        // An enormous length scale makes every kernel entry equal to
        // the signal variance — a numerically rank-1 matrix that no
        // forbidden jitter can rescue.
        searcher.params.length_scale = 1e9;
        let err = searcher
            .select(b.space, Cell::new(0, 0), &mut b.oracle())
            .expect_err("singular kernel with jitter forbidden");
        assert!(matches!(err, SearchFailure::Numeric { what: "gp-fit" }));
    }
}
