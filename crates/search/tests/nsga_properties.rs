//! Property tests for the NSGA-II building blocks: the fast
//! non-dominated sort against a brute-force O(n²) peeling oracle,
//! crowding-distance boundary retention, and seeded-repeat determinism
//! of whole searches — including the fronts they report.

use std::convert::Infallible;

use odin_search::{
    crowding_distance, dominates, fast_non_dominated_sort, Cell, CellEval, GridSpace, NsgaSearcher,
    Searcher, NUM_OBJECTIVES,
};
use proptest::prelude::*;

/// Quantized random evaluations: small integer objective levels make
/// ties and exact duplicates common, which is exactly where sorting and
/// crowding determinism can go wrong.
fn arb_eval() -> impl Strategy<Value = CellEval> {
    ((0u8..6, 0u8..6, 0u8..6), any::<bool>(), 0u8..4).prop_map(|((a, b, c), feasible, v)| {
        CellEval {
            objective: f64::from(a) + 0.1 * f64::from(b),
            objectives: [f64::from(a), f64::from(b), f64::from(c)],
            feasible,
            violation: if feasible { 0.0 } else { 1.0 + f64::from(v) },
        }
    })
}

/// The brute-force layering oracle: repeatedly peel off the set of
/// points not dominated by any other remaining point. Constrained
/// domination is a strict partial order, so every peel is non-empty.
fn brute_force_fronts(evals: &[CellEval]) -> Vec<Vec<usize>> {
    let mut remaining: Vec<usize> = (0..evals.len()).collect();
    let mut fronts = Vec::new();
    while !remaining.is_empty() {
        let front: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                !remaining
                    .iter()
                    .any(|&j| j != i && dominates(&evals[j], &evals[i]))
            })
            .collect();
        assert!(!front.is_empty(), "strict partial orders have minima");
        remaining.retain(|i| !front.contains(i));
        fronts.push(front);
    }
    fronts
}

/// A deterministic synthetic landscape with a real three-way trade-off:
/// energy pulls toward `opt`'s row, latency toward its column, wear
/// toward the origin, and feasibility cuts a diagonal wedge.
fn landscape(opt: Cell, budget: usize) -> impl FnMut(Cell) -> Result<CellEval, Infallible> {
    move |cell| {
        let dr = cell.row.abs_diff(opt.row) as f64;
        let dc = cell.col.abs_diff(opt.col) as f64;
        let energy = 1.0 + dr * dr + 0.5 * dc;
        let latency = 1.0 + dc * dc + 0.5 * dr;
        let wear = (cell.row + cell.col) as f64;
        let feasible = cell.row + cell.col <= budget;
        Ok(CellEval {
            objective: energy * latency,
            objectives: [energy, latency, wear],
            feasible,
            violation: if feasible {
                0.0
            } else {
                (cell.row + cell.col - budget) as f64
            },
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `fast_non_dominated_sort` must agree with the O(n²) peeling
    /// oracle exactly — same fronts, same ascending index order within
    /// each front — over random mixes of feasible, infeasible, tied,
    /// and duplicated evaluations.
    #[test]
    fn sort_matches_brute_force_peeling(
        evals in proptest::collection::vec(arb_eval(), 1..24),
    ) {
        let fast = fast_non_dominated_sort(&evals);
        let brute = brute_force_fronts(&evals);
        prop_assert_eq!(&fast, &brute);
        // The fronts partition every index exactly once.
        let mut seen: Vec<usize> = fast.iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..evals.len()).collect::<Vec<_>>());
    }

    /// Crowding distance must retain the boundary point of every
    /// objective at infinite distance (so environmental selection can
    /// never drop the extremes of a front), stay non-negative, and
    /// collapse to all-infinite for fronts of one or two members.
    #[test]
    fn crowding_distance_retains_boundaries(
        evals in proptest::collection::vec(arb_eval(), 1..16),
    ) {
        let front: Vec<usize> = (0..evals.len()).collect();
        let d = crowding_distance(&front, &evals);
        prop_assert_eq!(d.len(), front.len());
        for &v in &d {
            prop_assert!(v >= 0.0);
        }
        let m = front.len();
        if m <= 2 {
            for &v in &d {
                prop_assert!(v.is_infinite());
            }
            return Ok(());
        }
        for k in 0..NUM_OBJECTIVES {
            // The same (value, index) tie-break rule the implementation
            // sorts by: its first and last entries are the objective's
            // boundary holders.
            let mut by: Vec<usize> = (0..m).collect();
            by.sort_by(|&a, &b| {
                evals[a].objectives[k]
                    .total_cmp(&evals[b].objectives[k])
                    .then(a.cmp(&b))
            });
            prop_assert!(d[by[0]].is_infinite(), "objective {k} min not retained");
            prop_assert!(d[by[m - 1]].is_infinite(), "objective {k} max not retained");
        }
    }

    /// A seeded NSGA-II search repeated with identical inputs must
    /// reproduce the identical selection — probes, winner, and the full
    /// front — in both the evolutionary and the probe-all regimes; the
    /// reported front must contain only feasible, mutually
    /// non-dominated points in ascending row-major order.
    #[test]
    fn seeded_repeats_reproduce_identical_fronts(
        levels in 2usize..7,
        opt_r in 0usize..7,
        opt_c in 0usize..7,
        budget in 1usize..12,
        population in 2usize..40,
        generations in 0usize..8,
        seed in proptest::num::u64::ANY,
        start_r in 0usize..7,
        start_c in 0usize..7,
    ) {
        let space = GridSpace::new(levels);
        let opt = space.clamp(Cell::new(opt_r, opt_c));
        let start = Cell::new(start_r, start_c);
        let searcher = NsgaSearcher::new(population, generations, seed);
        let run = || {
            searcher
                .select(space, start, &mut landscape(opt, budget))
                .expect("infallible oracle")
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(&a, &b);
        prop_assert!(a.probes <= space.len(), "memoized probes exceed the grid");
        let front = a.front.expect("NSGA always reports a front");
        for (i, p) in front.points.iter().enumerate() {
            prop_assert!(p.eval.feasible, "infeasible front member {:?}", p.cell);
            if let Some(q) = front.points.get(i + 1) {
                prop_assert!(
                    space.index(p.cell) < space.index(q.cell),
                    "front not in ascending row-major order"
                );
            }
            for q in &front.points {
                prop_assert!(
                    !dominates(&p.eval, &q.eval) || p.cell == q.cell,
                    "front member dominates another"
                );
            }
        }
        prop_assert_eq!(a.best, front.knee_point().map(|p| p.cell));
    }
}
