//! Typed counters and fixed-bucket histograms.
//!
//! Both metric families live in fixed-size arrays indexed by the enums
//! below, so recording never allocates and snapshots are plain
//! element-wise arithmetic.

/// A monotonically increasing runtime counter.
///
/// Every counter the instrumented runtime bumps has a variant here;
/// the fixed set is what lets recorders store counts in a flat array
/// and merge shard deltas without any keying machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterId {
    /// Inference runs executed to completion.
    RunsExecuted,
    /// Scheduled inferences skipped (resilient campaigns record the
    /// failure instead of serving the run).
    RunsSkipped,
    /// Resource-bounded (±1-level hill-climb) searches launched.
    SearchesResourceBounded,
    /// Exhaustive full-grid searches launched (including confidence
    /// escalations).
    SearchesExhaustive,
    /// Bounded searches that found nothing feasible and re-ran
    /// exhaustively before pulling the reprogram trigger.
    SearchesEscalated,
    /// Candidate evaluations performed across all searches.
    SearchEvaluations,
    /// Evaluations answered entirely from the cache's full-result tier.
    CacheFullHits,
    /// Evaluations that recalled only the geometry term from tier 2.
    CacheGeometryHits,
    /// Evaluations computed from scratch.
    CacheMisses,
    /// Reprogramming passes (drift-triggered or ladder-driven).
    Reprograms,
    /// Wear-driven OU grid shrinks emitted by the degradation ladder.
    LadderGridShrunk,
    /// Layer remaps onto spare crossbar groups.
    LadderRemapped,
    /// Crossbar groups retired for endurance exhaustion.
    LadderOutOfService,
    /// Layers served degraded (η waived at the smallest OU).
    LadderDegradedServe,
    /// Reprogram passes refused by the backoff gate.
    LadderReprogramDeferred,
    /// Online policy updates (replay buffer drained into the MLP).
    PolicyUpdates,
    /// Mismatch examples pushed into the replay buffer.
    ExamplesBuffered,
    /// Checkpoint snapshots written by the campaign driver.
    CheckpointSaves,
    /// Bytes written across all checkpoint snapshots.
    CheckpointBytes,
    /// Engine rounds executed (one per bulk-synchronous barrier).
    EngineRounds,
    /// Speculative runs launched across all engine rounds.
    EngineSpeculated,
    /// Schedule slots committed by the engine.
    EngineCommitted,
    /// Speculative runs discarded at commit barriers.
    EngineDiscarded,
    /// Requests admitted into serving accounting (every request the
    /// serve engine took responsibility for).
    ServeAdmitted,
    /// Requests served at full quality.
    ServeServed,
    /// Requests served degraded (breaker open, or ladder bottom rung).
    ServeServedDegraded,
    /// Requests shed by admission control, backpressure, or deadline
    /// expiry (all typed shed reasons combined).
    ServeShed,
    /// Requests that terminated in a typed failure (retries exhausted,
    /// or a fatal error).
    ServeFailed,
    /// Retry attempts launched after transient serving failures.
    ServeRetries,
    /// Per-tenant circuit-breaker trips (closed → open transitions).
    ServeBreakerTrips,
    /// Requests that shared a fused matrix pass beyond its head (a
    /// batch of `k` adds `k − 1`).
    ServeFused,
    /// Tasks the work-stealing executor ran to completion.
    ExecTasks,
    /// Tasks a worker stole from another worker's deque.
    ExecSteals,
    /// Times an executor worker parked with no work anywhere.
    ExecParks,
    /// Layer decisions served by the INT8 quantized policy path.
    PolicyQuantRows,
    /// Layer decisions the quantization ambiguity guard routed back
    /// through the f64 reference path.
    PolicyQuantFallback,
    /// Inline re-executions the supervisor launched to recover failed
    /// or lost shard tasks (includes checkpoint-save retries).
    SupervisorRetries,
    /// Shard slots the supervisor recovered after their task panicked.
    SupervisorPanicsRecovered,
    /// Shard slots the supervisor recovered after the round watchdog
    /// expired.
    SupervisorTimeoutsRecovered,
    /// Shard slots quarantined after repeated strikes.
    SupervisorQuarantines,
    /// Poisoned commits rolled back to a valid checkpoint generation.
    SupervisorRollbacks,
    /// Commit-barrier poison-sentinel trips (non-finite state
    /// detected).
    SupervisorPoisonDetected,
    /// Checkpoint saves skipped after their bounded retry failed.
    SupervisorSnapshotSkips,
    /// Bayesian-optimization (GP surrogate) searches launched.
    SearchesBayesian,
    /// NSGA-II multi-objective searches launched.
    SearchesPareto,
    /// Non-empty Pareto fronts produced by NSGA-II searches.
    SearchParetoFronts,
    /// Total members across all produced Pareto fronts.
    SearchParetoFrontMembers,
}

impl CounterId {
    /// Number of counter variants (the metric array length).
    pub const COUNT: usize = 47;

    /// Every counter, in declaration order — the canonical iteration
    /// order for snapshots, summaries, and sinks.
    pub const ALL: [CounterId; CounterId::COUNT] = [
        CounterId::RunsExecuted,
        CounterId::RunsSkipped,
        CounterId::SearchesResourceBounded,
        CounterId::SearchesExhaustive,
        CounterId::SearchesEscalated,
        CounterId::SearchEvaluations,
        CounterId::CacheFullHits,
        CounterId::CacheGeometryHits,
        CounterId::CacheMisses,
        CounterId::Reprograms,
        CounterId::LadderGridShrunk,
        CounterId::LadderRemapped,
        CounterId::LadderOutOfService,
        CounterId::LadderDegradedServe,
        CounterId::LadderReprogramDeferred,
        CounterId::PolicyUpdates,
        CounterId::ExamplesBuffered,
        CounterId::CheckpointSaves,
        CounterId::CheckpointBytes,
        CounterId::EngineRounds,
        CounterId::EngineSpeculated,
        CounterId::EngineCommitted,
        CounterId::EngineDiscarded,
        CounterId::ServeAdmitted,
        CounterId::ServeServed,
        CounterId::ServeServedDegraded,
        CounterId::ServeShed,
        CounterId::ServeFailed,
        CounterId::ServeRetries,
        CounterId::ServeBreakerTrips,
        CounterId::ServeFused,
        CounterId::ExecTasks,
        CounterId::ExecSteals,
        CounterId::ExecParks,
        CounterId::PolicyQuantRows,
        CounterId::PolicyQuantFallback,
        CounterId::SupervisorRetries,
        CounterId::SupervisorPanicsRecovered,
        CounterId::SupervisorTimeoutsRecovered,
        CounterId::SupervisorQuarantines,
        CounterId::SupervisorRollbacks,
        CounterId::SupervisorPoisonDetected,
        CounterId::SupervisorSnapshotSkips,
        CounterId::SearchesBayesian,
        CounterId::SearchesPareto,
        CounterId::SearchParetoFronts,
        CounterId::SearchParetoFrontMembers,
    ];

    /// The flat-array slot of this counter.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used by every sink and summary.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            CounterId::RunsExecuted => "runs_executed",
            CounterId::RunsSkipped => "runs_skipped",
            CounterId::SearchesResourceBounded => "searches_resource_bounded",
            CounterId::SearchesExhaustive => "searches_exhaustive",
            CounterId::SearchesEscalated => "searches_escalated",
            CounterId::SearchEvaluations => "search_evaluations",
            CounterId::CacheFullHits => "cache_full_hits",
            CounterId::CacheGeometryHits => "cache_geometry_hits",
            CounterId::CacheMisses => "cache_misses",
            CounterId::Reprograms => "reprograms",
            CounterId::LadderGridShrunk => "ladder_grid_shrunk",
            CounterId::LadderRemapped => "ladder_remapped",
            CounterId::LadderOutOfService => "ladder_out_of_service",
            CounterId::LadderDegradedServe => "ladder_degraded_serve",
            CounterId::LadderReprogramDeferred => "ladder_reprogram_deferred",
            CounterId::PolicyUpdates => "policy_updates",
            CounterId::ExamplesBuffered => "examples_buffered",
            CounterId::CheckpointSaves => "checkpoint_saves",
            CounterId::CheckpointBytes => "checkpoint_bytes",
            CounterId::EngineRounds => "engine_rounds",
            CounterId::EngineSpeculated => "engine_speculated",
            CounterId::EngineCommitted => "engine_committed",
            CounterId::EngineDiscarded => "engine_discarded",
            CounterId::ServeAdmitted => "serve_admitted",
            CounterId::ServeServed => "serve_served",
            CounterId::ServeServedDegraded => "serve_served_degraded",
            CounterId::ServeShed => "serve_shed",
            CounterId::ServeFailed => "serve_failed",
            CounterId::ServeRetries => "serve_retries",
            CounterId::ServeBreakerTrips => "serve_breaker_trips",
            CounterId::ServeFused => "serve_fused",
            CounterId::ExecTasks => "exec_tasks",
            CounterId::ExecSteals => "exec_steal",
            CounterId::ExecParks => "exec_park",
            CounterId::PolicyQuantRows => "policy_quant_rows",
            CounterId::PolicyQuantFallback => "policy_quant_fallback",
            CounterId::SupervisorRetries => "supervisor_retries",
            CounterId::SupervisorPanicsRecovered => "supervisor_panics_recovered",
            CounterId::SupervisorTimeoutsRecovered => "supervisor_timeouts_recovered",
            CounterId::SupervisorQuarantines => "supervisor_quarantines",
            CounterId::SupervisorRollbacks => "supervisor_rollbacks",
            CounterId::SupervisorPoisonDetected => "supervisor_poison_detected",
            CounterId::SupervisorSnapshotSkips => "supervisor_snapshot_skips",
            CounterId::SearchesBayesian => "searches_bayesian",
            CounterId::SearchesPareto => "searches_pareto",
            CounterId::SearchParetoFronts => "search_pareto_fronts",
            CounterId::SearchParetoFrontMembers => "search_pareto_front_members",
        }
    }
}

/// Maximum bucket count of any histogram: the longest edge table plus
/// one overflow bucket. Histograms with fewer edges leave their tail
/// buckets permanently zero.
pub const MAX_BUCKETS: usize = 9;

/// A fixed-bucket distribution tracked by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistogramId {
    /// Candidate evaluations per search (§V.B comparator overhead:
    /// RB ≈ 4K+1 vs EX = 36).
    SearchEvaluations,
    /// Normalized ΔG feasibility margin at decision time:
    /// `(η − impact) / η`, clamped to `[0, 1]` — how much non-ideality
    /// headroom the chosen OU left.
    MarginFraction,
    /// Checkpoint snapshot size in KiB.
    CheckpointKib,
    /// Checkpoint write latency in microseconds (serialize + fsync +
    /// rename).
    CheckpointLatencyUs,
    /// Wall-clock latency of one inference run in microseconds.
    RunLatencyUs,
    /// End-to-end response latency of one served request in virtual
    /// milliseconds (queueing + retries + service).
    ServeLatencyMs,
    /// Tenant queue depth sampled at every admission decision.
    ServeQueueDepth,
    /// Time an engine spent blocked at one executor commit barrier, in
    /// microseconds.
    ExecBarrierWaitUs,
    /// Fraction of a decide-all batch the quantization guard routed to
    /// the f64 fallback (one observation per INT8 batch).
    QuantFallbackFraction,
}

impl HistogramId {
    /// Number of histogram variants (the metric array length).
    pub const COUNT: usize = 9;

    /// Every histogram, in declaration order.
    pub const ALL: [HistogramId; HistogramId::COUNT] = [
        HistogramId::SearchEvaluations,
        HistogramId::MarginFraction,
        HistogramId::CheckpointKib,
        HistogramId::CheckpointLatencyUs,
        HistogramId::RunLatencyUs,
        HistogramId::ServeLatencyMs,
        HistogramId::ServeQueueDepth,
        HistogramId::ExecBarrierWaitUs,
        HistogramId::QuantFallbackFraction,
    ];

    /// The flat-array slot of this histogram.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used by every sink and summary.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            HistogramId::SearchEvaluations => "search_evaluations",
            HistogramId::MarginFraction => "margin_fraction",
            HistogramId::CheckpointKib => "checkpoint_kib",
            HistogramId::CheckpointLatencyUs => "checkpoint_latency_us",
            HistogramId::RunLatencyUs => "run_latency_us",
            HistogramId::ServeLatencyMs => "serve_latency_ms",
            HistogramId::ServeQueueDepth => "serve_queue_depth",
            HistogramId::ExecBarrierWaitUs => "exec_barrier_wait_us",
            HistogramId::QuantFallbackFraction => "policy_quant_fallback_fraction",
        }
    }

    /// Inclusive upper bucket edges (`value <= edge`); values above the
    /// last edge land in the overflow bucket. At most
    /// [`MAX_BUCKETS`]` - 1` edges.
    #[must_use]
    pub const fn edges(self) -> &'static [f64] {
        match self {
            // Seed-only degraded decisions (1), RB at K=3 (≤13), EX
            // (36), and escalated RB+EX (≤49).
            HistogramId::SearchEvaluations => &[1.0, 5.0, 9.0, 13.0, 21.0, 36.0, 49.0],
            HistogramId::MarginFraction => &[0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99],
            HistogramId::CheckpointKib => &[4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0],
            HistogramId::CheckpointLatencyUs => &[100.0, 300.0, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5],
            HistogramId::RunLatencyUs => &[30.0, 100.0, 300.0, 1e3, 3e3, 1e4, 3e4, 1e5],
            HistogramId::ServeLatencyMs => &[1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1e3, 3e3],
            HistogramId::ServeQueueDepth => &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            HistogramId::ExecBarrierWaitUs => &[10.0, 30.0, 100.0, 300.0, 1e3, 3e3, 1e4, 1e5],
            HistogramId::QuantFallbackFraction => &[0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0],
        }
    }
}

/// Aggregated state of one fixed-bucket histogram: per-bucket counts
/// (the last used bucket is the overflow), the observation count, and
/// the running sum. Deltas subtract element-wise, merges add — the
/// same `since`/`merged` algebra the runtime's cache counters use.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Histogram {
    /// Observations per bucket; bucket `i` counts values `<= edges[i]`
    /// that missed every earlier bucket, and bucket `edges.len()` is
    /// the overflow. Slots past the overflow stay zero.
    pub buckets: [u64; MAX_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl Histogram {
    /// Records one observation against the given edge table.
    pub fn observe(&mut self, edges: &'static [f64], value: f64) {
        let slot = edges
            .iter()
            .position(|&edge| value <= edge)
            .unwrap_or(edges.len());
        self.buckets[slot] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Mean of the observed values; `0.0` before the first observation.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// Increments accumulated since `baseline` (an earlier snapshot of
    /// the same monotonically-growing histogram).
    #[must_use]
    pub fn since(&self, baseline: &Histogram) -> Histogram {
        let mut buckets = [0u64; MAX_BUCKETS];
        for (slot, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[slot] - baseline.buckets[slot];
        }
        Histogram {
            buckets,
            count: self.count - baseline.count,
            sum: self.sum - baseline.sum,
        }
    }

    /// Element-wise sum (merging per-shard deltas).
    #[must_use]
    pub fn merged(&self, other: &Histogram) -> Histogram {
        let mut buckets = [0u64; MAX_BUCKETS];
        for (slot, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[slot] + other.buckets[slot];
        }
        Histogram {
            buckets,
            count: self.count + other.count,
            sum: self.sum + other.sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_table_is_consistent() {
        assert_eq!(CounterId::ALL.len(), CounterId::COUNT);
        let mut names: Vec<&str> = CounterId::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CounterId::COUNT, "duplicate counter name");
        for (slot, c) in CounterId::ALL.iter().enumerate() {
            assert_eq!(c.index(), slot, "{} out of order", c.name());
        }
    }

    #[test]
    fn histogram_table_is_consistent() {
        assert_eq!(HistogramId::ALL.len(), HistogramId::COUNT);
        for (slot, h) in HistogramId::ALL.iter().enumerate() {
            assert_eq!(h.index(), slot);
            assert!(!h.edges().is_empty());
            assert!(
                h.edges().len() < MAX_BUCKETS,
                "{} needs an overflow",
                h.name()
            );
            assert!(
                h.edges().windows(2).all(|w| w[0] < w[1]),
                "{} edges not strictly increasing",
                h.name()
            );
        }
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let edges = HistogramId::SearchEvaluations.edges();
        let mut h = Histogram::default();
        h.observe(edges, 1.0); // first bucket (<= 1)
        h.observe(edges, 13.0); // <= 13
        h.observe(edges, 1000.0); // overflow
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[edges.len()], 1);
        assert!((h.mean() - (1014.0 / 3.0)).abs() < 1e-12);
        assert_eq!(Histogram::default().mean(), 0.0);
    }

    #[test]
    fn histogram_delta_algebra_round_trips() {
        let edges = HistogramId::MarginFraction.edges();
        let mut base = Histogram::default();
        base.observe(edges, 0.3);
        let mut grown = base;
        grown.observe(edges, 0.95);
        grown.observe(edges, 2.0);
        let delta = grown.since(&base);
        assert_eq!(delta.count, 2);
        let merged = base.merged(&delta);
        assert_eq!(merged.buckets, grown.buckets);
        assert_eq!(merged.count, grown.count);
        assert!((merged.sum - grown.sum).abs() < 1e-12);
    }
}
