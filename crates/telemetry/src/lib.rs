//! **odin-telemetry**: zero-overhead tracing, metrics, and profiling
//! for the Odin runtime.
//!
//! The crate provides one handle — [`Telemetry`] — behind which live:
//!
//! - **Spans** ([`SpanId`], [`SpanToken`]): monotonic-clock-timed
//!   scopes forming the campaign ⊃ round ⊃ run ⊃ decide ⊃ search
//!   hierarchy by wall-clock containment.
//! - **Counters** ([`CounterId`]): typed, fixed-set counters for
//!   search launches, cache hits by tier, reprograms, ladder
//!   transitions, checkpoint bytes, and engine commit outcomes.
//! - **Histograms** ([`HistogramId`], [`Histogram`]): fixed-bucket
//!   distributions (search evaluations, ΔG feasibility margin,
//!   checkpoint size/latency, run latency).
//! - **An event ring** ([`EventRing`]): a bounded, preallocated,
//!   overwrite-oldest buffer of completed spans.
//! - **Sinks** ([`TelemetrySink`]): [`MemorySink`] for tests,
//!   [`JsonLinesSink`] for log pipelines, and [`ChromeTraceSink`]
//!   emitting the Chrome `trace_event` format Perfetto loads directly.
//!
//! # The zero-overhead contract
//!
//! [`Telemetry::disabled`] is a `const` no-op handle: every recording
//! method inlines to an early return without touching the clock, and
//! the handle itself holds no allocation. An *enabled* handle
//! preallocates everything up front (fixed metric arrays, a
//! full-capacity ring), so even with telemetry on the recording path
//! performs no allocation — the property the workspace's
//! allocation-counter test pins down.
//!
//! # Shard semantics
//!
//! [`Telemetry::fork`] and the
//! [`take_events`](Telemetry::take_events) /
//! [`prepend_events`](Telemetry::prepend_events) splice mirror the
//! runtime evaluation cache's fork/commit discipline, and
//! [`TelemetrySnapshot`] carries the same `since`/`merged` delta
//! algebra — so per-shard recorders merge deterministically at commit
//! barriers and campaign totals reconcile exactly with the runtime's
//! own cache/engine counters at any shard count.
//!
//! The crate depends on nothing but `std` and contains no `unsafe`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod handle;
mod metrics;
mod ring;
mod sink;
mod snapshot;
mod span;

pub use handle::{Telemetry, TelemetryConfig};
pub use metrics::{CounterId, Histogram, HistogramId, MAX_BUCKETS};
pub use ring::EventRing;
pub use sink::{ChromeTraceSink, JsonLinesSink, MemorySink, TelemetrySink};
pub use snapshot::TelemetrySnapshot;
pub use span::{Event, SpanId, SpanStat, SpanToken};
