//! Point-in-time aggregates with `since`/`merged` delta algebra.

use crate::metrics::{CounterId, Histogram, HistogramId};
use crate::span::{SpanId, SpanStat};

/// A copy of every counter, span aggregate, and histogram at one
/// instant.
///
/// Snapshots obey the same algebra as the runtime's cache counters:
/// [`since`](TelemetrySnapshot::since) subtracts an earlier baseline of
/// the same monotonically-growing recorder, and
/// [`merged`](TelemetrySnapshot::merged) folds per-shard deltas — which
/// is how campaign summaries stay exact across forked shard recorders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySnapshot {
    /// Whether the handle that produced this snapshot was recording.
    pub enabled: bool,
    counters: [u64; CounterId::COUNT],
    spans: [SpanStat; SpanId::COUNT],
    histograms: [Histogram; HistogramId::COUNT],
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot {
            enabled: false,
            counters: [0; CounterId::COUNT],
            spans: [SpanStat::default(); SpanId::COUNT],
            histograms: [Histogram::default(); HistogramId::COUNT],
        }
    }
}

impl TelemetrySnapshot {
    pub(crate) fn new(
        enabled: bool,
        counters: [u64; CounterId::COUNT],
        spans: [SpanStat; SpanId::COUNT],
        histograms: [Histogram; HistogramId::COUNT],
    ) -> Self {
        TelemetrySnapshot {
            enabled,
            counters,
            spans,
            histograms,
        }
    }

    /// The value of one counter.
    #[must_use]
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.index()]
    }

    /// The aggregate of one span kind.
    #[must_use]
    pub fn span(&self, id: SpanId) -> SpanStat {
        self.spans[id.index()]
    }

    /// One histogram's aggregated state.
    #[must_use]
    pub fn histogram(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.index()]
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0) && self.spans.iter().all(|s| s.count == 0)
    }

    /// Increments accumulated since `baseline` (a snapshot taken
    /// earlier from the same recorder, or from a recorder this one was
    /// forked from — forks carry aggregates monotonically).
    #[must_use]
    pub fn since(&self, baseline: &TelemetrySnapshot) -> TelemetrySnapshot {
        let mut out = *self;
        for id in CounterId::ALL {
            out.counters[id.index()] -= baseline.counters[id.index()];
        }
        for id in SpanId::ALL {
            out.spans[id.index()] = self.spans[id.index()].since(baseline.spans[id.index()]);
        }
        for id in HistogramId::ALL {
            out.histograms[id.index()] =
                self.histograms[id.index()].since(&baseline.histograms[id.index()]);
        }
        out
    }

    /// Component-wise sum of two deltas (merging per-shard recorders).
    #[must_use]
    pub fn merged(&self, other: &TelemetrySnapshot) -> TelemetrySnapshot {
        let mut out = *self;
        out.enabled = self.enabled || other.enabled;
        for id in CounterId::ALL {
            out.counters[id.index()] += other.counters[id.index()];
        }
        for id in SpanId::ALL {
            out.spans[id.index()] = self.spans[id.index()].merged(other.spans[id.index()]);
        }
        for id in HistogramId::ALL {
            out.histograms[id.index()] =
                self.histograms[id.index()].merged(&other.histograms[id.index()]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn snapshot_delta_algebra_round_trips() {
        let t = Telemetry::enabled();
        t.incr(CounterId::RunsExecuted);
        t.observe(HistogramId::MarginFraction, 0.4);
        let base = t.snapshot();
        t.add(CounterId::SearchEvaluations, 13);
        t.observe(HistogramId::MarginFraction, 0.8);
        let now = t.snapshot();
        let delta = now.since(&base);
        assert_eq!(delta.counter(CounterId::RunsExecuted), 0);
        assert_eq!(delta.counter(CounterId::SearchEvaluations), 13);
        assert_eq!(delta.histogram(HistogramId::MarginFraction).count, 1);
        let merged = base.merged(&delta);
        for id in CounterId::ALL {
            assert_eq!(merged.counter(id), now.counter(id));
        }
        for id in HistogramId::ALL {
            assert_eq!(merged.histogram(id).count, now.histogram(id).count);
        }
        assert!(!delta.is_empty());
        assert!(TelemetrySnapshot::default().is_empty());
    }
}
