//! Pluggable event sinks: in-memory, JSON-lines, and Chrome
//! `trace_event` format.
//!
//! All JSON is emitted by hand — the crate carries no dependencies —
//! and only from fixed-format numeric fields and `&'static str` names,
//! so no escaping is ever required.

use std::io::{self, Write};

use crate::span::Event;

/// A destination for drained telemetry events.
///
/// [`Telemetry::flush_to`](crate::Telemetry::flush_to) calls
/// [`begin`](TelemetrySink::begin) once, then
/// [`event`](TelemetrySink::event) per ring entry oldest → newest,
/// then [`finish`](TelemetrySink::finish) once.
pub trait TelemetrySink {
    /// Called once before the first event (headers, opening brackets).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying writer.
    fn begin(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Called once per event, oldest first.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying writer.
    fn event(&mut self, event: &Event) -> io::Result<()>;

    /// Called once after the last event (footers, closing brackets).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying writer.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Collects events into a `Vec` — the test sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Everything flushed so far, oldest first.
    pub events: Vec<Event>,
}

impl TelemetrySink for MemorySink {
    fn event(&mut self, event: &Event) -> io::Result<()> {
        self.events.push(*event);
        Ok(())
    }
}

/// Writes one JSON object per line:
/// `{"span":"search","ts_ns":1200,"dur_ns":340,"arg":13}`.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonLinesSink<W> {
    /// A sink writing JSON lines to `writer`.
    pub fn new(writer: W) -> Self {
        JsonLinesSink { writer }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TelemetrySink for JsonLinesSink<W> {
    fn event(&mut self, event: &Event) -> io::Result<()> {
        writeln!(
            self.writer,
            "{{\"span\":\"{}\",\"ts_ns\":{},\"dur_ns\":{},\"arg\":{}}}",
            event.span.name(),
            event.ts_ns,
            event.dur_ns,
            event.arg
        )
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Writes the Chrome `trace_event` JSON format: a single
/// `{"traceEvents":[...]}` object of complete (`"ph":"X"`) events,
/// loadable in `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
///
/// Timestamps and durations are microseconds (the format's unit),
/// written with nanosecond precision as fractional values.
#[derive(Debug)]
pub struct ChromeTraceSink<W: Write> {
    writer: W,
    first: bool,
}

impl<W: Write> ChromeTraceSink<W> {
    /// A sink writing one Chrome trace to `writer`.
    pub fn new(writer: W) -> Self {
        ChromeTraceSink {
            writer,
            first: true,
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TelemetrySink for ChromeTraceSink<W> {
    fn begin(&mut self) -> io::Result<()> {
        self.first = true;
        write!(
            self.writer,
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
        )
    }

    fn event(&mut self, event: &Event) -> io::Result<()> {
        let sep = if self.first { "" } else { "," };
        self.first = false;
        write!(
            self.writer,
            "{sep}\n{{\"name\":\"{}\",\"cat\":\"odin\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":1,\"args\":{{\"arg\":{}}}}}",
            event.span.name(),
            event.ts_ns as f64 / 1e3,
            event.dur_ns as f64 / 1e3,
            event.arg
        )
    }

    fn finish(&mut self) -> io::Result<()> {
        writeln!(self.writer, "\n]}}")?;
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    fn events() -> [Event; 2] {
        [
            Event {
                ts_ns: 1_500,
                dur_ns: 250,
                span: SpanId::Search,
                arg: 13,
            },
            Event {
                ts_ns: 2_000,
                dur_ns: 4_000,
                span: SpanId::Run,
                arg: 0,
            },
        ]
    }

    fn flush(sink: &mut impl TelemetrySink) {
        sink.begin().unwrap();
        for e in &events() {
            sink.event(e).unwrap();
        }
        sink.finish().unwrap();
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut sink = MemorySink::default();
        flush(&mut sink);
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].span, SpanId::Search);
    }

    #[test]
    fn json_lines_format() {
        let mut sink = JsonLinesSink::new(Vec::new());
        flush(&mut sink);
        let out = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"span\":\"search\",\"ts_ns\":1500,\"dur_ns\":250,\"arg\":13}"
        );
    }

    #[test]
    fn chrome_trace_format_is_well_formed() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        flush(&mut sink);
        let out = String::from_utf8(sink.into_inner()).unwrap();
        assert!(out.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(out.trim_end().ends_with("]}"));
        assert!(out.contains("\"name\":\"search\""));
        assert!(out.contains("\"ts\":1.500"));
        assert!(out.contains("\"dur\":4.000"));
        assert_eq!(out.matches("\"ph\":\"X\"").count(), 2);
        // Exactly one separating comma between the two events.
        assert_eq!(out.matches(",\n{").count(), 1);
    }

    #[test]
    fn empty_chrome_trace_is_still_valid() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.begin().unwrap();
        sink.finish().unwrap();
        let out = String::from_utf8(sink.into_inner()).unwrap();
        assert!(out.contains("\"traceEvents\":[\n]}"));
    }
}
