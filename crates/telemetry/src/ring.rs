//! The bounded event ring buffer.
//!
//! Storage is allocated once, in full, when telemetry is enabled;
//! pushing an event into a full ring overwrites the oldest entry (and
//! counts it as dropped) instead of growing, which is what keeps the
//! instrumented hot path allocation-free.

use crate::span::Event;

/// A fixed-capacity overwrite-oldest ring of [`Event`]s.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<Event>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events. The full backing
    /// store is allocated here; a capacity of zero records nothing.
    #[must_use]
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest when full.
    pub fn push(&mut self, event: Event) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no event is held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted (or refused by a zero-capacity ring) so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Removes and returns every event, oldest → newest. The backing
    /// allocation is retained.
    pub fn drain_ordered(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend(self.iter().copied());
        self.buf.clear();
        self.head = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    fn event(ts: u64) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: 1,
            span: SpanId::Run,
            arg: 0,
        }
    }

    #[test]
    fn ring_preserves_order_and_overwrites_oldest() {
        let mut ring = EventRing::new(3);
        assert!(ring.is_empty());
        for ts in 0..5 {
            ring.push(event(ts));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.dropped(), 2);
        let order: Vec<u64> = ring.iter().map(|e| e.ts_ns).collect();
        assert_eq!(order, vec![2, 3, 4]);
        let drained = ring.drain_ordered();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].ts_ns, 2);
        assert!(ring.is_empty());
        // Refilling after a drain starts clean.
        ring.push(event(9));
        assert_eq!(ring.iter().next().unwrap().ts_ns, 9);
    }

    #[test]
    fn zero_capacity_ring_counts_refusals() {
        let mut ring = EventRing::new(0);
        ring.push(event(1));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }
}
