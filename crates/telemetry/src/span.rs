//! Hierarchical, monotonic-clock-timed spans.
//!
//! A span is opened by taking a [`SpanToken`] from
//! [`Telemetry::start`](crate::Telemetry::start) and closed by handing
//! it back to [`Telemetry::finish`](crate::Telemetry::finish) with the
//! [`SpanId`] naming what was measured. Tokens are `Copy` timestamps
//! rather than RAII guards, so span boundaries can straddle `&mut self`
//! runtime calls without borrow gymnastics; nesting is expressed purely
//! by wall-clock containment (campaign ⊃ round ⊃ run ⊃ decide ⊃
//! search), which is exactly what the Chrome trace viewer reconstructs
//! a flamegraph from.

use std::time::Instant;

/// The span taxonomy: one variant per instrumented scope of the
/// runtime. The fixed set lets recorders aggregate span statistics in
/// a flat array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanId {
    /// A whole campaign over a time schedule.
    Campaign,
    /// One engine round (fork, speculate, commit barrier).
    Round,
    /// One inference run (Algorithm 1 lines 3–13).
    Run,
    /// Deciding every layer at one age (batched predict + per-layer
    /// searches).
    Decide,
    /// One OU search for one layer (RB hill-climb or EX sweep,
    /// including an escalated re-search).
    Search,
    /// A ladder descent: reprogram pass, remap retries, backoff.
    Reprogram,
    /// Draining the replay buffer into an online policy update.
    PolicyUpdate,
    /// Writing one checkpoint snapshot (serialize + fsync + rename).
    Checkpoint,
}

impl SpanId {
    /// Number of span variants (the aggregate array length).
    pub const COUNT: usize = 8;

    /// Every span, in declaration order.
    pub const ALL: [SpanId; SpanId::COUNT] = [
        SpanId::Campaign,
        SpanId::Round,
        SpanId::Run,
        SpanId::Decide,
        SpanId::Search,
        SpanId::Reprogram,
        SpanId::PolicyUpdate,
        SpanId::Checkpoint,
    ];

    /// The flat-array slot of this span.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used by every sink and summary.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            SpanId::Campaign => "campaign",
            SpanId::Round => "round",
            SpanId::Run => "run",
            SpanId::Decide => "decide",
            SpanId::Search => "search",
            SpanId::Reprogram => "reprogram",
            SpanId::PolicyUpdate => "policy_update",
            SpanId::Checkpoint => "checkpoint",
        }
    }
}

/// Aggregate timing of one span kind.
///
/// `count` and `total_ns` subtract cleanly in
/// [`since`](SpanStat::since) deltas; `max_ns` is a lifetime maximum
/// and is carried through unchanged (a delta's maximum is bounded
/// above by it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed spans of this kind.
    pub count: u64,
    /// Summed duration in nanoseconds.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    /// Records one completed span.
    pub fn record(&mut self, dur_ns: u64) {
        self.count += 1;
        self.total_ns += dur_ns;
        self.max_ns = self.max_ns.max(dur_ns);
    }

    /// Increments accumulated since `baseline`.
    #[must_use]
    pub fn since(&self, baseline: SpanStat) -> SpanStat {
        SpanStat {
            count: self.count - baseline.count,
            total_ns: self.total_ns - baseline.total_ns,
            max_ns: self.max_ns,
        }
    }

    /// Component-wise merge of two deltas (maxima combine with `max`).
    #[must_use]
    pub fn merged(&self, other: SpanStat) -> SpanStat {
        SpanStat {
            count: self.count + other.count,
            total_ns: self.total_ns + other.total_ns,
            max_ns: self.max_ns.max(other.max_ns),
        }
    }

    /// Mean span duration in nanoseconds; `0` before the first span.
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        self.total_ns / self.count
    }
}

/// An open-span timestamp returned by
/// [`Telemetry::start`](crate::Telemetry::start).
///
/// On a disabled handle the token is inert (no clock was read); on an
/// enabled one it captures the monotonic start instant. Dropping a
/// token without finishing it records nothing.
#[derive(Debug, Clone, Copy)]
pub struct SpanToken(pub(crate) Option<Instant>);

impl SpanToken {
    /// The inert token a disabled handle returns.
    pub(crate) const INERT: SpanToken = SpanToken(None);
}

/// One completed span in the bounded event ring: timestamps are
/// nanoseconds relative to the recorder's epoch (set when telemetry
/// was enabled and inherited by every fork, so all shards share one
/// timeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Span start, nanoseconds since the telemetry epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// What was measured.
    pub span: SpanId,
    /// A span-specific payload (e.g. evaluations for a search, bytes
    /// for a checkpoint); `0` when the span carries none.
    pub arg: i64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_table_is_consistent() {
        assert_eq!(SpanId::ALL.len(), SpanId::COUNT);
        for (slot, s) in SpanId::ALL.iter().enumerate() {
            assert_eq!(s.index(), slot, "{} out of order", s.name());
        }
    }

    #[test]
    fn span_stat_algebra() {
        let mut a = SpanStat::default();
        a.record(10);
        a.record(30);
        assert_eq!(a.count, 2);
        assert_eq!(a.total_ns, 40);
        assert_eq!(a.max_ns, 30);
        assert_eq!(a.mean_ns(), 20);
        let mut b = a;
        b.record(100);
        let d = b.since(a);
        assert_eq!(d.count, 1);
        assert_eq!(d.total_ns, 100);
        assert_eq!(a.merged(d).count, b.count);
        assert_eq!(a.merged(d).total_ns, b.total_ns);
        assert_eq!(a.merged(d).max_ns, 100);
        assert_eq!(SpanStat::default().mean_ns(), 0);
    }
}
