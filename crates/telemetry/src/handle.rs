//! The [`Telemetry`] handle — the one object instrumented code talks
//! to.

use std::cell::RefCell;
use std::io;
use std::time::Instant;

use crate::metrics::{CounterId, Histogram, HistogramId};
use crate::ring::EventRing;
use crate::sink::TelemetrySink;
use crate::snapshot::TelemetrySnapshot;
use crate::span::{Event, SpanId, SpanStat, SpanToken};

/// Tuning knobs for an enabled recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Maximum events held in the ring buffer; the full backing store
    /// is allocated up front, and a full ring overwrites its oldest
    /// entry. Zero disables event capture while keeping counters,
    /// spans, and histograms live.
    pub event_capacity: usize,
}

impl TelemetryConfig {
    /// Default ring capacity (16 Ki events ≈ 512 KiB).
    pub const DEFAULT_EVENT_CAPACITY: usize = 16 * 1024;
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            event_capacity: Self::DEFAULT_EVENT_CAPACITY,
        }
    }
}

/// Everything an enabled handle records into. Interior-mutable behind
/// [`RefCell`] (recording goes through `&self` so immutable runtime
/// borrows can instrument themselves); owned by one runtime, never
/// shared across threads — campaign shards each fork their own.
#[derive(Debug, Clone)]
struct Recorder {
    /// The shared time origin: set when telemetry was first enabled and
    /// inherited by every fork/clone, so all shard timestamps live on
    /// one comparable timeline.
    epoch: Instant,
    counters: [u64; CounterId::COUNT],
    spans: [SpanStat; SpanId::COUNT],
    histograms: [Histogram; HistogramId::COUNT],
    ring: EventRing,
}

impl Recorder {
    fn new(config: TelemetryConfig) -> Recorder {
        Recorder {
            epoch: Instant::now(),
            counters: [0; CounterId::COUNT],
            spans: [SpanStat::default(); SpanId::COUNT],
            histograms: [Histogram::default(); HistogramId::COUNT],
            ring: EventRing::new(config.event_capacity),
        }
    }
}

/// The telemetry handle instrumented code records through.
///
/// The default state is **disabled**: a `None` recorder, constructible
/// in `const` context, whose every recording method is an inlined
/// early-return — no clock reads, no allocation, nothing for the
/// optimizer to keep. An enabled handle owns a [`Recorder`] with
/// fixed-size metric arrays and a preallocated event ring, so the
/// recording hot path allocates nothing either.
///
/// Shard semantics mirror the runtime's evaluation cache:
/// [`fork`](Telemetry::fork) hands a shard a recorder whose aggregates
/// continue from the parent's (monotonic counters survive commit
/// adoption) but whose event ring starts empty; at a commit barrier
/// the adopting side splices rings back together with
/// [`take_events`](Telemetry::take_events) /
/// [`prepend_events`](Telemetry::prepend_events).
///
/// # Examples
///
/// ```
/// use odin_telemetry::{CounterId, SpanId, Telemetry};
///
/// let telemetry = Telemetry::enabled();
/// let token = telemetry.start();
/// telemetry.incr(CounterId::RunsExecuted);
/// telemetry.finish(SpanId::Run, token);
/// let snap = telemetry.snapshot();
/// assert_eq!(snap.counter(CounterId::RunsExecuted), 1);
/// assert_eq!(snap.span(SpanId::Run).count, 1);
///
/// // The disabled default records nothing.
/// let off = Telemetry::disabled();
/// off.incr(CounterId::RunsExecuted);
/// assert!(off.snapshot().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Box<RefCell<Recorder>>>,
}

impl Telemetry {
    /// The no-op handle: records nothing, reads no clock, allocates
    /// nothing. This is the default every runtime starts with.
    #[must_use]
    pub const fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// An enabled handle with default configuration.
    #[must_use]
    pub fn enabled() -> Telemetry {
        Telemetry::with_config(TelemetryConfig::default())
    }

    /// An enabled handle with an explicit configuration.
    #[must_use]
    pub fn with_config(config: TelemetryConfig) -> Telemetry {
        Telemetry {
            inner: Some(Box::new(RefCell::new(Recorder::new(config)))),
        }
    }

    /// `true` when this handle is recording.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increments a counter by one.
    #[inline]
    pub fn incr(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Increments a counter by `n`.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().counters[id.index()] += n;
        }
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&self, id: HistogramId, value: f64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().histograms[id.index()].observe(id.edges(), value);
        }
    }

    /// Opens a span: captures the monotonic clock on an enabled handle,
    /// returns an inert token on a disabled one. Pass the token to
    /// [`finish`](Telemetry::finish) to record the span; dropping it
    /// records nothing.
    #[inline]
    #[must_use]
    pub fn start(&self) -> SpanToken {
        if self.inner.is_some() {
            SpanToken(Some(Instant::now()))
        } else {
            SpanToken::INERT
        }
    }

    /// Closes a span opened by [`start`](Telemetry::start), returning
    /// the measured duration in nanoseconds (zero on a disabled handle
    /// or inert token).
    #[inline]
    pub fn finish(&self, id: SpanId, token: SpanToken) -> u64 {
        self.finish_with(id, token, 0)
    }

    /// Closes a span with a payload value (evaluations, bytes, …)
    /// carried into the event ring. Returns the measured duration in
    /// nanoseconds (zero on a disabled handle or inert token), handy
    /// for feeding a latency histogram without a second clock read.
    #[inline]
    pub fn finish_with(&self, id: SpanId, token: SpanToken, arg: i64) -> u64 {
        let (Some(inner), Some(start)) = (&self.inner, token.0) else {
            return 0;
        };
        let now = Instant::now();
        let mut rec = inner.borrow_mut();
        let dur_ns = now.duration_since(start).as_nanos() as u64;
        let ts_ns = start.duration_since(rec.epoch).as_nanos() as u64;
        rec.spans[id.index()].record(dur_ns);
        rec.ring.push(Event {
            ts_ns,
            dur_ns,
            span: id,
            arg,
        });
        dur_ns
    }

    /// A copy of every counter, span aggregate, and histogram.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        match &self.inner {
            Some(inner) => {
                let rec = inner.borrow();
                TelemetrySnapshot::new(true, rec.counters, rec.spans, rec.histograms)
            }
            None => TelemetrySnapshot::default(),
        }
    }

    /// A recorder for a campaign shard: counters, span aggregates, and
    /// histograms carry over (so the committed shard's totals keep
    /// growing monotonically, exactly like the evaluation cache's
    /// counters), the event ring starts empty, and the epoch is shared
    /// so shard timestamps stay on the parent's timeline. A disabled
    /// handle forks disabled.
    #[must_use]
    pub fn fork(&self) -> Telemetry {
        match &self.inner {
            Some(inner) => {
                let rec = inner.borrow();
                Telemetry {
                    inner: Some(Box::new(RefCell::new(Recorder {
                        epoch: rec.epoch,
                        counters: rec.counters,
                        spans: rec.spans,
                        histograms: rec.histograms,
                        ring: EventRing::new(rec.ring.capacity()),
                    }))),
                }
            }
            None => Telemetry::disabled(),
        }
    }

    /// Events currently held in the ring, oldest first (the ring is
    /// left intact).
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.borrow().ring.iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Drains the ring, returning its events oldest first.
    #[must_use]
    pub fn take_events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.borrow_mut().ring.drain_ordered(),
            None => Vec::new(),
        }
    }

    /// Splices `earlier` events in front of whatever the ring holds —
    /// the commit-barrier merge: the adopting runtime takes its own
    /// ring's history, adopts the shard (whose ring holds only the
    /// round's new events), then prepends the history. If the combined
    /// stream exceeds capacity the oldest events are evicted, as on any
    /// push.
    pub fn prepend_events(&self, earlier: Vec<Event>) {
        let Some(inner) = &self.inner else {
            return;
        };
        if earlier.is_empty() {
            return;
        }
        let mut rec = inner.borrow_mut();
        let current = rec.ring.drain_ordered();
        for e in earlier {
            rec.ring.push(e);
        }
        for e in current {
            rec.ring.push(e);
        }
    }

    /// Events evicted from (or refused by) the ring so far.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.borrow().ring.dropped(),
            None => 0,
        }
    }

    /// Flushes every held event into `sink` (begin → events oldest
    /// first → finish), leaving the ring intact. Returns the number of
    /// events written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the sink.
    pub fn flush_to(&self, sink: &mut dyn TelemetrySink) -> io::Result<usize> {
        sink.begin()?;
        let mut written = 0;
        if let Some(inner) = &self.inner {
            let rec = inner.borrow();
            for event in rec.ring.iter() {
                sink.event(event)?;
                written += 1;
            }
        }
        sink.finish()?;
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.incr(CounterId::Reprograms);
        t.observe(HistogramId::RunLatencyUs, 5.0);
        let token = t.start();
        assert_eq!(t.finish(SpanId::Run, token), 0);
        assert!(t.snapshot().is_empty());
        assert!(t.events().is_empty());
        assert_eq!(t.dropped_events(), 0);
        assert!(!t.fork().is_enabled());
        let mut sink = MemorySink::default();
        assert_eq!(t.flush_to(&mut sink).unwrap(), 0);
        // Default is the disabled handle.
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn spans_record_stats_and_events() {
        let t = Telemetry::enabled();
        let token = t.start();
        std::hint::black_box(0);
        t.finish_with(SpanId::Search, token, 13);
        let snap = t.snapshot();
        assert_eq!(snap.span(SpanId::Search).count, 1);
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].span, SpanId::Search);
        assert_eq!(events[0].arg, 13);
    }

    #[test]
    fn fork_carries_aggregates_but_not_events() {
        let t = Telemetry::enabled();
        t.add(CounterId::SearchEvaluations, 7);
        let token = t.start();
        t.finish(SpanId::Run, token);
        let shard = t.fork();
        assert!(shard.is_enabled());
        let snap = shard.snapshot();
        assert_eq!(snap.counter(CounterId::SearchEvaluations), 7);
        assert_eq!(snap.span(SpanId::Run).count, 1);
        assert!(shard.events().is_empty(), "events do not cross a fork");
        // Shard keeps recording on top of the carried totals.
        shard.incr(CounterId::SearchEvaluations);
        assert_eq!(shard.snapshot().counter(CounterId::SearchEvaluations), 8);
        assert_eq!(t.snapshot().counter(CounterId::SearchEvaluations), 7);
    }

    #[test]
    fn ring_splice_preserves_history_order() {
        let t = Telemetry::enabled();
        let a = t.start();
        t.finish_with(SpanId::Run, a, 1);
        let shard = t.fork();
        let b = shard.start();
        shard.finish_with(SpanId::Run, b, 2);
        // Commit barrier: preserve the adopter's history, adopt the
        // shard, splice.
        let history = t.take_events();
        shard.prepend_events(history);
        let merged = shard.events();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].arg, 1);
        assert_eq!(merged[1].arg, 2);
        // Prepending nothing is a no-op.
        shard.prepend_events(Vec::new());
        assert_eq!(shard.events().len(), 2);
    }

    #[test]
    fn clone_deep_copies_the_recorder() {
        let t = Telemetry::enabled();
        t.incr(CounterId::RunsExecuted);
        let c = t.clone();
        c.incr(CounterId::RunsExecuted);
        assert_eq!(t.snapshot().counter(CounterId::RunsExecuted), 1);
        assert_eq!(c.snapshot().counter(CounterId::RunsExecuted), 2);
    }

    #[test]
    fn zero_capacity_keeps_metrics_without_events() {
        let t = Telemetry::with_config(TelemetryConfig { event_capacity: 0 });
        let token = t.start();
        t.finish(SpanId::Decide, token);
        assert_eq!(t.snapshot().span(SpanId::Decide).count, 1);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped_events(), 1);
    }

    #[test]
    fn flush_to_memory_sink() {
        let t = Telemetry::enabled();
        for arg in 0..3 {
            let token = t.start();
            t.finish_with(SpanId::Search, token, arg);
        }
        let mut sink = MemorySink::default();
        assert_eq!(t.flush_to(&mut sink).unwrap(), 3);
        assert_eq!(sink.events.len(), 3);
        assert_eq!(sink.events[2].arg, 2);
        // Flushing leaves the ring intact.
        assert_eq!(t.events().len(), 3);
    }
}
