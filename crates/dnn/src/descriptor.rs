//! Shape-level descriptions of DNN layers and networks — the features
//! Odin's policy and analytical models consume.

use serde::{Deserialize, Serialize};

/// What kind of computation a layer performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// A 2-D convolution.
    Conv {
        /// Square kernel side length.
        kernel: usize,
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
    },
    /// A fully connected (or attention-projection) layer.
    Linear {
        /// Input width.
        inputs: usize,
        /// Output width.
        outputs: usize,
    },
}

/// One MVM-bearing neural layer as Odin sees it.
///
/// # Examples
///
/// ```
/// use odin_dnn::{LayerDescriptor, LayerKind};
///
/// let conv = LayerDescriptor::new(
///     0,
///     "conv1".into(),
///     LayerKind::Conv { kernel: 3, in_channels: 3, out_channels: 64 },
///     1024, // 32×32 output positions
///     0.5,
///     1.0,
/// );
/// assert_eq!(conv.fan_in(), 27);
/// assert_eq!(conv.weight_count(), 27 * 64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerDescriptor {
    index: usize,
    name: String,
    kind: LayerKind,
    output_positions: usize,
    sparsity: f64,
    sensitivity: f64,
    #[serde(default)]
    activation_sparsity: f64,
}

impl LayerDescriptor {
    /// Creates a layer descriptor.
    ///
    /// * `index` — position in the network (the Φ₁ feature).
    /// * `output_positions` — spatial positions each filter slides
    ///   over (1 for linear layers): the number of MVMs per inference.
    /// * `sparsity` — fraction of fan-in rows pruned to zero (Φ₂).
    /// * `sensitivity` — the layer's accuracy-impact weight: early
    ///   feature-extraction layers sit near 1.0, late layers lower.
    ///
    /// # Panics
    ///
    /// Panics unless `sparsity ∈ [0, 1]`, `sensitivity > 0` and
    /// `output_positions > 0`.
    #[must_use]
    pub fn new(
        index: usize,
        name: String,
        kind: LayerKind,
        output_positions: usize,
        sparsity: f64,
        sensitivity: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
        assert!(sensitivity > 0.0, "sensitivity must be positive");
        assert!(output_positions > 0, "output positions must be nonzero");
        Self {
            index,
            name,
            kind,
            output_positions,
            sparsity,
            sensitivity,
            activation_sparsity: 0.0,
        }
    }

    /// Sets the expected fraction of zero *input activations* this
    /// layer sees at runtime (ReLU-dominated CNNs typically run at
    /// 40–60 %). OU-based computation can skip wordlines whose input
    /// is zero, multiplying with the weight-sparsity row skipping —
    /// the joint exploitation pioneered by the Sparse ReRAM Engine
    /// the paper builds on (§II).
    ///
    /// # Panics
    ///
    /// Panics unless `activation_sparsity ∈ [0, 1]`.
    #[must_use]
    pub fn with_activation_sparsity(mut self, activation_sparsity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&activation_sparsity),
            "activation sparsity must be in [0,1]"
        );
        self.activation_sparsity = activation_sparsity;
        self
    }

    /// Position of this layer in the network (Φ₁).
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Human-readable layer name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer kind.
    #[must_use]
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Weight-matrix fan-in (crossbar rows): `k²·in_ch` for convs.
    #[must_use]
    pub fn fan_in(&self) -> usize {
        match self.kind {
            LayerKind::Conv {
                kernel,
                in_channels,
                ..
            } => kernel * kernel * in_channels,
            LayerKind::Linear { inputs, .. } => inputs,
        }
    }

    /// Weight-matrix fan-out (crossbar logical columns).
    #[must_use]
    pub fn fan_out(&self) -> usize {
        match self.kind {
            LayerKind::Conv { out_channels, .. } => out_channels,
            LayerKind::Linear { outputs, .. } => outputs,
        }
    }

    /// Total weights: `fan_in × fan_out`.
    #[must_use]
    pub fn weight_count(&self) -> usize {
        self.fan_in() * self.fan_out()
    }

    /// The kernel-size feature Φ₃ (1 for linear layers).
    #[must_use]
    pub fn kernel_size(&self) -> usize {
        match self.kind {
            LayerKind::Conv { kernel, .. } => kernel,
            LayerKind::Linear { .. } => 1,
        }
    }

    /// MVMs executed per inference (output spatial positions).
    #[must_use]
    pub fn output_positions(&self) -> usize {
        self.output_positions
    }

    /// The pruned row-sparsity feature Φ₂.
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        self.sparsity
    }

    /// The layer's accuracy-impact weight (early layers ≈ 1.0).
    #[must_use]
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// Expected fraction of zero input activations at runtime.
    #[must_use]
    pub fn activation_sparsity(&self) -> f64 {
        self.activation_sparsity
    }
}

/// A full network as a sequence of MVM-bearing layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkDescriptor {
    name: String,
    dataset: String,
    layers: Vec<LayerDescriptor>,
}

impl NetworkDescriptor {
    /// Creates a network descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or layer indices are not `0..n`.
    #[must_use]
    pub fn new(name: String, dataset: String, layers: Vec<LayerDescriptor>) -> Self {
        assert!(!layers.is_empty(), "network must have at least one layer");
        for (i, layer) in layers.iter().enumerate() {
            assert_eq!(layer.index(), i, "layer indices must be contiguous");
        }
        Self {
            name,
            dataset,
            layers,
        }
    }

    /// Model name (e.g. "resnet18").
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dataset name (e.g. "cifar10").
    #[must_use]
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The layers, in execution order.
    #[must_use]
    pub fn layers(&self) -> &[LayerDescriptor] {
        &self.layers
    }

    /// Total weights across all layers.
    #[must_use]
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(LayerDescriptor::weight_count).sum()
    }

    /// Mean row sparsity across layers (weight-count weighted).
    #[must_use]
    pub fn mean_sparsity(&self) -> f64 {
        let total = self.total_weights() as f64;
        self.layers
            .iter()
            .map(|l| l.sparsity() * l.weight_count() as f64)
            .sum::<f64>()
            / total
    }
}

/// The standard decreasing sensitivity profile: layer `j` of `n` gets
/// `0.4 + 0.6·(1 − j/(n−1))²` — early layers near 1.0, late layers
/// near 0.4, matching the observation that initial feature-extraction
/// layers dominate accuracy impact (§III.A).
///
/// # Panics
///
/// Panics when `n` is zero or `j >= n`.
#[must_use]
pub fn default_sensitivity(j: usize, n: usize) -> f64 {
    assert!(n > 0 && j < n, "layer {j} outside network of {n}");
    if n == 1 {
        return 1.0;
    }
    let depth = j as f64 / (n - 1) as f64;
    0.4 + 0.6 * (1.0 - depth).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn conv(index: usize) -> LayerDescriptor {
        LayerDescriptor::new(
            index,
            format!("conv{index}"),
            LayerKind::Conv {
                kernel: 3,
                in_channels: 64,
                out_channels: 128,
            },
            256,
            0.5,
            1.0,
        )
    }

    #[test]
    fn conv_geometry() {
        let l = conv(0);
        assert_eq!(l.fan_in(), 576);
        assert_eq!(l.fan_out(), 128);
        assert_eq!(l.weight_count(), 576 * 128);
        assert_eq!(l.kernel_size(), 3);
        assert_eq!(l.output_positions(), 256);
    }

    #[test]
    fn linear_geometry() {
        let l = LayerDescriptor::new(
            0,
            "fc".into(),
            LayerKind::Linear {
                inputs: 512,
                outputs: 10,
            },
            1,
            0.0,
            0.4,
        );
        assert_eq!(l.fan_in(), 512);
        assert_eq!(l.fan_out(), 10);
        assert_eq!(l.kernel_size(), 1);
    }

    #[test]
    fn network_aggregates() {
        let net = NetworkDescriptor::new("test".into(), "cifar10".into(), vec![conv(0), conv(1)]);
        assert_eq!(net.total_weights(), 2 * 576 * 128);
        assert!((net.mean_sparsity() - 0.5).abs() < 1e-12);
        assert_eq!(net.layers().len(), 2);
        assert_eq!(net.name(), "test");
        assert_eq!(net.dataset(), "cifar10");
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_indices_panic() {
        let _ = NetworkDescriptor::new("bad".into(), "x".into(), vec![conv(0), conv(5)]);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_network_panics() {
        let _ = NetworkDescriptor::new("bad".into(), "x".into(), vec![]);
    }

    #[test]
    fn sensitivity_profile_endpoints() {
        assert!((default_sensitivity(0, 10) - 1.0).abs() < 1e-12);
        assert!((default_sensitivity(9, 10) - 0.4).abs() < 1e-12);
        assert_eq!(default_sensitivity(0, 1), 1.0);
    }

    proptest! {
        #[test]
        fn sensitivity_decreases_with_depth(n in 2usize..100, j in 0usize..99) {
            prop_assume!(j + 1 < n);
            let a = default_sensitivity(j, n);
            let b = default_sensitivity(j + 1, n);
            prop_assert!(b <= a);
            prop_assert!((0.4..=1.0).contains(&a));
            prop_assert!((0.4..=1.0).contains(&b));
        }
    }
}
