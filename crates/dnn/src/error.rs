//! DNN-layer error type.

/// Errors produced by the DNN stack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DnnError {
    /// A tensor shape did not match what an operation expected.
    ShapeMismatch {
        /// Shape the operation expected.
        expected: Vec<usize>,
        /// Shape it received.
        got: Vec<usize>,
    },
    /// A configuration value failed validation.
    InvalidConfig {
        /// The parameter name.
        name: &'static str,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// [`Layer::backward`] was called before a training-mode forward
    /// pass cached the activations it needs.
    ///
    /// [`Layer::backward`]: crate::layers::Layer::backward
    BackwardBeforeForward {
        /// The layer that had no cached forward pass.
        layer: &'static str,
    },
}

impl std::fmt::Display for DnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnnError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected:?}, got {got:?}")
            }
            DnnError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
            DnnError::BackwardBeforeForward { layer } => {
                write!(
                    f,
                    "backward before forward: `{layer}` has no cached training pass"
                )
            }
        }
    }
}

impl std::error::Error for DnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = DnnError::ShapeMismatch {
            expected: vec![3, 2],
            got: vec![2, 3],
        };
        assert!(e.to_string().contains("[3, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<DnnError>();
    }
}
