//! SGD training and noise-injected evaluation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Sample;
use crate::error::DnnError;
use crate::layers::softmax;
use crate::model::Sequential;
use crate::tensor::Tensor;

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            batch_size: 8,
            epochs: 10,
        }
    }
}

/// Per-layer multiplicative weight perturbation used to emulate the
/// effect of crossbar non-idealities on a trained model (the PytorX
/// substitution): each weight is scaled by `1 − impact` and jittered
/// by Gaussian noise of relative sigma `impact / 2`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseSpec {
    /// Relative non-ideality per parameterized layer, in forward order.
    /// Must match the number of weight tensors in the network.
    pub layer_impacts: Vec<f64>,
}

impl NoiseSpec {
    /// A uniform impact across `layers` layers.
    #[must_use]
    pub fn uniform(impact: f64, layers: usize) -> Self {
        Self {
            layer_impacts: vec![impact; layers],
        }
    }
}

/// Cross-entropy SGD trainer with accuracy evaluation.
///
/// # Examples
///
/// ```no_run
/// use odin_dnn::{Trainer, TrainerConfig, Sequential};
/// use odin_dnn::dataset::SyntheticImages;
/// use odin_dnn::layers::{Dense, Flatten, Relu};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let data = SyntheticImages::generate(4, 1, 8, 200, 0.2, &mut rng);
/// let (train, test) = data.split(0.8);
/// let mut net = Sequential::new();
/// net.push(Flatten::new());
/// net.push(Dense::new(64, 32, &mut rng));
/// net.push(Relu::new());
/// net.push(Dense::new(32, 4, &mut rng));
/// let trainer = Trainer::new(TrainerConfig::default());
/// trainer.fit(&mut net, &train).expect("forward_train precedes backward");
/// let acc = trainer.accuracy(&mut net, &test);
/// assert!(acc > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer.
    #[must_use]
    pub fn new(config: TrainerConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Trains the network in place, returning the mean cross-entropy of
    /// the final epoch.
    ///
    /// # Errors
    ///
    /// Propagates [`DnnError`] from the backward pass (shape mismatches
    /// between layers of a miswired network).
    pub fn fit(&self, net: &mut Sequential, data: &[Sample]) -> Result<f32, DnnError> {
        let mut last_epoch_loss = f32::INFINITY;
        for _ in 0..self.config.epochs {
            let mut epoch_loss = 0.0;
            for batch in data.chunks(self.config.batch_size) {
                for sample in batch {
                    let logits = net.forward_train(&sample.image);
                    let p = softmax(&logits);
                    epoch_loss -= p.as_slice()[sample.label].max(1e-7).ln();
                    let mut grad = p;
                    grad.as_mut_slice()[sample.label] -= 1.0;
                    net.backward(&grad)?;
                }
                net.apply_gradients(self.config.learning_rate, batch.len());
            }
            last_epoch_loss = epoch_loss / data.len().max(1) as f32;
        }
        Ok(last_epoch_loss)
    }

    /// Top-1 accuracy on a dataset.
    #[must_use]
    pub fn accuracy(&self, net: &mut Sequential, data: &[Sample]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .iter()
            .filter(|s| net.predict(&s.image) == s.label)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Top-1 accuracy with per-layer non-ideality noise injected into
    /// the weights for the duration of the evaluation (weights are
    /// restored afterwards).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] when the spec's layer count
    /// does not match the network's parameterized layers.
    pub fn noisy_accuracy<R: Rng + ?Sized>(
        &self,
        net: &mut Sequential,
        data: &[Sample],
        spec: &NoiseSpec,
        rng: &mut R,
    ) -> Result<f64, DnnError> {
        let originals: Vec<Tensor> = net.weights().cloned().collect();
        if originals.len() != spec.layer_impacts.len() {
            return Err(DnnError::InvalidConfig {
                name: "noise_spec",
                reason: "layer impact count must match parameterized layers",
            });
        }
        for (weights, &impact) in net.weights_mut().zip(&spec.layer_impacts) {
            perturb(weights, impact, rng);
        }
        let acc = self.accuracy(net, data);
        for (weights, original) in net.weights_mut().zip(originals) {
            *weights = original;
        }
        Ok(acc)
    }
}

/// Applies the non-ideality perturbation in place: scale by
/// `1 − impact` (IR attenuation of the summed currents) plus additive
/// Gaussian dispersion of sigma `impact × RMS(weights)` (per-cell
/// drift/programming error, which does *not* cancel in the argmax the
/// way a uniform scale would).
fn perturb<R: Rng + ?Sized>(weights: &mut Tensor, impact: f64, rng: &mut R) {
    let impact = impact.clamp(0.0, 1.0);
    let n = weights.len().max(1) as f64;
    let rms = (weights
        .as_slice()
        .iter()
        .map(|&w| f64::from(w) * f64::from(w))
        .sum::<f64>()
        / n)
        .sqrt();
    let scale = 1.0 - impact;
    let sigma = impact * rms;
    for w in weights.as_mut_slice() {
        let z = sample_normal(rng);
        *w = (f64::from(*w) * scale + sigma * z) as f32;
    }
}

fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::EPSILON {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticImages;
    use crate::layers::{Dense, Flatten, Relu};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    fn mlp(rng: &mut rand::rngs::StdRng, inputs: usize, classes: usize) -> Sequential {
        let mut net = Sequential::new();
        net.push(Flatten::new());
        net.push(Dense::new(inputs, 32, rng));
        net.push(Relu::new());
        net.push(Dense::new(32, classes, rng));
        net
    }

    #[test]
    fn training_beats_chance_substantially() {
        let mut r = rng();
        let data = SyntheticImages::generate(4, 1, 8, 240, 0.25, &mut r);
        let (train, test) = data.split(0.8);
        let mut net = mlp(&mut r, 64, 4);
        let trainer = Trainer::new(TrainerConfig {
            learning_rate: 0.1,
            batch_size: 8,
            epochs: 15,
        });
        let loss = trainer.fit(&mut net, &train).unwrap();
        assert!(loss < 0.5, "final loss {loss}");
        let acc = trainer.accuracy(&mut net, &test);
        assert!(acc > 0.8, "test accuracy {acc}");
    }

    #[test]
    fn noise_degrades_accuracy_monotonically_on_average() {
        let mut r = rng();
        let data = SyntheticImages::generate(4, 1, 8, 240, 0.25, &mut r);
        let (train, test) = data.split(0.8);
        let mut net = mlp(&mut r, 64, 4);
        let trainer = Trainer::new(TrainerConfig {
            learning_rate: 0.1,
            batch_size: 8,
            epochs: 15,
        });
        trainer.fit(&mut net, &train).unwrap();
        let clean = trainer.accuracy(&mut net, &test);
        let light = trainer
            .noisy_accuracy(&mut net, &test, &NoiseSpec::uniform(0.02, 2), &mut r)
            .unwrap();
        let heavy = trainer
            .noisy_accuracy(&mut net, &test, &NoiseSpec::uniform(0.8, 2), &mut r)
            .unwrap();
        assert!(
            light >= clean - 0.1,
            "light noise ≈ clean: {light} vs {clean}"
        );
        assert!(heavy < clean - 0.2, "heavy noise hurts: {heavy} vs {clean}");
    }

    #[test]
    fn noisy_eval_restores_weights() {
        let mut r = rng();
        let data = SyntheticImages::generate(2, 1, 4, 20, 0.2, &mut r);
        let mut net = mlp(&mut r, 16, 2);
        let before: Vec<Tensor> = net.weights().cloned().collect();
        let trainer = Trainer::new(TrainerConfig::default());
        trainer
            .noisy_accuracy(
                &mut net,
                data.samples(),
                &NoiseSpec::uniform(0.5, 2),
                &mut r,
            )
            .unwrap();
        let after: Vec<Tensor> = net.weights().cloned().collect();
        assert_eq!(before, after);
    }

    #[test]
    fn noise_spec_layer_count_checked() {
        let mut r = rng();
        let data = SyntheticImages::generate(2, 1, 4, 4, 0.2, &mut r);
        let mut net = mlp(&mut r, 16, 2);
        let trainer = Trainer::new(TrainerConfig::default());
        let bad = NoiseSpec::uniform(0.1, 3);
        assert!(trainer
            .noisy_accuracy(&mut net, data.samples(), &bad, &mut r)
            .is_err());
    }

    #[test]
    fn accuracy_of_empty_dataset_is_zero() {
        let mut r = rng();
        let mut net = mlp(&mut r, 16, 2);
        let trainer = Trainer::new(TrainerConfig::default());
        assert_eq!(trainer.accuracy(&mut net, &[]), 0.0);
    }
}
