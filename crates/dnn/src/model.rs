//! The sequential network container.

use crate::error::DnnError;
use crate::layers::{softmax, Layer};
use crate::tensor::Tensor;

/// A stack of layers executed in order.
///
/// # Examples
///
/// ```
/// use odin_dnn::layers::{Dense, Relu};
/// use odin_dnn::{Sequential, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut net = Sequential::new();
/// net.push(Dense::new(8, 16, &mut rng));
/// net.push(Relu::new());
/// net.push(Dense::new(16, 4, &mut rng));
/// let logits = net.forward(&Tensor::zeros(vec![8]));
/// assert_eq!(logits.shape(), &[4]);
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the network has no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Inference forward pass (no caches).
    #[must_use]
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        self.pass(input, false)
    }

    /// Training forward pass (caches activations for backward).
    #[must_use]
    pub fn forward_train(&mut self, input: &Tensor) -> Tensor {
        self.pass(input, true)
    }

    fn pass(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Backpropagates `grad` through every layer (reverse order),
    /// accumulating parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BackwardBeforeForward`] when a layer has no
    /// cached training pass (no preceding [`Sequential::forward_train`]).
    pub fn backward(&mut self, grad: &Tensor) -> Result<(), DnnError> {
        let mut g = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(())
    }

    /// Applies accumulated gradients everywhere.
    pub fn apply_gradients(&mut self, lr: f32, batch: usize) {
        for layer in &mut self.layers {
            layer.apply_gradients(lr, batch);
        }
    }

    /// Class prediction: argmax of the softmax output.
    #[must_use]
    pub fn predict(&mut self, input: &Tensor) -> usize {
        softmax(&self.forward(input)).argmax()
    }

    /// Iterates over the weight tensors of parameterized layers.
    pub fn weights(&self) -> impl Iterator<Item = &Tensor> {
        self.layers.iter().filter_map(|l| l.weights())
    }

    /// Mutable iteration over weight tensors (noise injection and
    /// pruning hooks).
    pub fn weights_mut(&mut self) -> impl Iterator<Item = &mut Tensor> {
        self.layers.iter_mut().filter_map(|l| l.weights_mut())
    }

    /// Total trainable weight count.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.weights().map(Tensor::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    #[test]
    fn cnn_shapes_flow() {
        let mut r = rng();
        let mut net = Sequential::new();
        net.push(Conv2d::new(1, 4, 3, &mut r));
        net.push(Relu::new());
        net.push(MaxPool2d::new());
        net.push(Flatten::new());
        net.push(Dense::new(4 * 4 * 4, 10, &mut r));
        let y = net.forward(&Tensor::zeros(vec![1, 8, 8]));
        assert_eq!(y.shape(), &[10]);
        assert_eq!(net.len(), 5);
        assert!(!net.is_empty());
    }

    #[test]
    fn parameter_count_counts_weights() {
        let mut r = rng();
        let mut net = Sequential::new();
        net.push(Dense::new(4, 8, &mut r));
        net.push(Relu::new());
        net.push(Dense::new(8, 2, &mut r));
        assert_eq!(net.parameter_count(), 4 * 8 + 8 * 2);
        assert_eq!(net.weights().count(), 2);
    }

    #[test]
    fn predict_returns_class_index() {
        let mut r = rng();
        let mut net = Sequential::new();
        net.push(Dense::new(3, 5, &mut r));
        let class = net.predict(&Tensor::from_vec(vec![3], vec![1.0, 0.0, -1.0]).unwrap());
        assert!(class < 5);
    }

    #[test]
    fn end_to_end_gradient_flow_reduces_loss() {
        let mut r = rng();
        let mut net = Sequential::new();
        net.push(Dense::new(2, 8, &mut r));
        net.push(Relu::new());
        net.push(Dense::new(8, 2, &mut r));
        // XOR-ish separation.
        let data = [
            (vec![0.0, 0.0], 0usize),
            (vec![1.0, 1.0], 0),
            (vec![0.0, 1.0], 1),
            (vec![1.0, 0.0], 1),
        ];
        let mut last = f32::INFINITY;
        for _ in 0..400 {
            let mut total = 0.0;
            for (x, label) in &data {
                let input = Tensor::from_vec(vec![2], x.clone()).unwrap();
                let logits = net.forward_train(&input);
                let p = softmax(&logits);
                total -= p.as_slice()[*label].max(1e-7).ln();
                let mut grad = p.clone();
                grad.as_mut_slice()[*label] -= 1.0;
                net.backward(&grad).unwrap();
            }
            net.apply_gradients(0.5, data.len());
            last = total / data.len() as f32;
        }
        assert!(last < 0.1, "cross-entropy {last}");
        for (x, label) in &data {
            let input = Tensor::from_vec(vec![2], x.clone()).unwrap();
            assert_eq!(net.predict(&input), *label);
        }
    }
}
