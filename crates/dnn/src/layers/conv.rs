//! 2-D convolution.

use rand::Rng;

use crate::error::DnnError;
use crate::layers::Layer;
use crate::tensor::Tensor;

/// A same-padding, stride-1 2-D convolution over `[C, H, W]` inputs
/// with weights `[out_ch, in_ch, k, k]`.
///
/// Implemented as explicit loops — the functional half only runs small
/// images (≤ 16×16), where clarity beats blocking.
///
/// # Examples
///
/// ```
/// use odin_dnn::layers::{Conv2d, Layer};
/// use odin_dnn::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::new(3, 8, 3, &mut rng);
/// let y = conv.forward(&Tensor::zeros(vec![3, 8, 8]), false);
/// assert_eq!(y.shape(), &[8, 8, 8]);
/// ```
#[derive(Debug)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    weights: Tensor,
    bias: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-uniform initialization.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the kernel is even (same
    /// padding needs an odd kernel).
    #[must_use]
    pub fn new<R: Rng + ?Sized>(in_ch: usize, out_ch: usize, kernel: usize, rng: &mut R) -> Self {
        assert!(
            in_ch > 0 && out_ch > 0 && kernel > 0,
            "dimensions must be nonzero"
        );
        assert!(kernel % 2 == 1, "same padding needs an odd kernel");
        let fan_in = in_ch * kernel * kernel;
        let bound = (6.0 / fan_in as f32).sqrt();
        let n = out_ch * in_ch * kernel * kernel;
        let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-bound..bound)).collect();
        Self {
            in_ch,
            out_ch,
            kernel,
            weights: Tensor::from_vec(vec![out_ch, in_ch, kernel, kernel], data).expect("sized"),
            bias: Tensor::zeros(vec![out_ch]),
            grad_w: Tensor::zeros(vec![out_ch, in_ch, kernel, kernel]),
            grad_b: Tensor::zeros(vec![out_ch]),
            cache: None,
        }
    }

    /// Input channels.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_ch
    }

    /// Output channels.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    /// Kernel size.
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    fn check_input(&self, input: &Tensor) -> (usize, usize) {
        let s = input.shape();
        assert_eq!(s.len(), 3, "conv input must be [C, H, W]");
        assert_eq!(s[0], self.in_ch, "conv input channel mismatch");
        (s[1], s[2])
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (h, w) = self.check_input(input);
        if train {
            self.cache = Some(input.clone());
        }
        let pad = self.kernel / 2;
        let mut out = Tensor::zeros(vec![self.out_ch, h, w]);
        for oc in 0..self.out_ch {
            let b = self.bias.as_slice()[oc];
            for y in 0..h {
                for x in 0..w {
                    let mut acc = b;
                    for ic in 0..self.in_ch {
                        for ky in 0..self.kernel {
                            let sy = y + ky;
                            if sy < pad || sy - pad >= h {
                                continue;
                            }
                            for kx in 0..self.kernel {
                                let sx = x + kx;
                                if sx < pad || sx - pad >= w {
                                    continue;
                                }
                                acc += self.weights.get(&[oc, ic, ky, kx])
                                    * input.get(&[ic, sy - pad, sx - pad]);
                            }
                        }
                    }
                    out.set(&[oc, y, x], acc);
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DnnError> {
        let input = self
            .cache
            .clone()
            .ok_or(DnnError::BackwardBeforeForward { layer: "conv2d" })?;
        let (h, w) = self.check_input(&input);
        assert_eq!(grad_out.shape(), &[self.out_ch, h, w], "conv grad shape");
        let pad = self.kernel / 2;
        let mut grad_in = Tensor::zeros(vec![self.in_ch, h, w]);
        for oc in 0..self.out_ch {
            let mut gb = 0.0;
            for y in 0..h {
                for x in 0..w {
                    let go = grad_out.get(&[oc, y, x]);
                    if go == 0.0 {
                        continue;
                    }
                    gb += go;
                    for ic in 0..self.in_ch {
                        for ky in 0..self.kernel {
                            let sy = y + ky;
                            if sy < pad || sy - pad >= h {
                                continue;
                            }
                            for kx in 0..self.kernel {
                                let sx = x + kx;
                                if sx < pad || sx - pad >= w {
                                    continue;
                                }
                                let xi = input.get(&[ic, sy - pad, sx - pad]);
                                let old = self.grad_w.get(&[oc, ic, ky, kx]);
                                self.grad_w.set(&[oc, ic, ky, kx], old + go * xi);
                                let wv = self.weights.get(&[oc, ic, ky, kx]);
                                let old_in = grad_in.get(&[ic, sy - pad, sx - pad]);
                                grad_in.set(&[ic, sy - pad, sx - pad], old_in + go * wv);
                            }
                        }
                    }
                }
            }
            self.grad_b.as_mut_slice()[oc] += gb;
        }
        Ok(grad_in)
    }

    fn apply_gradients(&mut self, lr: f32, batch: usize) {
        let scale = lr / batch.max(1) as f32;
        for (w, g) in self
            .weights
            .as_mut_slice()
            .iter_mut()
            .zip(self.grad_w.as_slice())
        {
            *w -= scale * g;
        }
        for (b, g) in self
            .bias
            .as_mut_slice()
            .iter_mut()
            .zip(self.grad_b.as_slice())
        {
            *b -= scale * g;
        }
        self.grad_w = Tensor::zeros(vec![self.out_ch, self.in_ch, self.kernel, self.kernel]);
        self.grad_b = Tensor::zeros(vec![self.out_ch]);
    }

    fn weights(&self) -> Option<&Tensor> {
        Some(&self.weights)
    }

    fn weights_mut(&mut self) -> Option<&mut Tensor> {
        Some(&mut self.weights)
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(31)
    }

    #[test]
    fn identity_kernel_passes_through() {
        let mut conv = Conv2d::new(1, 1, 3, &mut rng());
        // Zero all weights, set the center tap to 1.
        for v in conv.weights_mut().unwrap().as_mut_slice() {
            *v = 0.0;
        }
        conv.weights_mut().unwrap().set(&[0, 0, 1, 1], 1.0);
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = conv.forward(&x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn padding_zeroes_borders() {
        let mut conv = Conv2d::new(1, 1, 3, &mut rng());
        for v in conv.weights_mut().unwrap().as_mut_slice() {
            *v = 1.0;
        }
        let x = Tensor::from_vec(vec![1, 3, 3], vec![1.0; 9]).unwrap();
        let y = conv.forward(&x, false);
        // Center sees all 9 ones; corner sees 4.
        assert_eq!(y.get(&[0, 1, 1]), 9.0);
        assert_eq!(y.get(&[0, 0, 0]), 4.0);
    }

    #[test]
    fn gradient_check_numerical() {
        let mut conv = Conv2d::new(1, 2, 3, &mut rng());
        let x = Tensor::from_vec(
            vec![1, 3, 3],
            vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6, 0.7, 0.8, -0.9],
        )
        .unwrap();
        let upstream = Tensor::from_vec(
            vec![2, 3, 3],
            (0..18).map(|i| (i as f32) / 9.0 - 1.0).collect(),
        )
        .unwrap();
        let _ = conv.forward(&x, true);
        let gin = conv.backward(&upstream).unwrap();
        let loss = |y: &Tensor| {
            y.as_slice()
                .iter()
                .zip(upstream.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let numeric =
                (loss(&conv.forward(&xp, false)) - loss(&conv.forward(&xm, false))) / (2.0 * eps);
            assert!(
                (numeric - gin.as_slice()[i]).abs() < 2e-2,
                "grad[{i}]: numeric {numeric} vs analytic {}",
                gin.as_slice()[i]
            );
        }
    }

    #[test]
    fn training_fits_edge_detector() {
        // Teach a 1→1 conv to emulate a fixed random target conv.
        let mut target = Conv2d::new(1, 1, 3, &mut rng());
        let mut student = Conv2d::new(1, 1, 3, &mut rng());
        let mut r = rng();
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let x = Tensor::from_vec(
                vec![1, 4, 4],
                (0..16).map(|_| r.gen_range(-1.0..1.0)).collect(),
            )
            .unwrap();
            let want = target.forward(&x, false);
            let got = student.forward(&x, true);
            let grad: Vec<f32> = got
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .map(|(a, b)| a - b)
                .collect();
            last = grad.iter().map(|g| g * g).sum::<f32>() / grad.len() as f32;
            student
                .backward(&Tensor::from_vec(vec![1, 4, 4], grad).unwrap())
                .unwrap();
            student.apply_gradients(0.05, 1);
        }
        assert!(last < 1e-3, "mse {last}");
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn even_kernel_panics() {
        let _ = Conv2d::new(1, 1, 2, &mut rng());
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_channels_panics() {
        let mut conv = Conv2d::new(2, 1, 3, &mut rng());
        let _ = conv.forward(&Tensor::zeros(vec![1, 4, 4]), false);
    }
}
