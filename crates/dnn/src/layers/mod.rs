//! Trainable layers for the functional DNN half.
//!
//! Every layer implements [`Layer`]: a cached forward pass, a backward
//! pass that accumulates parameter gradients and returns the input
//! gradient, and SGD application. Samples flow through one at a time
//! (shape `[C, H, W]` for convolutional layers, `[N]` for dense); the
//! trainer accumulates gradients across a mini-batch before stepping.

mod conv;
mod dense;
mod pool;

pub use conv::Conv2d;
pub use dense::Dense;
pub use pool::{AvgPool2d, MaxPool2d};

use crate::error::DnnError;
use crate::tensor::Tensor;

/// A trainable (or stateless) network layer.
pub trait Layer: std::fmt::Debug {
    /// Computes the layer output. When `train` is `true` the layer may
    /// cache activations needed by [`Layer::backward`].
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Propagates `grad_out` back through the cached forward pass,
    /// accumulating parameter gradients. Returns the gradient with
    /// respect to the layer input.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BackwardBeforeForward`] when called before
    /// a `forward` with `train = true` cached the activations.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DnnError>;

    /// Applies accumulated gradients with learning rate `lr` (scaled by
    /// `1 / batch`) and clears them.
    fn apply_gradients(&mut self, lr: f32, batch: usize);

    /// The layer's weight tensor, if it has one (used for noise
    /// injection and pruning).
    fn weights(&self) -> Option<&Tensor> {
        None
    }

    /// Mutable access to the weight tensor, if any.
    fn weights_mut(&mut self) -> Option<&mut Tensor> {
        None
    }

    /// A short human-readable layer name.
    fn name(&self) -> &'static str;
}

/// The rectified-linear activation.
#[derive(Debug, Default)]
pub struct Relu {
    cache: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cache = Some(input.clone());
        }
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DnnError> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(DnnError::BackwardBeforeForward { layer: "relu" })?;
        let mut grad = grad_out.clone();
        for (g, &x) in grad.as_mut_slice().iter_mut().zip(cache.as_slice()) {
            if x <= 0.0 {
                *g = 0.0;
            }
        }
        Ok(grad)
    }

    fn apply_gradients(&mut self, _lr: f32, _batch: usize) {}

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Flattens any input to rank 1 (and restores the shape on backward).
#[derive(Debug, Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.input_shape = Some(input.shape().to_vec());
        }
        input
            .reshape(vec![input.len()])
            .expect("flatten preserves element count")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DnnError> {
        let shape = self
            .input_shape
            .clone()
            .ok_or(DnnError::BackwardBeforeForward { layer: "flatten" })?;
        grad_out.reshape(shape)
    }

    fn apply_gradients(&mut self, _lr: f32, _batch: usize) {}

    fn name(&self) -> &'static str {
        "flatten"
    }
}

/// Numerically stable softmax over a rank-1 tensor.
///
/// # Panics
///
/// Panics if `logits` is not rank 1.
#[must_use]
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().len(), 1, "softmax expects rank-1 logits");
    let max = logits
        .as_slice()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.as_slice().iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_vec(
        logits.shape().to_vec(),
        exps.iter().map(|e| e / sum).collect(),
    )
    .expect("same shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![4], vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let y = relu.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let g = relu
            .backward(&Tensor::from_vec(vec![4], vec![1.0; 4]).unwrap())
            .unwrap();
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(vec![2, 3, 4]);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[24]);
        let g = f.backward(&y).unwrap();
        assert_eq!(g.shape(), &[2, 3, 4]);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let logits = Tensor::from_vec(vec![3], vec![1.0, 3.0, 2.0]).unwrap();
        let p = softmax(&logits);
        let sum: f32 = p.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert_eq!(p.argmax(), 1);
        assert!(p.as_slice().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let logits = Tensor::from_vec(vec![2], vec![1000.0, 1001.0]).unwrap();
        let p = softmax(&logits);
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
        assert!((p.as_slice().iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn backward_without_forward_is_a_typed_error() {
        let mut relu = Relu::new();
        let err = relu.backward(&Tensor::zeros(vec![1])).unwrap_err();
        assert_eq!(err, DnnError::BackwardBeforeForward { layer: "relu" });
        let mut flat = Flatten::new();
        let err = flat.backward(&Tensor::zeros(vec![1])).unwrap_err();
        assert_eq!(err, DnnError::BackwardBeforeForward { layer: "flatten" });
        assert!(err.to_string().contains("backward before forward"));
    }
}
