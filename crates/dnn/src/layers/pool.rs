//! Max pooling.

use crate::error::DnnError;
use crate::layers::Layer;
use crate::tensor::Tensor;

/// 2×2, stride-2 max pooling over `[C, H, W]` inputs.
///
/// # Examples
///
/// ```
/// use odin_dnn::layers::{Layer, MaxPool2d};
/// use odin_dnn::Tensor;
///
/// let mut pool = MaxPool2d::new();
/// let y = pool.forward(&Tensor::zeros(vec![4, 8, 8]), false);
/// assert_eq!(y.shape(), &[4, 4, 4]);
/// ```
#[derive(Debug, Default)]
pub struct MaxPool2d {
    /// `(input shape, argmax flat indices per output element)`.
    cache: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a 2×2 max-pool layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 3, "pool input must be [C, H, W]");
        let (c, h, w) = (s[0], s[1], s[2]);
        assert!(h % 2 == 0 && w % 2 == 0, "pool needs even spatial dims");
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor::zeros(vec![c, oh, ow]);
        let mut argmax = Vec::with_capacity(c * oh * ow);
        for ch in 0..c {
            for y in 0..oh {
                for x in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let (sy, sx) = (2 * y + dy, 2 * x + dx);
                            let v = input.get(&[ch, sy, sx]);
                            if v > best {
                                best = v;
                                best_idx = (ch * h + sy) * w + sx;
                            }
                        }
                    }
                    out.set(&[ch, y, x], best);
                    argmax.push(best_idx);
                }
            }
        }
        if train {
            self.cache = Some((s.to_vec(), argmax));
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DnnError> {
        let (shape, argmax) = self
            .cache
            .as_ref()
            .ok_or(DnnError::BackwardBeforeForward { layer: "maxpool2d" })?;
        assert_eq!(grad_out.len(), argmax.len(), "pool grad size mismatch");
        let mut grad_in = Tensor::zeros(shape.clone());
        for (&flat, &g) in argmax.iter().zip(grad_out.as_slice()) {
            grad_in.as_mut_slice()[flat] += g;
        }
        Ok(grad_in)
    }

    fn apply_gradients(&mut self, _lr: f32, _batch: usize) {}

    fn name(&self) -> &'static str {
        "maxpool2d"
    }
}

/// 2×2, stride-2 average pooling over `[C, H, W]` inputs.
///
/// # Examples
///
/// ```
/// use odin_dnn::layers::{AvgPool2d, Layer};
/// use odin_dnn::Tensor;
///
/// let mut pool = AvgPool2d::new();
/// let y = pool.forward(&Tensor::zeros(vec![4, 8, 8]), false);
/// assert_eq!(y.shape(), &[4, 4, 4]);
/// ```
#[derive(Debug, Default)]
pub struct AvgPool2d {
    input_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates a 2×2 average-pool layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 3, "pool input must be [C, H, W]");
        let (c, h, w) = (s[0], s[1], s[2]);
        assert!(h % 2 == 0 && w % 2 == 0, "pool needs even spatial dims");
        if train {
            self.input_shape = Some(s.to_vec());
        }
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor::zeros(vec![c, oh, ow]);
        for ch in 0..c {
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = 0.0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            acc += input.get(&[ch, 2 * y + dy, 2 * x + dx]);
                        }
                    }
                    out.set(&[ch, y, x], acc / 4.0);
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DnnError> {
        let shape = self
            .input_shape
            .clone()
            .ok_or(DnnError::BackwardBeforeForward { layer: "avgpool2d" })?;
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let mut grad_in = Tensor::zeros(shape.clone());
        for ch in 0..c {
            for y in 0..h / 2 {
                for x in 0..w / 2 {
                    let g = grad_out.get(&[ch, y, x]) / 4.0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            grad_in.set(&[ch, 2 * y + dy, 2 * x + dx], g);
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }

    fn apply_gradients(&mut self, _lr: f32, _batch: usize) {}

    fn name(&self) -> &'static str {
        "avgpool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_averages_windows() {
        let mut pool = AvgPool2d::new();
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1., 3., 5., 7.]).unwrap();
        let y = pool.forward(&x, false);
        assert_eq!(y.as_slice(), &[4.0]);
    }

    #[test]
    fn avg_pool_backward_spreads_evenly() {
        let mut pool = AvgPool2d::new();
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let _ = pool.forward(&x, true);
        let g = pool
            .backward(&Tensor::from_vec(vec![1, 1, 1], vec![8.0]).unwrap())
            .unwrap();
        assert_eq!(g.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avg_pool_gradient_check() {
        let mut pool = AvgPool2d::new();
        let x = Tensor::from_vec(vec![1, 4, 4], (0..16).map(|i| i as f32 * 0.1).collect()).unwrap();
        let up = Tensor::from_vec(vec![1, 2, 2], vec![1.0, -1.0, 0.5, 2.0]).unwrap();
        let _ = pool.forward(&x, true);
        let gin = pool.backward(&up).unwrap();
        let loss = |y: &Tensor| {
            y.as_slice()
                .iter()
                .zip(up.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let numeric =
                (loss(&pool.forward(&xp, false)) - loss(&pool.forward(&xm, false))) / (2.0 * eps);
            assert!((numeric - gin.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn picks_window_maxima() {
        let mut pool = MaxPool2d::new();
        let x = Tensor::from_vec(
            vec![1, 4, 4],
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        )
        .unwrap();
        let y = pool.forward(&x, false);
        assert_eq!(y.as_slice(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn backward_routes_to_argmax_only() {
        let mut pool = MaxPool2d::new();
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1., 9., 3., 4.]).unwrap();
        let _ = pool.forward(&x, true);
        let g = pool
            .backward(&Tensor::from_vec(vec![1, 1, 1], vec![5.0]).unwrap())
            .unwrap();
        assert_eq!(g.as_slice(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn multichannel_preserved() {
        let mut pool = MaxPool2d::new();
        let y = pool.forward(&Tensor::zeros(vec![3, 6, 6]), false);
        assert_eq!(y.shape(), &[3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "even spatial")]
    fn odd_dims_panic() {
        let mut pool = MaxPool2d::new();
        let _ = pool.forward(&Tensor::zeros(vec![1, 3, 4]), false);
    }
}
