//! Fully connected layer.

use rand::Rng;

use crate::error::DnnError;
use crate::layers::Layer;
use crate::tensor::Tensor;

/// A fully connected layer: `y = W·x + b` with `W` of shape
/// `[fan_out, fan_in]`.
///
/// # Examples
///
/// ```
/// use odin_dnn::layers::{Dense, Layer};
/// use odin_dnn::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut fc = Dense::new(4, 2, &mut rng);
/// let y = fc.forward(&Tensor::zeros(vec![4]), false);
/// assert_eq!(y.shape(), &[2]);
/// ```
#[derive(Debug)]
pub struct Dense {
    fan_in: usize,
    fan_out: usize,
    weights: Tensor,
    bias: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    cache: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-uniform initialization.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Self {
        assert!(
            fan_in > 0 && fan_out > 0,
            "dense dimensions must be nonzero"
        );
        let bound = (6.0 / fan_in as f32).sqrt();
        let data: Vec<f32> = (0..fan_in * fan_out)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self {
            fan_in,
            fan_out,
            weights: Tensor::from_vec(vec![fan_out, fan_in], data).expect("sized"),
            bias: Tensor::zeros(vec![fan_out]),
            grad_w: Tensor::zeros(vec![fan_out, fan_in]),
            grad_b: Tensor::zeros(vec![fan_out]),
            cache: None,
        }
    }

    /// Input width.
    #[must_use]
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Output width.
    #[must_use]
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.len(), self.fan_in, "dense input width mismatch");
        if train {
            self.cache = Some(input.clone());
        }
        let x = input.as_slice();
        let w = self.weights.as_slice();
        let b = self.bias.as_slice();
        let mut out = vec![0.0f32; self.fan_out];
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &w[o * self.fan_in..(o + 1) * self.fan_in];
            let mut acc = b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            *out_v = acc;
        }
        Tensor::from_vec(vec![self.fan_out], out).expect("sized")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DnnError> {
        let x = self
            .cache
            .as_ref()
            .ok_or(DnnError::BackwardBeforeForward { layer: "dense" })?;
        assert_eq!(grad_out.len(), self.fan_out, "dense grad width mismatch");
        let g = grad_out.as_slice();
        let xs = x.as_slice();
        let w = self.weights.as_slice();
        // Parameter gradients.
        {
            let gw = self.grad_w.as_mut_slice();
            for (o, &go) in g.iter().enumerate() {
                if go == 0.0 {
                    continue;
                }
                let row = &mut gw[o * self.fan_in..(o + 1) * self.fan_in];
                for (gwi, &xi) in row.iter_mut().zip(xs) {
                    *gwi += go * xi;
                }
            }
            let gb = self.grad_b.as_mut_slice();
            for (gbi, &go) in gb.iter_mut().zip(g) {
                *gbi += go;
            }
        }
        // Input gradient: Wᵀ·g.
        let mut gin = vec![0.0f32; self.fan_in];
        for (o, &go) in g.iter().enumerate() {
            if go == 0.0 {
                continue;
            }
            let row = &w[o * self.fan_in..(o + 1) * self.fan_in];
            for (gi, &wi) in gin.iter_mut().zip(row) {
                *gi += wi * go;
            }
        }
        Tensor::from_vec(vec![self.fan_in], gin)
    }

    fn apply_gradients(&mut self, lr: f32, batch: usize) {
        let scale = lr / batch.max(1) as f32;
        for (w, g) in self
            .weights
            .as_mut_slice()
            .iter_mut()
            .zip(self.grad_w.as_slice())
        {
            *w -= scale * g;
        }
        for (b, g) in self
            .bias
            .as_mut_slice()
            .iter_mut()
            .zip(self.grad_b.as_slice())
        {
            *b -= scale * g;
        }
        self.grad_w = Tensor::zeros(vec![self.fan_out, self.fan_in]);
        self.grad_b = Tensor::zeros(vec![self.fan_out]);
    }

    fn weights(&self) -> Option<&Tensor> {
        Some(&self.weights)
    }

    fn weights_mut(&mut self) -> Option<&mut Tensor> {
        Some(&mut self.weights)
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    #[test]
    fn forward_matches_manual_product() {
        let mut fc = Dense::new(2, 2, &mut rng());
        // Overwrite with known weights.
        fc.weights_mut()
            .unwrap()
            .as_mut_slice()
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let y = fc.forward(&Tensor::from_vec(vec![2], vec![1.0, -1.0]).unwrap(), false);
        assert_eq!(y.as_slice(), &[-1.0, -1.0]);
    }

    #[test]
    fn gradient_check_numerical() {
        // Finite-difference check on a tiny layer.
        let mut fc = Dense::new(3, 2, &mut rng());
        let x = Tensor::from_vec(vec![3], vec![0.5, -0.3, 0.8]).unwrap();
        let upstream = Tensor::from_vec(vec![2], vec![1.0, -0.5]).unwrap();

        let _ = fc.forward(&x, true);
        let gin = fc.backward(&upstream).unwrap();

        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let yp = fc.forward(&xp, false);
            let ym = fc.forward(&xm, false);
            let loss = |y: &Tensor| {
                y.as_slice()
                    .iter()
                    .zip(upstream.as_slice())
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
            };
            let numeric = (loss(&yp) - loss(&ym)) / (2.0 * eps);
            assert!(
                (numeric - gin.as_slice()[i]).abs() < 1e-2,
                "grad[{i}]: numeric {numeric} vs analytic {}",
                gin.as_slice()[i]
            );
        }
    }

    #[test]
    fn sgd_reduces_simple_loss() {
        // Learn y = [1, -1] from x = [1].
        let mut fc = Dense::new(1, 2, &mut rng());
        let x = Tensor::from_vec(vec![1], vec![1.0]).unwrap();
        let target = [1.0f32, -1.0];
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            let y = fc.forward(&x, true);
            let grad: Vec<f32> = y
                .as_slice()
                .iter()
                .zip(&target)
                .map(|(a, t)| a - t)
                .collect();
            let loss: f32 = grad.iter().map(|g| g * g).sum::<f32>() / 2.0;
            fc.backward(&Tensor::from_vec(vec![2], grad).unwrap())
                .unwrap();
            fc.apply_gradients(0.1, 1);
            last = loss;
        }
        assert!(last < 1e-4, "loss {last}");
    }

    #[test]
    fn apply_gradients_clears_accumulators() {
        let mut fc = Dense::new(2, 2, &mut rng());
        let x = Tensor::from_vec(vec![2], vec![1.0, 1.0]).unwrap();
        let _ = fc.forward(&x, true);
        let _ = fc
            .backward(&Tensor::from_vec(vec![2], vec![1.0, 1.0]).unwrap())
            .unwrap();
        let before = fc.weights().unwrap().clone();
        fc.apply_gradients(0.0, 1); // lr 0: weights unchanged, grads cleared
        assert_eq!(fc.weights().unwrap(), &before);
        let w0 = before.clone();
        // A second apply with lr > 0 must be a no-op now (grads cleared).
        fc.apply_gradients(1.0, 1);
        assert_eq!(fc.weights().unwrap(), &w0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_input_width_panics() {
        let mut fc = Dense::new(3, 2, &mut rng());
        let _ = fc.forward(&Tensor::zeros(vec![4]), false);
    }
}
