//! Crossbar-aware weight pruning.
//!
//! §V.A: "We implement a crossbar-aware weight and activation pruning
//! to obtain highly sparse pre-trained DNN models." OU-based
//! computation skips *rows* of zeros inside an OU, so pruning is most
//! effective when it zeroes entire fan-in rows — that is what
//! [`prune_rows`] does. [`prune_magnitude`] is the unstructured
//! baseline.

use crate::tensor::Tensor;

/// Zeroes the smallest-magnitude `sparsity` fraction of individual
/// weights (unstructured magnitude pruning). Returns the number of
/// weights zeroed.
///
/// # Panics
///
/// Panics unless `sparsity ∈ [0, 1]`.
pub fn prune_magnitude(weights: &mut Tensor, sparsity: f64) -> usize {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let n = weights.len();
    let k = ((n as f64) * sparsity).round() as usize;
    if k == 0 {
        return 0;
    }
    let mut magnitudes: Vec<(f32, usize)> = weights
        .as_slice()
        .iter()
        .enumerate()
        .map(|(i, &w)| (w.abs(), i))
        .collect();
    magnitudes.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let slice = weights.as_mut_slice();
    for &(_, idx) in magnitudes.iter().take(k) {
        slice[idx] = 0.0;
    }
    k
}

/// Zeroes entire fan-in rows of a `rows × cols` weight matrix by row
/// L1 norm until `sparsity` of the rows are zero (crossbar-aware
/// structured pruning). Returns the number of rows zeroed.
///
/// # Panics
///
/// Panics unless `weights` is rank 2 and `sparsity ∈ [0, 1]`.
pub fn prune_rows(weights: &mut Tensor, sparsity: f64) -> usize {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let shape = weights.shape().to_vec();
    assert_eq!(shape.len(), 2, "row pruning expects a rank-2 matrix");
    let (rows, cols) = (shape[0], shape[1]);
    let k = ((rows as f64) * sparsity).round() as usize;
    if k == 0 {
        return 0;
    }
    let mut norms: Vec<(f32, usize)> = (0..rows)
        .map(|r| {
            let norm: f32 = weights.as_slice()[r * cols..(r + 1) * cols]
                .iter()
                .map(|w| w.abs())
                .sum();
            (norm, r)
        })
        .collect();
    norms.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let slice = weights.as_mut_slice();
    for &(_, r) in norms.iter().take(k) {
        for v in &mut slice[r * cols..(r + 1) * cols] {
            *v = 0.0;
        }
    }
    k
}

/// The fraction of fully-zero rows in a rank-2 weight matrix — the
/// sparsity feature Φ₂ the Odin policy consumes.
///
/// # Panics
///
/// Panics unless `weights` is rank 2.
#[must_use]
pub fn row_sparsity(weights: &Tensor) -> f64 {
    let shape = weights.shape();
    assert_eq!(shape.len(), 2, "row sparsity expects a rank-2 matrix");
    let (rows, cols) = (shape[0], shape[1]);
    let zero_rows = (0..rows)
        .filter(|&r| {
            weights.as_slice()[r * cols..(r + 1) * cols]
                .iter()
                .all(|&w| w == 0.0)
        })
        .count();
    zero_rows as f64 / rows as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn matrix(rows: usize, cols: usize) -> Tensor {
        let data: Vec<f32> = (0..rows * cols).map(|i| (i + 1) as f32 / 10.0).collect();
        Tensor::from_vec(vec![rows, cols], data).unwrap()
    }

    #[test]
    fn magnitude_pruning_zeroes_smallest() {
        let mut w = matrix(2, 4);
        let zeroed = prune_magnitude(&mut w, 0.5);
        assert_eq!(zeroed, 4);
        // Smallest four entries (0.1..0.4) gone, largest kept.
        assert_eq!(&w.as_slice()[..4], &[0.0; 4]);
        assert!(w.as_slice()[4..].iter().all(|&v| v > 0.0));
    }

    #[test]
    fn row_pruning_zeroes_whole_rows() {
        let mut w = matrix(4, 3);
        let rows = prune_rows(&mut w, 0.5);
        assert_eq!(rows, 2);
        assert!((row_sparsity(&w) - 0.5).abs() < 1e-12);
        // The two lowest-norm rows (first two) are fully zero.
        assert!(w.as_slice()[..6].iter().all(|&v| v == 0.0));
        assert!(w.as_slice()[6..].iter().all(|&v| v != 0.0));
    }

    #[test]
    fn zero_sparsity_is_noop() {
        let mut w = matrix(3, 3);
        let orig = w.clone();
        assert_eq!(prune_magnitude(&mut w, 0.0), 0);
        assert_eq!(prune_rows(&mut w, 0.0), 0);
        assert_eq!(w, orig);
        assert_eq!(row_sparsity(&w), 0.0);
    }

    #[test]
    fn full_sparsity_kills_everything() {
        let mut w = matrix(3, 3);
        prune_rows(&mut w, 1.0);
        assert_eq!(row_sparsity(&w), 1.0);
        assert!(w.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "[0,1]")]
    fn bad_sparsity_panics() {
        let mut w = matrix(2, 2);
        let _ = prune_magnitude(&mut w, -0.1);
    }

    #[test]
    #[should_panic(expected = "rank-2")]
    fn row_sparsity_needs_matrix() {
        let _ = row_sparsity(&Tensor::zeros(vec![4]));
    }

    proptest! {
        #[test]
        fn row_sparsity_matches_request(
            rows in 2usize..40, cols in 1usize..10, tenths in 0usize..=10
        ) {
            let sparsity = tenths as f64 / 10.0;
            let mut w = matrix(rows, cols);
            let pruned = prune_rows(&mut w, sparsity);
            prop_assert_eq!(pruned, ((rows as f64) * sparsity).round() as usize);
            let measured = row_sparsity(&w);
            prop_assert!((measured - pruned as f64 / rows as f64).abs() < 1e-12);
        }

        #[test]
        fn magnitude_pruning_never_increases_norm(
            rows in 1usize..10, cols in 1usize..10, tenths in 0usize..=10
        ) {
            let mut w = matrix(rows, cols);
            let before: f32 = w.as_slice().iter().map(|v| v.abs()).sum();
            prune_magnitude(&mut w, tenths as f64 / 10.0);
            let after: f32 = w.as_slice().iter().map(|v| v.abs()).sum();
            prop_assert!(after <= before);
        }
    }
}
