//! From-scratch DNN stack for the Odin reproduction.
//!
//! Two halves live here:
//!
//! 1. **A functional half** — [`Tensor`], trainable [`layers`], the
//!    [`Sequential`] container, SGD [`Trainer`], and synthetic
//!    [`dataset`]s. This is what the accuracy experiments (Fig. 7) run:
//!    small CNNs trained on synthetic Gaussian-blob image data, then
//!    evaluated with non-ideality noise injected into their weights
//!    (the PytorX substitution described in DESIGN.md).
//!
//! 2. **A descriptive half** — [`LayerDescriptor`] /
//!    [`NetworkDescriptor`] and the [`zoo`] of the nine paper models
//!    (ResNet18/34/50, VGG11/16/19, GoogLeNet, DenseNet121, ViT) with
//!    shape-accurate layer geometry and crossbar-aware sparsity
//!    profiles. Odin's analytical models consume only these features
//!    (layer id, sparsity, kernel size, weight counts), so the
//!    descriptors exercise the full decision path without trained
//!    weights.
//!
//! # Examples
//!
//! ```
//! use odin_dnn::zoo;
//!
//! let net = zoo::resnet18(zoo::Dataset::Cifar10);
//! assert_eq!(net.layers().len(), 21); // incl. downsample convs + FC
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod dataset;
pub mod layers;
pub mod zoo;

mod descriptor;
mod error;
mod model;
mod pruning;
mod tensor;
mod train;

pub use descriptor::{default_sensitivity, LayerDescriptor, LayerKind, NetworkDescriptor};
pub use error::DnnError;
pub use model::Sequential;
pub use pruning::{prune_magnitude, prune_rows, row_sparsity};
pub use tensor::Tensor;
pub use train::{NoiseSpec, Trainer, TrainerConfig};
