//! A minimal dense tensor.

use serde::{Deserialize, Serialize};

use crate::error::DnnError;

/// A dense row-major `f32` tensor of arbitrary rank.
///
/// Deliberately small: just what the functional DNN half needs —
/// shape-checked construction, element access, and map/zip helpers.
/// Heavy math (conv, matmul) lives in the layer implementations where
/// the loop structure is explicit.
///
/// # Examples
///
/// ```
/// use odin_dnn::Tensor;
///
/// let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect())?;
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.get(&[1, 2]), 5.0);
/// # Ok::<(), odin_dnn::DnnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// An all-zeros tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape has a zero dimension.
    #[must_use]
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        assert!(n > 0, "tensor shape {shape:?} has a zero dimension");
        Self {
            data: vec![0.0; n],
            shape,
        }
    }

    /// Wraps existing data in a shape.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when `data.len()` differs
    /// from the shape's element count.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, DnnError> {
        let n: usize = shape.iter().product();
        if n != data.len() {
            return Err(DnnError::ShapeMismatch {
                expected: shape,
                got: vec![data.len()],
            });
        }
        Ok(Self { shape, data })
    }

    /// The tensor shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for a tensor with no elements (cannot be constructed, so
    /// always `false`; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat read-only view of the data.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.shape.len(),
            "index rank {} != tensor rank {}",
            index.len(),
            self.shape.len()
        );
        let mut off = 0;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(
                ix < dim,
                "index {ix} out of bounds for axis {i} (dim {dim})"
            );
            off = off * dim + ix;
        }
        off
    }

    /// The element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds indices.
    #[must_use]
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds indices.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    /// A new tensor with `f` applied elementwise.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Reinterprets the data under a new shape with the same element
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when element counts differ.
    pub fn reshape(&self, shape: Vec<usize>) -> Result<Self, DnnError> {
        Self::from_vec(shape, self.data.clone())
    }

    /// The index of the maximum element (ties broken by first
    /// occurrence) — the classifier decision.
    #[must_use]
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate().skip(1) {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros(vec![2, 2, 2]);
        assert_eq!(t.len(), 8);
        assert!(!t.is_empty());
        t.set(&[1, 0, 1], 7.0);
        assert_eq!(t.get(&[1, 0, 1]), 7.0);
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn row_major_layout() {
        let t = Tensor::from_vec(vec![2, 3], vec![0., 1., 2., 3., 4., 5.]).unwrap();
        assert_eq!(t.get(&[0, 2]), 2.0);
        assert_eq!(t.get(&[1, 0]), 3.0);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 3]).is_err());
    }

    #[test]
    fn map_and_reshape() {
        let t = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]).unwrap();
        let doubled = t.map(|v| v * 2.0);
        assert_eq!(doubled.as_slice(), &[2., 4., 6., 8.]);
        let flat = t.reshape(vec![4]).unwrap();
        assert_eq!(flat.shape(), &[4]);
        assert!(t.reshape(vec![3]).is_err());
    }

    #[test]
    fn argmax_and_ties() {
        let t = Tensor::from_vec(vec![4], vec![0.1, 0.9, 0.9, 0.2]).unwrap();
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_panics() {
        let t = Tensor::zeros(vec![2, 2]);
        let _ = t.get(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dim_panics() {
        let _ = Tensor::zeros(vec![2, 0]);
    }

    proptest! {
        #[test]
        fn set_get_roundtrip(
            a in 1usize..5, b in 1usize..5, c in 1usize..5,
            v in -100.0f32..100.0
        ) {
            let mut t = Tensor::zeros(vec![a, b, c]);
            t.set(&[a - 1, b - 1, c - 1], v);
            prop_assert_eq!(t.get(&[a - 1, b - 1, c - 1]), v);
        }
    }
}
