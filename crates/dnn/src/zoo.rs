//! The model zoo: shape-accurate descriptors of the nine paper
//! workloads.
//!
//! §V.A evaluates ResNet18, VGG11, GoogLeNet, DenseNet121 and a vision
//! transformer on CIFAR-10; ResNet34 and VGG16 on CIFAR-100; ResNet50
//! and VGG19 on TinyImageNet. The descriptors below reproduce each
//! model's MVM-bearing layers (convolutions including residual
//! downsample projections, attention/MLP projections, classifier
//! heads) with the canonical channel progressions, adapted to the
//! dataset's input geometry the way CIFAR variants of these networks
//! are.
//!
//! Sparsity comes from a deterministic per-layer profile emulating the
//! crossbar-aware pruning of §V.A (highly sparse, varying 30–90 %
//! across layers as in Fig. 3); sensitivity follows
//! [`crate::default_sensitivity`] (early layers matter most).

use crate::descriptor::{default_sensitivity, LayerDescriptor, LayerKind, NetworkDescriptor};

/// The image-classification datasets of §V.A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Dataset {
    /// CIFAR-10: 32×32×3, 10 classes.
    Cifar10,
    /// CIFAR-100: 32×32×3, 100 classes.
    Cifar100,
    /// TinyImageNet: 64×64×3, 200 classes.
    TinyImageNet,
}

impl Dataset {
    /// Number of classes.
    #[must_use]
    pub fn classes(self) -> usize {
        match self {
            Dataset::Cifar10 => 10,
            Dataset::Cifar100 => 100,
            Dataset::TinyImageNet => 200,
        }
    }

    /// Input side length (square images).
    #[must_use]
    pub fn input_side(self) -> usize {
        match self {
            Dataset::Cifar10 | Dataset::Cifar100 => 32,
            Dataset::TinyImageNet => 64,
        }
    }

    /// Input channels (RGB).
    #[must_use]
    pub fn input_channels(self) -> usize {
        3
    }

    /// Lower-case dataset name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Cifar10 => "cifar10",
            Dataset::Cifar100 => "cifar100",
            Dataset::TinyImageNet => "tinyimagenet",
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Incrementally builds a network, tracking spatial extent and input
/// channels.
struct ZooBuilder {
    layers: Vec<(String, LayerKind, usize)>,
    side: usize,
    channels: usize,
}

impl ZooBuilder {
    fn new(dataset: Dataset) -> Self {
        Self {
            layers: Vec::new(),
            side: dataset.input_side(),
            channels: dataset.input_channels(),
        }
    }

    /// Adds a stride-1 same-padding convolution.
    fn conv(&mut self, name: impl Into<String>, out_channels: usize, kernel: usize) -> &mut Self {
        self.layers.push((
            name.into(),
            LayerKind::Conv {
                kernel,
                in_channels: self.channels,
                out_channels,
            },
            self.side * self.side,
        ));
        self.channels = out_channels;
        self
    }

    /// Adds a stride-2 convolution (halves the spatial extent).
    fn conv_s2(
        &mut self,
        name: impl Into<String>,
        out_channels: usize,
        kernel: usize,
    ) -> &mut Self {
        self.side = (self.side / 2).max(1);
        self.conv(name, out_channels, kernel)
    }

    /// Adds a projection convolution with explicit input channels
    /// (inception branches read the module input, not the running
    /// channel count).
    fn branch_conv(
        &mut self,
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
    ) -> &mut Self {
        self.layers.push((
            name.into(),
            LayerKind::Conv {
                kernel,
                in_channels,
                out_channels,
            },
            self.side * self.side,
        ));
        self
    }

    /// Sets the running channel count (after concatenations).
    fn set_channels(&mut self, channels: usize) -> &mut Self {
        self.channels = channels;
        self
    }

    /// 2×2 pooling (no weights; just halves the extent).
    fn pool(&mut self) -> &mut Self {
        self.side = (self.side / 2).max(1);
        self
    }

    /// Global average pool: collapses the spatial extent to 1×1.
    fn global_pool(&mut self) -> &mut Self {
        self.side = 1;
        self
    }

    /// Adds a fully connected layer reading the flattened activations.
    fn linear(&mut self, name: impl Into<String>, outputs: usize) -> &mut Self {
        let inputs = self.channels * self.side * self.side;
        self.layers
            .push((name.into(), LayerKind::Linear { inputs, outputs }, 1));
        self.channels = outputs;
        self.side = 1;
        self
    }

    /// Adds a token-wise linear projection (ViT): one MVM per token.
    fn token_linear(
        &mut self,
        name: impl Into<String>,
        inputs: usize,
        outputs: usize,
        tokens: usize,
    ) -> &mut Self {
        self.layers
            .push((name.into(), LayerKind::Linear { inputs, outputs }, tokens));
        self
    }

    /// Finalizes with the deterministic sparsity profile.
    fn finish(self, name: &str, dataset: Dataset, base_sparsity: f64) -> NetworkDescriptor {
        let n = self.layers.len();
        // ReLU-dominated CNNs see ~40–60 % zero activations; the first
        // layer reads the dense input image, transformers (GELU) far
        // less.
        let act_base = if name == "vit" { 0.1 } else { 0.5 };
        let layers = self
            .layers
            .into_iter()
            .enumerate()
            .map(|(j, (lname, kind, positions))| {
                let wobble = 0.25 * (2.4 * j as f64 + base_sparsity * 10.0).sin();
                let sparsity = (base_sparsity + wobble).clamp(0.05, 0.95);
                let act = if j == 0 {
                    0.0
                } else {
                    (act_base + 0.1 * (1.7 * j as f64).sin()).clamp(0.0, 0.9)
                };
                LayerDescriptor::new(
                    j,
                    lname,
                    kind,
                    positions,
                    sparsity,
                    default_sensitivity(j, n),
                )
                .with_activation_sparsity(act)
            })
            .collect();
        NetworkDescriptor::new(name.to_string(), dataset.name().to_string(), layers)
    }
}

/// VGG-style convolution stack with the given per-stage channel plan.
fn vgg(name: &str, dataset: Dataset, stages: &[&[usize]], base_sparsity: f64) -> NetworkDescriptor {
    let mut b = ZooBuilder::new(dataset);
    let mut idx = 0;
    for stage in stages {
        for &ch in *stage {
            b.conv(format!("conv{idx}"), ch, 3);
            idx += 1;
        }
        b.pool();
    }
    b.linear("fc", dataset.classes());
    b.finish(name, dataset, base_sparsity)
}

/// VGG11 (8 convs + classifier).
#[must_use]
pub fn vgg11(dataset: Dataset) -> NetworkDescriptor {
    vgg(
        "vgg11",
        dataset,
        &[&[64], &[128], &[256, 256], &[512, 512], &[512, 512]],
        0.62,
    )
}

/// VGG16 (13 convs + classifier).
#[must_use]
pub fn vgg16(dataset: Dataset) -> NetworkDescriptor {
    vgg(
        "vgg16",
        dataset,
        &[
            &[64, 64],
            &[128, 128],
            &[256, 256, 256],
            &[512, 512, 512],
            &[512, 512, 512],
        ],
        0.65,
    )
}

/// VGG19 (16 convs + classifier).
#[must_use]
pub fn vgg19(dataset: Dataset) -> NetworkDescriptor {
    vgg(
        "vgg19",
        dataset,
        &[
            &[64, 64],
            &[128, 128],
            &[256, 256, 256, 256],
            &[512, 512, 512, 512],
            &[512, 512, 512, 512],
        ],
        0.66,
    )
}

/// A ResNet basic-block stage: `blocks` blocks of two 3×3 convs, with
/// a stride-2 first conv and a 1×1 downsample projection when the
/// stage changes resolution/width.
fn resnet_basic_stage(
    b: &mut ZooBuilder,
    stage: usize,
    blocks: usize,
    channels: usize,
    downsample: bool,
) {
    for block in 0..blocks {
        let tag = format!("s{stage}b{block}");
        if block == 0 && downsample {
            let in_ch = b.channels;
            b.conv_s2(format!("{tag}_conv1"), channels, 3);
            b.conv(format!("{tag}_conv2"), channels, 3);
            b.branch_conv(format!("{tag}_down"), in_ch, channels, 1);
        } else {
            b.conv(format!("{tag}_conv1"), channels, 3);
            b.conv(format!("{tag}_conv2"), channels, 3);
        }
    }
}

/// ResNet18 for CIFAR-style inputs: 21 MVM layers (Fig. 3's count),
/// including the three downsample projections and the classifier.
#[must_use]
pub fn resnet18(dataset: Dataset) -> NetworkDescriptor {
    let mut b = ZooBuilder::new(dataset);
    b.conv("conv1", 64, 3);
    resnet_basic_stage(&mut b, 1, 2, 64, false);
    resnet_basic_stage(&mut b, 2, 2, 128, true);
    resnet_basic_stage(&mut b, 3, 2, 256, true);
    resnet_basic_stage(&mut b, 4, 2, 512, true);
    b.global_pool();
    b.linear("fc", dataset.classes());
    b.finish("resnet18", dataset, 0.58)
}

/// ResNet34: 37 MVM layers.
#[must_use]
pub fn resnet34(dataset: Dataset) -> NetworkDescriptor {
    let mut b = ZooBuilder::new(dataset);
    b.conv("conv1", 64, 3);
    resnet_basic_stage(&mut b, 1, 3, 64, false);
    resnet_basic_stage(&mut b, 2, 4, 128, true);
    resnet_basic_stage(&mut b, 3, 6, 256, true);
    resnet_basic_stage(&mut b, 4, 3, 512, true);
    b.global_pool();
    b.linear("fc", dataset.classes());
    b.finish("resnet34", dataset, 0.6)
}

/// A ResNet bottleneck stage (1×1 → 3×3 → 1×1 with 4× expansion).
fn resnet_bottleneck_stage(
    b: &mut ZooBuilder,
    stage: usize,
    blocks: usize,
    width: usize,
    stride2: bool,
) {
    let out = width * 4;
    for block in 0..blocks {
        let tag = format!("s{stage}b{block}");
        let in_ch = b.channels;
        if block == 0 {
            if stride2 {
                b.conv_s2(format!("{tag}_conv1"), width, 1);
            } else {
                b.conv(format!("{tag}_conv1"), width, 1);
            }
            b.conv(format!("{tag}_conv2"), width, 3);
            b.conv(format!("{tag}_conv3"), out, 1);
            b.branch_conv(format!("{tag}_down"), in_ch, out, 1);
        } else {
            b.conv(format!("{tag}_conv1"), width, 1);
            b.conv(format!("{tag}_conv2"), width, 3);
            b.conv(format!("{tag}_conv3"), out, 1);
        }
        b.set_channels(out);
    }
}

/// ResNet50: 54 MVM layers.
#[must_use]
pub fn resnet50(dataset: Dataset) -> NetworkDescriptor {
    let mut b = ZooBuilder::new(dataset);
    b.conv("conv1", 64, 3);
    resnet_bottleneck_stage(&mut b, 1, 3, 64, false);
    resnet_bottleneck_stage(&mut b, 2, 4, 128, true);
    resnet_bottleneck_stage(&mut b, 3, 6, 256, true);
    resnet_bottleneck_stage(&mut b, 4, 3, 512, true);
    b.global_pool();
    b.linear("fc", dataset.classes());
    b.finish("resnet50", dataset, 0.62)
}

/// One GoogLeNet inception module: `(b1, b2_in, b2, b3_in, b3, pool)`.
type Inception = (usize, usize, usize, usize, usize, usize);

/// GoogLeNet (CIFAR-adapted stem): 58 MVM layers.
#[must_use]
pub fn googlenet(dataset: Dataset) -> NetworkDescriptor {
    let mut b = ZooBuilder::new(dataset);
    b.conv("conv1", 64, 3);
    b.conv("conv2", 64, 1);
    b.conv("conv3", 192, 3);
    b.pool();
    let modules: [(&str, Inception); 9] = [
        ("3a", (64, 96, 128, 16, 32, 32)),
        ("3b", (128, 128, 192, 32, 96, 64)),
        ("4a", (192, 96, 208, 16, 48, 64)),
        ("4b", (160, 112, 224, 24, 64, 64)),
        ("4c", (128, 128, 256, 24, 64, 64)),
        ("4d", (112, 144, 288, 32, 64, 64)),
        ("4e", (256, 160, 320, 32, 128, 128)),
        ("5a", (256, 160, 320, 32, 128, 128)),
        ("5b", (384, 192, 384, 48, 128, 128)),
    ];
    for (name, (b1, b2_in, b2, b3_in, b3, pool_proj)) in modules {
        if name == "4a" || name == "5a" {
            b.pool();
        }
        let in_ch = b.channels;
        b.branch_conv(format!("inc{name}_b1"), in_ch, b1, 1);
        b.branch_conv(format!("inc{name}_b2r"), in_ch, b2_in, 1);
        b.branch_conv(format!("inc{name}_b2"), b2_in, b2, 3);
        b.branch_conv(format!("inc{name}_b3r"), in_ch, b3_in, 1);
        b.branch_conv(format!("inc{name}_b3"), b3_in, b3, 5);
        b.branch_conv(format!("inc{name}_pool"), in_ch, pool_proj, 1);
        b.set_channels(b1 + b2 + b3 + pool_proj);
    }
    b.global_pool();
    b.linear("fc", dataset.classes());
    b.finish("googlenet", dataset, 0.55)
}

/// DenseNet121 (growth 32, blocks 6/12/24/16): 121 MVM layers.
#[must_use]
pub fn densenet121(dataset: Dataset) -> NetworkDescriptor {
    const GROWTH: usize = 32;
    let mut b = ZooBuilder::new(dataset);
    b.conv("conv1", 64, 3);
    let mut channels = 64;
    for (stage, block_layers) in [6usize, 12, 24, 16].into_iter().enumerate() {
        for l in 0..block_layers {
            b.branch_conv(format!("d{stage}l{l}_1x1"), channels, 4 * GROWTH, 1);
            b.branch_conv(format!("d{stage}l{l}_3x3"), 4 * GROWTH, GROWTH, 3);
            channels += GROWTH;
        }
        b.set_channels(channels);
        if stage < 3 {
            channels /= 2;
            b.conv(format!("trans{stage}"), channels, 1);
            b.pool();
        }
    }
    b.global_pool();
    b.linear("fc", dataset.classes());
    b.finish("densenet121", dataset, 0.57)
}

/// A compact vision transformer (4×4 patches, dim 256, depth 7):
/// 30 MVM layers.
#[must_use]
pub fn vit(dataset: Dataset) -> NetworkDescriptor {
    const DIM: usize = 256;
    const DEPTH: usize = 7;
    let patch = 4;
    let side = dataset.input_side() / patch;
    let tokens = side * side;
    let patch_dim = dataset.input_channels() * patch * patch;
    let mut b = ZooBuilder::new(dataset);
    b.token_linear("patch_embed", patch_dim, DIM, tokens);
    for blk in 0..DEPTH {
        b.token_linear(format!("blk{blk}_qkv"), DIM, 3 * DIM, tokens);
        b.token_linear(format!("blk{blk}_proj"), DIM, DIM, tokens);
        b.token_linear(format!("blk{blk}_fc1"), DIM, 4 * DIM, tokens);
        b.token_linear(format!("blk{blk}_fc2"), 4 * DIM, DIM, tokens);
    }
    b.set_channels(DIM);
    b.side = 1;
    b.linear("head", dataset.classes());
    b.finish("vit", dataset, 0.5)
}

/// The nine `(model, dataset)` workloads of §V.A, in Fig. 8 order.
#[must_use]
pub fn paper_workloads() -> Vec<NetworkDescriptor> {
    vec![
        resnet18(Dataset::Cifar10),
        vgg11(Dataset::Cifar10),
        googlenet(Dataset::Cifar10),
        densenet121(Dataset::Cifar10),
        vit(Dataset::Cifar10),
        resnet34(Dataset::Cifar100),
        vgg16(Dataset::Cifar100),
        resnet50(Dataset::TinyImageNet),
        vgg19(Dataset::TinyImageNet),
    ]
}

/// Every zoo model on a given dataset — used for leave-one-out offline
/// policy training (§V.A trains the offline policy on N−1 model
/// families and adapts online to the held-out one).
#[must_use]
pub fn all_models(dataset: Dataset) -> Vec<NetworkDescriptor> {
    vec![
        resnet18(dataset),
        resnet34(dataset),
        resnet50(dataset),
        vgg11(dataset),
        vgg16(dataset),
        vgg19(dataset),
        googlenet(dataset),
        densenet121(dataset),
        vit(dataset),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts_match_paper() {
        assert_eq!(resnet18(Dataset::Cifar10).layers().len(), 21);
        assert_eq!(resnet34(Dataset::Cifar100).layers().len(), 37);
        assert_eq!(resnet50(Dataset::TinyImageNet).layers().len(), 54);
        assert_eq!(vgg11(Dataset::Cifar10).layers().len(), 9);
        assert_eq!(vgg16(Dataset::Cifar100).layers().len(), 14);
        assert_eq!(vgg19(Dataset::TinyImageNet).layers().len(), 17);
        assert_eq!(googlenet(Dataset::Cifar10).layers().len(), 58);
        assert_eq!(densenet121(Dataset::Cifar10).layers().len(), 121);
        assert_eq!(vit(Dataset::Cifar10).layers().len(), 30);
    }

    #[test]
    fn resnet18_weight_count_is_canonical() {
        // Torchvision ResNet18 has ~11.2 M conv+fc weights; the CIFAR
        // adaptation (3×3 stem) lands close.
        let net = resnet18(Dataset::Cifar10);
        let w = net.total_weights();
        assert!((10_500_000..11_500_000).contains(&w), "weights {w}");
    }

    #[test]
    fn vgg11_weight_count_is_cifar_scale() {
        let net = vgg11(Dataset::Cifar10);
        let w = net.total_weights();
        // CIFAR VGG11 ≈ 9.2 M conv weights + 5 k classifier.
        assert!((8_500_000..10_000_000).contains(&w), "weights {w}");
    }

    #[test]
    fn channels_flow_consistently() {
        for net in paper_workloads() {
            for pair in net.layers().windows(2) {
                // Fan-in of any layer must be producible from some
                // earlier fan-out: weak sanity — just require nonzero.
                assert!(pair[1].fan_in() > 0, "{}", pair[1].name());
            }
            assert!(net.total_weights() > 100_000, "{}", net.name());
        }
    }

    #[test]
    fn densenet_counts_to_121() {
        let net = densenet121(Dataset::Cifar10);
        // 1 stem + 116 dense convs + 3 transitions + 1 fc.
        let convs = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind(), LayerKind::Conv { .. }))
            .count();
        assert_eq!(convs, 120);
    }

    #[test]
    fn sparsity_profile_in_paper_range() {
        for net in paper_workloads() {
            for l in net.layers() {
                assert!(
                    (0.05..=0.95).contains(&l.sparsity()),
                    "{} {}",
                    net.name(),
                    l.name()
                );
            }
            let mean = net.mean_sparsity();
            assert!((0.2..0.95).contains(&mean), "{} mean {mean}", net.name());
        }
    }

    #[test]
    fn sensitivity_decreases_with_depth_in_every_model() {
        for net in paper_workloads() {
            let first = net.layers().first().unwrap().sensitivity();
            let last = net.layers().last().unwrap().sensitivity();
            assert!(first > last, "{}", net.name());
            assert!((first - 1.0).abs() < 1e-9);
            assert!((last - 0.4).abs() < 1e-9);
        }
    }

    #[test]
    fn classifier_reads_dataset_classes() {
        assert_eq!(
            resnet18(Dataset::Cifar10)
                .layers()
                .last()
                .unwrap()
                .fan_out(),
            10
        );
        assert_eq!(
            vgg16(Dataset::Cifar100).layers().last().unwrap().fan_out(),
            100
        );
        assert_eq!(
            vgg19(Dataset::TinyImageNet)
                .layers()
                .last()
                .unwrap()
                .fan_out(),
            200
        );
    }

    #[test]
    fn tinyimagenet_vgg_has_larger_classifier_fanin() {
        // 64×64 input leaves a 2×2 map after five pools.
        let fc = vgg19(Dataset::TinyImageNet);
        let fc_layer = fc.layers().last().unwrap();
        assert_eq!(fc_layer.fan_in(), 512 * 2 * 2);
        let c10 = vgg11(Dataset::Cifar10);
        assert_eq!(c10.layers().last().unwrap().fan_in(), 512);
    }

    #[test]
    fn vit_tokens_scale_with_input() {
        let c10 = vit(Dataset::Cifar10);
        assert_eq!(c10.layers()[1].output_positions(), 64);
        let tiny = vit(Dataset::TinyImageNet);
        assert_eq!(tiny.layers()[1].output_positions(), 256);
    }

    #[test]
    fn workload_list_shape() {
        let w = paper_workloads();
        assert_eq!(w.len(), 9);
        assert_eq!(all_models(Dataset::Cifar10).len(), 9);
        let names: Vec<&str> = w.iter().map(|n| n.name()).collect();
        assert!(names.contains(&"resnet18"));
        assert!(names.contains(&"vit"));
    }

    #[test]
    fn dataset_properties() {
        assert_eq!(Dataset::Cifar10.classes(), 10);
        assert_eq!(Dataset::Cifar100.classes(), 100);
        assert_eq!(Dataset::TinyImageNet.classes(), 200);
        assert_eq!(Dataset::TinyImageNet.input_side(), 64);
        assert_eq!(Dataset::Cifar10.to_string(), "cifar10");
        assert_eq!(Dataset::Cifar10.input_channels(), 3);
    }
}
