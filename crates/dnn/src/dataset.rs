//! Synthetic image-classification datasets.
//!
//! The reproduction has no network access, so CIFAR-10/100 and
//! TinyImageNet are replaced by synthetic datasets with the same class
//! counts and image geometry: each class is a Gaussian blob around a
//! class-specific spatial template, which gives a learnable but
//! non-trivial decision problem for the functional accuracy
//! experiments (Fig. 7). DESIGN.md records the substitution.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// One labelled sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The image, shaped `[channels, height, width]`.
    pub image: Tensor,
    /// The class label.
    pub label: usize,
}

/// A synthetic labelled dataset.
///
/// # Examples
///
/// ```
/// use odin_dnn::dataset::SyntheticImages;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let data = SyntheticImages::generate(4, 1, 8, 60, 0.3, &mut rng);
/// assert_eq!(data.len(), 60);
/// assert!(data.samples().iter().all(|s| s.label < 4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticImages {
    classes: usize,
    channels: usize,
    side: usize,
    samples: Vec<Sample>,
}

impl SyntheticImages {
    /// Generates `count` samples over `classes` classes of
    /// `channels × side × side` images, with additive Gaussian noise of
    /// standard deviation `noise`.
    ///
    /// Each class's template is a smooth sinusoidal pattern with a
    /// class-specific frequency and phase, so classes are separable but
    /// overlap under heavy noise.
    ///
    /// # Panics
    ///
    /// Panics if any size argument is zero or `noise` is negative.
    pub fn generate<R: Rng + ?Sized>(
        classes: usize,
        channels: usize,
        side: usize,
        count: usize,
        noise: f64,
        rng: &mut R,
    ) -> Self {
        assert!(
            classes > 0 && channels > 0 && side > 0,
            "sizes must be nonzero"
        );
        assert!(noise >= 0.0, "noise must be non-negative");
        let samples = (0..count)
            .map(|i| {
                let label = i % classes;
                let image = Self::template(label, classes, channels, side, noise, rng);
                Sample { image, label }
            })
            .collect();
        Self {
            classes,
            channels,
            side,
            samples,
        }
    }

    fn template<R: Rng + ?Sized>(
        label: usize,
        classes: usize,
        channels: usize,
        side: usize,
        noise: f64,
        rng: &mut R,
    ) -> Tensor {
        let mut img = Tensor::zeros(vec![channels, side, side]);
        let freq = 1.0 + label as f32 * 0.7;
        let phase = label as f32 * std::f32::consts::TAU / classes as f32;
        for c in 0..channels {
            for y in 0..side {
                for x in 0..side {
                    let fy = y as f32 / side as f32;
                    let fx = x as f32 / side as f32;
                    let v = ((freq * std::f32::consts::TAU * fy + phase).sin()
                        + (freq * std::f32::consts::TAU * fx + phase + c as f32).cos())
                        / 2.0;
                    let n = sample_normal(rng) as f32 * noise as f32;
                    img.set(&[c, y, x], v + n);
                }
            }
        }
        img
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Image channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Image side length.
    #[must_use]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the dataset holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Splits into `(train, test)` at `train_fraction`.
    ///
    /// # Panics
    ///
    /// Panics unless `train_fraction ∈ (0, 1)`.
    #[must_use]
    pub fn split(&self, train_fraction: f64) -> (Vec<Sample>, Vec<Sample>) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        let cut = ((self.samples.len() as f64) * train_fraction) as usize;
        let (a, b) = self.samples.split_at(cut);
        (a.to_vec(), b.to_vec())
    }
}

/// Box–Muller standard normal (keeps `rand_distr` out of the
/// dependency set).
fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::EPSILON {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(9)
    }

    #[test]
    fn generation_geometry() {
        let d = SyntheticImages::generate(10, 3, 8, 50, 0.1, &mut rng());
        assert_eq!(d.classes(), 10);
        assert_eq!(d.channels(), 3);
        assert_eq!(d.side(), 8);
        assert_eq!(d.len(), 50);
        assert!(!d.is_empty());
        for s in d.samples() {
            assert_eq!(s.image.shape(), &[3, 8, 8]);
            assert!(s.label < 10);
        }
    }

    #[test]
    fn labels_are_balanced() {
        let d = SyntheticImages::generate(5, 1, 4, 100, 0.1, &mut rng());
        let mut counts = [0usize; 5];
        for s in d.samples() {
            counts[s.label] += 1;
        }
        assert!(counts.iter().all(|&c| c == 20));
    }

    #[test]
    fn classes_are_distinguishable() {
        // Noise-free templates of different classes differ.
        let d = SyntheticImages::generate(3, 1, 8, 3, 0.0, &mut rng());
        let a = &d.samples()[0].image;
        let b = &d.samples()[1].image;
        let dist: f32 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).powi(2))
            .sum();
        assert!(dist > 0.5, "templates too close: {dist}");
    }

    #[test]
    fn noise_free_templates_are_deterministic() {
        let d1 = SyntheticImages::generate(3, 1, 8, 3, 0.0, &mut rng());
        let d2 = SyntheticImages::generate(3, 1, 8, 3, 0.0, &mut rng());
        assert_eq!(d1, d2);
    }

    #[test]
    fn split_partitions() {
        let d = SyntheticImages::generate(2, 1, 4, 100, 0.1, &mut rng());
        let (train, test) = d.split(0.8);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
    }

    #[test]
    #[should_panic(expected = "(0, 1)")]
    fn bad_split_panics() {
        let d = SyntheticImages::generate(2, 1, 4, 10, 0.1, &mut rng());
        let _ = d.split(1.0);
    }
}
