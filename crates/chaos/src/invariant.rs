//! Reusable invariant checkers asserted by the chaos harnesses.
//!
//! Each checker is a pure function over plain data returning
//! `Result<(), InvariantError>`; [`InvariantSet`] accumulates violations so
//! a sweep can report every broken invariant instead of stopping at the
//! first. The checkers encode the workspace's standing contracts:
//!
//! * **accounting balance** — every serve request gets exactly one typed
//!   outcome, so outcome counts must sum to the admitted total;
//! * **digest equality** — two runs that claim determinism must agree bit
//!   for bit;
//! * **ladder monotonicity** — a degradation ladder only ever descends;
//! * **conservation** — endurance spend must balance the ledger;
//! * **commit order** — executor rounds commit in submission order.

use std::fmt;

/// A named invariant violation with a human-readable detail string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantError {
    /// Which invariant broke (stable machine-readable name).
    pub name: &'static str,
    /// What was observed vs. expected.
    pub detail: String,
}

impl fmt::Display for InvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant `{}` violated: {}", self.name, self.detail)
    }
}

impl std::error::Error for InvariantError {}

fn violated(name: &'static str, detail: String) -> Result<(), InvariantError> {
    Err(InvariantError { name, detail })
}

/// Accounting balance: `parts` must sum exactly to `total`.
///
/// Used for serve outcome accounting (admitted = served + degraded +
/// deadline-missed + shed + failed) and for campaign run accounting
/// (scheduled = committed + skipped + quarantined).
pub fn check_balance(
    name: &'static str,
    total: u64,
    parts: &[(&str, u64)],
) -> Result<(), InvariantError> {
    let sum: u64 = parts.iter().map(|&(_, v)| v).sum();
    if sum != total {
        let breakdown: Vec<String> = parts.iter().map(|&(k, v)| format!("{k}={v}")).collect();
        return violated(
            name,
            format!(
                "parts sum {} != total {} ({})",
                sum,
                total,
                breakdown.join(", ")
            ),
        );
    }
    Ok(())
}

/// Digest equality: two runs that claim determinism must agree bit for bit.
pub fn check_digest_equal(
    name: &'static str,
    expected: u64,
    actual: u64,
) -> Result<(), InvariantError> {
    if expected != actual {
        return violated(
            name,
            format!("digest {actual:#018x} != expected {expected:#018x}"),
        );
    }
    Ok(())
}

/// Ladder monotonicity: `levels` must be non-increasing (a degradation
/// ladder only descends within a run).
pub fn check_non_increasing(name: &'static str, levels: &[u64]) -> Result<(), InvariantError> {
    for (i, pair) in levels.windows(2).enumerate() {
        if pair[1] > pair[0] {
            return violated(
                name,
                format!(
                    "level rose from {} to {} at step {}",
                    pair[0],
                    pair[1],
                    i + 1
                ),
            );
        }
    }
    Ok(())
}

/// Conservation: `before - spent == after`, with no underflow.
///
/// Encodes the endurance-ledger law: budget never appears from nowhere.
pub fn check_conservation(
    name: &'static str,
    before: u64,
    spent: u64,
    after: u64,
) -> Result<(), InvariantError> {
    match before.checked_sub(spent) {
        Some(rest) if rest == after => Ok(()),
        Some(rest) => violated(
            name,
            format!("before {before} - spent {spent} = {rest}, but after = {after}"),
        ),
        None => violated(name, format!("spent {spent} exceeds before {before}")),
    }
}

/// Commit order: executor round results must arrive in submission order,
/// i.e. `indices` is exactly `0, 1, 2, …` (panicked slots removed upstream
/// must preserve relative order of the survivors).
pub fn check_commit_order(name: &'static str, indices: &[usize]) -> Result<(), InvariantError> {
    for pair in indices.windows(2) {
        if pair[1] <= pair[0] {
            return violated(
                name,
                format!(
                    "index {} committed after {}, out of submission order",
                    pair[1], pair[0]
                ),
            );
        }
    }
    Ok(())
}

/// All finite: a weight/counter scan must contain no NaN or infinity.
pub fn check_all_finite(name: &'static str, values: &[f64]) -> Result<(), InvariantError> {
    for (i, v) in values.iter().enumerate() {
        if !v.is_finite() {
            return violated(name, format!("value[{i}] = {v} is not finite"));
        }
    }
    Ok(())
}

/// Accumulates violations across many checks so a sweep reports everything
/// that broke, not just the first failure.
#[derive(Debug, Default)]
pub struct InvariantSet {
    violations: Vec<InvariantError>,
    checked: usize,
}

impl InvariantSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> InvariantSet {
        InvariantSet::default()
    }

    /// Record the outcome of one check.
    pub fn record(&mut self, result: Result<(), InvariantError>) {
        self.checked += 1;
        if let Err(err) = result {
            self.violations.push(err);
        }
    }

    /// How many checks have been recorded.
    #[must_use]
    pub fn checked(&self) -> usize {
        self.checked
    }

    /// The violations recorded so far.
    #[must_use]
    pub fn violations(&self) -> &[InvariantError] {
        &self.violations
    }

    /// True if every recorded check passed.
    #[must_use]
    pub fn all_held(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for InvariantSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.violations.is_empty() {
            return write!(f, "{} invariants held", self.checked);
        }
        writeln!(
            f,
            "{}/{} invariants violated:",
            self.violations.len(),
            self.checked
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_holds_and_breaks() {
        assert!(check_balance("bal", 10, &[("a", 4), ("b", 6)]).is_ok());
        let err = check_balance("bal", 10, &[("a", 4), ("b", 5)]).unwrap_err();
        assert_eq!(err.name, "bal");
        assert!(err.detail.contains("a=4"));
    }

    #[test]
    fn digest_equality() {
        assert!(check_digest_equal("digest", 1, 1).is_ok());
        assert!(check_digest_equal("digest", 1, 2).is_err());
    }

    #[test]
    fn ladder_only_descends() {
        assert!(check_non_increasing("ladder", &[5, 5, 3, 1]).is_ok());
        assert!(check_non_increasing("ladder", &[5, 3, 4]).is_err());
        assert!(check_non_increasing("ladder", &[]).is_ok());
    }

    #[test]
    fn conservation_law() {
        assert!(check_conservation("endurance", 100, 40, 60).is_ok());
        assert!(check_conservation("endurance", 100, 40, 61).is_err());
        assert!(check_conservation("endurance", 10, 40, 0).is_err());
    }

    #[test]
    fn commit_order_strictly_increasing() {
        assert!(check_commit_order("order", &[0, 1, 2, 5]).is_ok());
        assert!(check_commit_order("order", &[0, 2, 1]).is_err());
        assert!(check_commit_order("order", &[]).is_ok());
    }

    #[test]
    fn finite_scan() {
        assert!(check_all_finite("weights", &[0.0, -1.5, 3.25]).is_ok());
        assert!(check_all_finite("weights", &[0.0, f64::NAN]).is_err());
        assert!(check_all_finite("weights", &[f64::INFINITY]).is_err());
    }

    #[test]
    fn set_accumulates() {
        let mut set = InvariantSet::new();
        set.record(check_digest_equal("a", 1, 1));
        set.record(check_digest_equal("b", 1, 2));
        set.record(check_balance("c", 3, &[("x", 1)]));
        assert_eq!(set.checked(), 3);
        assert_eq!(set.violations().len(), 2);
        assert!(!set.all_held());
        let text = set.to_string();
        assert!(text.contains("2/3"));
    }
}
