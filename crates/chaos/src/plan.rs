//! Seeded, deterministic fault plans.
//!
//! A [`FaultPlan`] is a pure function from `(class, sequence)` to a
//! fire/no-fire decision. There is no shared mutable state inside the plan:
//! every injection site keeps its own monotonically increasing sequence
//! number (see [`SiteCursor`]) and asks the plan whether that particular
//! occurrence fires. Because the decision is a hash of the seed, the class
//! tag, and the sequence number, the schedule is bit-for-bit replayable
//! from the single `u64` seed regardless of thread interleaving — as long
//! as each site draws its sequence numbers deterministically.

use std::sync::atomic::{AtomicU64, Ordering};

/// splitmix64 finalizer — the workspace-standard seeded hash.
///
/// The same mixing function `odin-exec` uses for victim order and
/// `odin-core` uses for shard seeds; exported here so every chaos consumer
/// derives decision streams the same way.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Typed fault-injection sites, one variant per failure mode the plane can
/// exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultClass {
    /// Transient `OuEvaluator` evaluation error surfaced as a typed
    /// `OdinError` (retryable).
    EvalTransient,
    /// Snapshot payload written only partially before the write "crashes"
    /// (torn write).
    SnapshotTorn,
    /// Snapshot read returns fewer bytes than the file holds.
    SnapshotShortRead,
    /// The atomic tmp→final rename fails, leaving only the tmp sibling.
    SnapshotRename,
    /// Simulated `ENOSPC`: the write fails cleanly before any byte lands.
    SnapshotNoSpace,
    /// A shard task panics mid-round inside the executor.
    TaskPanic,
    /// A shard task stalls (never commits), exercising the round watchdog.
    TaskStall,
    /// Serve-side clock skew: an arrival's timestamp is dragged forward,
    /// compressing inter-arrival gaps.
    ClockSkew,
    /// Serve-side burst amplification: an arrival is duplicated into a
    /// micro-burst.
    Burst,
    /// NaN poison written into adopted MLP weights at a commit barrier.
    WeightPoison,
}

impl FaultClass {
    /// Every class, in a fixed order (stable across runs — used by sweeps
    /// and by the rate table layout).
    pub const ALL: [FaultClass; 10] = [
        FaultClass::EvalTransient,
        FaultClass::SnapshotTorn,
        FaultClass::SnapshotShortRead,
        FaultClass::SnapshotRename,
        FaultClass::SnapshotNoSpace,
        FaultClass::TaskPanic,
        FaultClass::TaskStall,
        FaultClass::ClockSkew,
        FaultClass::Burst,
        FaultClass::WeightPoison,
    ];

    /// Stable machine-readable name (used in reports and CLI flags).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::EvalTransient => "eval_transient",
            FaultClass::SnapshotTorn => "snapshot_torn",
            FaultClass::SnapshotShortRead => "snapshot_short_read",
            FaultClass::SnapshotRename => "snapshot_rename",
            FaultClass::SnapshotNoSpace => "snapshot_nospace",
            FaultClass::TaskPanic => "task_panic",
            FaultClass::TaskStall => "task_stall",
            FaultClass::ClockSkew => "clock_skew",
            FaultClass::Burst => "burst",
            FaultClass::WeightPoison => "weight_poison",
        }
    }

    /// Parse a machine-readable name back into a class.
    #[must_use]
    pub fn from_name(name: &str) -> Option<FaultClass> {
        FaultClass::ALL.iter().copied().find(|c| c.name() == name)
    }

    fn index(self) -> usize {
        match self {
            FaultClass::EvalTransient => 0,
            FaultClass::SnapshotTorn => 1,
            FaultClass::SnapshotShortRead => 2,
            FaultClass::SnapshotRename => 3,
            FaultClass::SnapshotNoSpace => 4,
            FaultClass::TaskPanic => 5,
            FaultClass::TaskStall => 6,
            FaultClass::ClockSkew => 7,
            FaultClass::Burst => 8,
            FaultClass::WeightPoison => 9,
        }
    }

    /// Per-class domain-separation tag mixed into the decision hash so two
    /// classes at the same sequence number draw independent streams.
    fn tag(self) -> u64 {
        splitmix64(0xC4A0_5EED_0000_0000 ^ self.index() as u64)
    }
}

/// A seeded, deterministic injection schedule over every [`FaultClass`].
///
/// The plan is plain data (`Clone + PartialEq`); decisions are pure. Rates
/// are probabilities in `[0, 1]` per site occurrence. The default plan (and
/// [`FaultPlan::disabled`]) has every rate at zero and reports
/// [`FaultPlan::is_enabled`]` == false`, which consumers use to skip the
/// injection code paths entirely — the zero-overhead gate.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; FaultClass::ALL.len()],
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

impl FaultPlan {
    /// A plan with every rate at zero: never fires, never observable.
    #[must_use]
    pub fn disabled() -> FaultPlan {
        FaultPlan {
            seed: 0,
            rates: [0.0; FaultClass::ALL.len()],
        }
    }

    /// A plan with the given seed and every rate at zero; chain
    /// [`FaultPlan::with_rate`] to arm classes.
    #[must_use]
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [0.0; FaultClass::ALL.len()],
        }
    }

    /// Arm `class` at `rate` (clamped to `[0, 1]`; NaN treated as zero).
    #[must_use]
    pub fn with_rate(mut self, class: FaultClass, rate: f64) -> FaultPlan {
        let rate = if rate.is_nan() {
            0.0
        } else {
            rate.clamp(0.0, 1.0)
        };
        self.rates[class.index()] = rate;
        self
    }

    /// The seed the schedule derives from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The armed rate for `class`.
    #[must_use]
    pub fn rate(&self, class: FaultClass) -> f64 {
        self.rates[class.index()]
    }

    /// True if any class has a non-zero rate. Consumers gate every
    /// injection branch on this so a disabled plan stays bit-transparent.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.rates.iter().any(|&r| r > 0.0)
    }

    /// The pure fire/no-fire decision for occurrence `seq` of `class`.
    ///
    /// Deterministic in `(seed, class, seq)` alone. The hash output is
    /// mapped to `[0, 1)` with 53-bit precision and compared against the
    /// armed rate.
    #[must_use]
    pub fn fires(&self, class: FaultClass, seq: u64) -> bool {
        let rate = self.rates[class.index()];
        if rate <= 0.0 {
            return false;
        }
        let h = splitmix64(self.seed ^ class.tag() ^ splitmix64(seq.wrapping_add(1)));
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < rate
    }

    /// Deterministic auxiliary draw for occurrence `seq` of `class`
    /// (e.g. how many bytes of a torn write survive, or how far a clock
    /// skews). Uniform in `[0, 1)`, independent of the fire decision.
    #[must_use]
    pub fn draw(&self, class: FaultClass, seq: u64) -> f64 {
        let h = splitmix64(
            self.seed
                ^ class.tag().rotate_left(17)
                ^ splitmix64(seq.wrapping_mul(2).wrapping_add(1)),
        );
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// FNV-style fold of the fire schedule for the first `n` occurrences of
    /// `class` — the determinism witness asserted by `chaos_matrix` (same
    /// seed ⇒ same digest, bit for bit).
    #[must_use]
    pub fn schedule_digest(&self, class: FaultClass, n: u64) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for seq in 0..n {
            let bit = u64::from(self.fires(class, seq));
            acc ^= splitmix64(seq ^ (bit << 63));
            acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
        }
        acc
    }
}

/// A monotonically increasing per-site sequence counter.
///
/// Each physical injection site (one snapshot store, one engine, one serve
/// loop) owns a cursor per class and calls [`SiteCursor::next`] exactly
/// once per potential injection point, in deterministic order. The cursor
/// is atomic so sites shared behind `Arc` (e.g. a `SnapshotIo` used by a
/// store) stay safe, but determinism is the caller's contract: draw
/// sequence numbers in a deterministic order.
#[derive(Debug, Default)]
pub struct SiteCursor {
    seq: AtomicU64,
}

impl SiteCursor {
    /// A fresh cursor starting at sequence zero.
    #[must_use]
    pub fn new() -> SiteCursor {
        SiteCursor {
            seq: AtomicU64::new(0),
        }
    }

    /// The next sequence number (starts at 0, increments by 1).
    pub fn next(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// How many occurrences have been drawn so far.
    pub fn drawn(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_enabled());
        for class in FaultClass::ALL {
            for seq in 0..256 {
                assert!(!plan.fires(class, seq));
            }
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(42).with_rate(FaultClass::TaskPanic, 0.25);
        let b = FaultPlan::new(42).with_rate(FaultClass::TaskPanic, 0.25);
        assert_eq!(
            a.schedule_digest(FaultClass::TaskPanic, 4096),
            b.schedule_digest(FaultClass::TaskPanic, 4096)
        );
    }

    #[test]
    fn different_seed_different_schedule() {
        let a = FaultPlan::new(1).with_rate(FaultClass::SnapshotTorn, 0.5);
        let b = FaultPlan::new(2).with_rate(FaultClass::SnapshotTorn, 0.5);
        assert_ne!(
            a.schedule_digest(FaultClass::SnapshotTorn, 4096),
            b.schedule_digest(FaultClass::SnapshotTorn, 4096)
        );
    }

    #[test]
    fn classes_draw_independent_streams() {
        let plan = FaultPlan::new(7)
            .with_rate(FaultClass::TaskPanic, 0.5)
            .with_rate(FaultClass::TaskStall, 0.5);
        let panics = plan.schedule_digest(FaultClass::TaskPanic, 1024);
        let stalls = plan.schedule_digest(FaultClass::TaskStall, 1024);
        assert_ne!(panics, stalls);
    }

    #[test]
    fn empirical_rate_tracks_armed_rate() {
        let plan = FaultPlan::new(0xDEAD_BEEF).with_rate(FaultClass::EvalTransient, 0.1);
        let n = 100_000u64;
        let fired = (0..n)
            .filter(|&s| plan.fires(FaultClass::EvalTransient, s))
            .count();
        let observed = fired as f64 / n as f64;
        assert!((observed - 0.1).abs() < 0.01, "observed rate {observed}");
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let plan = FaultPlan::new(3).with_rate(FaultClass::WeightPoison, 1.0);
        for seq in 0..512 {
            assert!(plan.fires(FaultClass::WeightPoison, seq));
            assert!(!plan.fires(FaultClass::Burst, seq));
        }
    }

    #[test]
    fn nan_and_out_of_range_rates_are_clamped() {
        let plan = FaultPlan::new(1).with_rate(FaultClass::Burst, f64::NAN);
        assert!(!plan.is_enabled());
        let plan = FaultPlan::new(1).with_rate(FaultClass::Burst, 7.0);
        assert_eq!(plan.rate(FaultClass::Burst), 1.0);
        let plan = FaultPlan::new(1).with_rate(FaultClass::Burst, -3.0);
        assert_eq!(plan.rate(FaultClass::Burst), 0.0);
    }

    #[test]
    fn draw_is_deterministic_and_unit_range() {
        let plan = FaultPlan::new(99).with_rate(FaultClass::SnapshotTorn, 1.0);
        for seq in 0..256 {
            let a = plan.draw(FaultClass::SnapshotTorn, seq);
            let b = plan.draw(FaultClass::SnapshotTorn, seq);
            assert_eq!(a.to_bits(), b.to_bits());
            assert!((0.0..1.0).contains(&a));
        }
    }

    #[test]
    fn name_round_trips() {
        for class in FaultClass::ALL {
            assert_eq!(FaultClass::from_name(class.name()), Some(class));
        }
        assert_eq!(FaultClass::from_name("nope"), None);
    }

    #[test]
    fn cursor_counts_from_zero() {
        let cursor = SiteCursor::new();
        assert_eq!(cursor.next(), 0);
        assert_eq!(cursor.next(), 1);
        assert_eq!(cursor.drawn(), 2);
    }
}
