//! # odin-chaos — the deterministic fault-injection plane
//!
//! Every chaos harness in the workspace used to carry its own ad-hoc
//! injection logic (torn-write loops in `chaos_campaign`, storm phases in
//! `serve_chaos`). This crate re-founds all of it on one seeded, replayable
//! primitive: a [`FaultPlan`] maps a `(fault class, site sequence number)`
//! pair to a fire/no-fire decision through a pure hash of a single `u64`
//! seed. Two runs with the same plan see bit-identical injection schedules;
//! a plan with every rate at zero is indistinguishable from no plan at all.
//!
//! The crate is dependency-free and IO is confined to [`tear`], the
//! torn-write utilities used by out-of-process harnesses. [`invariant`]
//! holds the reusable checkers (accounting balance, digest equality,
//! monotone ladders, conservation laws, commit order) asserted by
//! `chaos_matrix` and the engine tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod invariant;
pub mod plan;
pub mod tear;

pub use invariant::{InvariantError, InvariantSet};
pub use plan::{splitmix64, FaultClass, FaultPlan, SiteCursor};
