//! Torn-write utilities for out-of-process chaos harnesses.
//!
//! `chaos_campaign` and `serve_chaos` used to carry private copies of this
//! logic; both now call here. These functions disturb a snapshot directory
//! the way a mid-write power loss would: the newest generation is truncated
//! (a torn file the store must reject and fall back past) and a garbage
//! `.tmp` sibling is dropped (an interrupted atomic write the store must
//! sweep on open).

use std::path::{Path, PathBuf};

/// The newest `*.snap` generation in `dir` by lexicographic path order
/// (generation filenames are zero-padded, so this is the newest sequence).
#[must_use]
pub fn newest_snapshot(dir: &Path) -> Option<PathBuf> {
    let mut newest: Option<PathBuf> = None;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.extension().is_some_and(|x| x == "snap")
                && newest.as_ref().is_none_or(|n| path > *n)
            {
                newest = Some(path);
            }
        }
    }
    newest
}

/// Truncates `path` to `keep_fraction` of its length (clamped so at least
/// one byte is cut). Returns `true` if the file was actually shortened.
pub fn truncate_to_fraction(path: &Path, keep_fraction: f64) -> bool {
    let Ok(bytes) = std::fs::read(path) else {
        return false;
    };
    if bytes.len() < 2 {
        return false;
    }
    let keep_fraction = if keep_fraction.is_nan() {
        0.5
    } else {
        keep_fraction.clamp(0.0, 1.0)
    };
    let keep = ((bytes.len() as f64 * keep_fraction) as usize).min(bytes.len() - 1);
    std::fs::write(path, &bytes[..keep]).is_ok()
}

/// Tears the newest snapshot generation in `dir` in half and drops a
/// garbage tmp sibling named `tmp_name` (e.g. `campaign-99999999.snap.tmp`).
/// Returns how many files were disturbed.
pub fn tear_snapshots(dir: &Path, tmp_name: &str) -> usize {
    let mut torn = 0;
    if let Some(path) = newest_snapshot(dir) {
        if truncate_to_fraction(&path, 0.5) {
            torn += 1;
        }
    }
    if std::fs::write(dir.join(tmp_name), b"torn mid-write").is_ok() {
        torn += 1;
    }
    torn
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("odin-chaos-tear-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn newest_picks_highest_generation() {
        let dir = temp_dir("newest");
        std::fs::write(dir.join("campaign-00000001.snap"), b"one").unwrap();
        std::fs::write(dir.join("campaign-00000003.snap"), b"three").unwrap();
        std::fs::write(dir.join("campaign-00000002.snap"), b"two").unwrap();
        std::fs::write(dir.join("notes.txt"), b"ignored").unwrap();
        let newest = newest_snapshot(&dir).expect("some snapshot");
        assert!(newest.ends_with("campaign-00000003.snap"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_always_removes_at_least_one_byte() {
        let dir = temp_dir("trunc");
        let path = dir.join("gen.snap");
        std::fs::write(&path, vec![7u8; 100]).unwrap();
        assert!(truncate_to_fraction(&path, 1.0));
        assert_eq!(std::fs::read(&path).unwrap().len(), 99);
        assert!(truncate_to_fraction(&path, 0.5));
        assert_eq!(std::fs::read(&path).unwrap().len(), 49);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tear_disturbs_newest_and_drops_tmp() {
        let dir = temp_dir("tear");
        std::fs::write(dir.join("serve-00000009.snap"), vec![1u8; 64]).unwrap();
        let torn = tear_snapshots(&dir, "serve-99999999.snap.tmp");
        assert_eq!(torn, 2);
        assert_eq!(
            std::fs::read(dir.join("serve-00000009.snap"))
                .unwrap()
                .len(),
            32
        );
        assert!(dir.join("serve-99999999.snap.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_only_drops_tmp() {
        let dir = temp_dir("empty");
        let torn = tear_snapshots(&dir, "campaign-99999999.snap.tmp");
        assert_eq!(torn, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
