//! Mesh congestion estimation.
//!
//! The transfer-cost model prices an uncontended wormhole transfer.
//! Under load, channels queue: the standard first-order estimate is
//! the M/D/1-style inflation `1 / (1 − ρ)` where `ρ` is the mean
//! channel utilization implied by the offered traffic. This module
//! turns offered flit rates into that inflation factor so campaign
//! models can sanity-check that activation traffic stays far from
//! saturation.

use serde::{Deserialize, Serialize};

use crate::mesh::MeshNoc;
use crate::NocError;

/// First-order congestion model over a mesh.
///
/// # Examples
///
/// ```
/// use odin_noc::{CongestionModel, MeshNoc};
///
/// let m = CongestionModel::new(MeshNoc::paper_6x6());
/// // Light load: essentially no queueing.
/// assert!(m.latency_factor(0.05).unwrap() < 1.1);
/// // Near saturation the factor blows up.
/// assert!(m.latency_factor(0.95).unwrap() > 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionModel {
    mesh: MeshNoc,
}

impl CongestionModel {
    /// Builds the model over a mesh.
    #[must_use]
    pub fn new(mesh: MeshNoc) -> Self {
        Self { mesh }
    }

    /// The mesh.
    #[must_use]
    pub fn mesh(&self) -> &MeshNoc {
        &self.mesh
    }

    /// Number of unidirectional links in the mesh
    /// (`2·(2·w·h − w − h)` for a `w × h` mesh).
    #[must_use]
    pub fn link_count(&self) -> usize {
        let (w, h) = (self.mesh.width(), self.mesh.height());
        2 * (2 * w * h - w - h)
    }

    /// Mean channel utilization for uniform traffic where every node
    /// offers `flits_per_node_per_cycle` flits per cycle: each flit
    /// occupies `mean_hops` channels.
    ///
    /// # Errors
    ///
    /// Propagates mesh errors (cannot occur for valid meshes).
    pub fn channel_utilization(&self, flits_per_node_per_cycle: f64) -> Result<f64, NocError> {
        let nodes = self.mesh.nodes();
        let mean_hops: f64 = (0..nodes)
            .map(|i| {
                self.mesh
                    .mean_hops_from(crate::NodeId::new(i))
                    .expect("node in range")
            })
            .sum::<f64>()
            / nodes as f64;
        Ok(flits_per_node_per_cycle * nodes as f64 * mean_hops / self.link_count() as f64)
    }

    /// Queueing inflation at a channel utilization `rho`:
    /// `1 / (1 − ρ)`, saturating at 100× for `ρ ≥ 0.99`.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::EmptyMesh`] never; `Result` kept for parity
    /// with the utilization path. Negative utilizations are clamped.
    pub fn latency_factor(&self, rho: f64) -> Result<f64, NocError> {
        let rho = rho.clamp(0.0, 0.99);
        Ok(1.0 / (1.0 - rho))
    }

    /// End-to-end factor straight from offered load.
    ///
    /// # Errors
    ///
    /// Propagates utilization errors.
    pub fn latency_factor_at_load(&self, flits_per_node_per_cycle: f64) -> Result<f64, NocError> {
        let rho = self.channel_utilization(flits_per_node_per_cycle)?;
        self.latency_factor(rho)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> CongestionModel {
        CongestionModel::new(MeshNoc::paper_6x6())
    }

    #[test]
    fn link_count_of_6x6() {
        // 6×6 mesh: 2·(72 − 6 − 6) = 120 unidirectional links.
        assert_eq!(model().link_count(), 120);
    }

    #[test]
    fn utilization_scales_linearly() {
        let m = model();
        let u1 = m.channel_utilization(0.1).unwrap();
        let u2 = m.channel_utilization(0.2).unwrap();
        assert!((u2 / u1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_clamps() {
        let m = model();
        assert!((m.latency_factor(2.0).unwrap() - 100.0).abs() < 1e-9);
        assert!((m.latency_factor(0.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn activation_traffic_is_far_from_saturation() {
        // A tile produces at most one 32-bit flit every few cycles of
        // a multi-nanosecond OU pipeline; even at one flit per node per
        // ten cycles the mesh loafs.
        let m = model();
        let factor = m.latency_factor_at_load(0.1).unwrap();
        assert!(factor < 1.25, "factor {factor}");
    }

    proptest! {
        #[test]
        fn factor_monotone_in_load(l1 in 0.0f64..0.3, dl in 0.0f64..0.3) {
            let m = model();
            let a = m.latency_factor_at_load(l1).unwrap();
            let b = m.latency_factor_at_load(l1 + dl).unwrap();
            prop_assert!(b >= a);
            prop_assert!(a >= 1.0);
        }
    }
}
