//! Mesh network-on-chip model for the Odin PIM accelerator.
//!
//! The paper's system connects 36 ReRAM processing elements through a
//! conventional mesh NoC (§V.A); each router has 8 ports and moves
//! 32-bit flits (Table I). This crate provides the topology, XY
//! routing, and per-transfer latency/energy accounting that the
//! architecture layer charges for inter-PE activations traffic.
//!
//! The NoC is *not* a variable under study in the paper — it
//! contributes a per-layer data-movement term that is identical across
//! OU strategies — so the model is analytic (hop counts × per-hop
//! costs) rather than cycle-accurate.
//!
//! # Examples
//!
//! ```
//! use odin_noc::{MeshNoc, NodeId};
//!
//! let noc = MeshNoc::paper_6x6();
//! let cost = noc.transfer_cost(NodeId::new(0), NodeId::new(35), 1024)?;
//! assert!(cost.hops == 10); // corner to corner of a 6×6 mesh
//! # Ok::<(), odin_noc::NocError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod congestion;
mod mesh;
mod router;

pub use congestion::CongestionModel;
pub use mesh::{MeshNoc, NodeId, TransferCost};
pub use router::RouterConfig;

/// Errors produced by the NoC layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NocError {
    /// A node id referenced a node outside the mesh.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the mesh.
        nodes: usize,
    },
    /// A mesh dimension was zero.
    EmptyMesh,
}

impl std::fmt::Display for NocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NocError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} outside mesh of {nodes} nodes")
            }
            NocError::EmptyMesh => write!(f, "mesh dimensions must be nonzero"),
        }
    }
}

impl std::error::Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = NocError::NodeOutOfRange {
            node: 40,
            nodes: 36,
        };
        assert!(e.to_string().contains("40"));
        assert!(NocError::EmptyMesh.to_string().contains("nonzero"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<NocError>();
    }
}
