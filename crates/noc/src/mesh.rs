//! Mesh topology, XY routing and transfer cost accounting.

use odin_units::{Cycles, Joules};
use serde::{Deserialize, Serialize};

use crate::router::RouterConfig;
use crate::NocError;

/// A node (PE) index in the mesh, row-major from the top-left corner.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct NodeId(usize);

impl NodeId {
    /// Wraps a raw node index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

/// The cost of moving one message across the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferCost {
    /// Manhattan hop count between source and destination routers.
    pub hops: u64,
    /// Flits the message serializes into.
    pub flits: u64,
    /// Total cycles: wormhole head latency + serialization.
    pub cycles: Cycles,
    /// Total energy across all flit-hops.
    pub energy: Joules,
}

/// A `width × height` mesh of PEs with XY (dimension-ordered) routing.
///
/// # Examples
///
/// ```
/// use odin_noc::{MeshNoc, NodeId};
///
/// let noc = MeshNoc::paper_6x6();
/// assert_eq!(noc.nodes(), 36);
/// assert_eq!(noc.hops(NodeId::new(0), NodeId::new(7))?, 2);
/// # Ok::<(), odin_noc::NocError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeshNoc {
    width: usize,
    height: usize,
    router: RouterConfig,
}

impl MeshNoc {
    /// The paper's 6×6 mesh of 36 PEs.
    #[must_use]
    pub fn paper_6x6() -> Self {
        Self {
            width: 6,
            height: 6,
            router: RouterConfig::paper(),
        }
    }

    /// Builds a `width × height` mesh with the given router.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::EmptyMesh`] if either dimension is zero.
    pub fn new(width: usize, height: usize, router: RouterConfig) -> Result<Self, NocError> {
        if width == 0 || height == 0 {
            return Err(NocError::EmptyMesh);
        }
        Ok(Self {
            width,
            height,
            router,
        })
    }

    /// Mesh width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total node count.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// The router model.
    #[must_use]
    pub fn router(&self) -> &RouterConfig {
        &self.router
    }

    /// The `(x, y)` coordinates of a node.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::NodeOutOfRange`] for an invalid node.
    pub fn coordinates(&self, node: NodeId) -> Result<(usize, usize), NocError> {
        if node.index() >= self.nodes() {
            return Err(NocError::NodeOutOfRange {
                node: node.index(),
                nodes: self.nodes(),
            });
        }
        Ok((node.index() % self.width, node.index() / self.width))
    }

    /// Manhattan hop count under XY routing.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::NodeOutOfRange`] for invalid nodes.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> Result<u64, NocError> {
        let (sx, sy) = self.coordinates(src)?;
        let (dx, dy) = self.coordinates(dst)?;
        Ok((sx.abs_diff(dx) + sy.abs_diff(dy)) as u64)
    }

    /// The XY route from `src` to `dst` (inclusive of both endpoints):
    /// first along X, then along Y.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::NodeOutOfRange`] for invalid nodes.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Result<Vec<NodeId>, NocError> {
        let (sx, sy) = self.coordinates(src)?;
        let (dx, dy) = self.coordinates(dst)?;
        let mut path = vec![src];
        let (mut x, mut y) = (sx, sy);
        while x != dx {
            x = if dx > x { x + 1 } else { x - 1 };
            path.push(NodeId::new(y * self.width + x));
        }
        while y != dy {
            y = if dy > y { y + 1 } else { y - 1 };
            path.push(NodeId::new(y * self.width + x));
        }
        Ok(path)
    }

    /// The latency/energy cost of sending `bytes` from `src` to `dst`
    /// under wormhole switching: head flit pays `hops × cycles_per_hop`,
    /// the body streams one flit per cycle behind it, and every flit
    /// pays link/switch energy on every hop.
    ///
    /// A local (same-node) transfer costs zero.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::NodeOutOfRange`] for invalid nodes.
    pub fn transfer_cost(
        &self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<TransferCost, NocError> {
        let hops = self.hops(src, dst)?;
        if hops == 0 {
            return Ok(TransferCost {
                hops: 0,
                flits: 0,
                cycles: Cycles::ZERO,
                energy: Joules::ZERO,
            });
        }
        let flits = self.router.flits_for(bytes);
        let head = self.router.cycles_per_hop().count() * hops;
        let serialization = flits - 1;
        Ok(TransferCost {
            hops,
            flits,
            cycles: Cycles(head + serialization),
            energy: self.router.energy_per_flit_hop() * (flits * hops) as f64,
        })
    }

    /// Average hop count from `src` to every other node — the uniform-
    /// traffic figure used when a layer's outputs fan out to unknown
    /// consumers.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::NodeOutOfRange`] for an invalid source.
    pub fn mean_hops_from(&self, src: NodeId) -> Result<f64, NocError> {
        let n = self.nodes();
        self.coordinates(src)?;
        let total: u64 = (0..n)
            .map(|i| self.hops(src, NodeId::new(i)).expect("in range"))
            .sum();
        Ok(total as f64 / (n - 1).max(1) as f64)
    }
}

impl Default for MeshNoc {
    fn default() -> Self {
        Self::paper_6x6()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn noc() -> MeshNoc {
        MeshNoc::paper_6x6()
    }

    #[test]
    fn geometry() {
        let n = noc();
        assert_eq!(n.nodes(), 36);
        assert_eq!(n.coordinates(NodeId::new(0)).unwrap(), (0, 0));
        assert_eq!(n.coordinates(NodeId::new(35)).unwrap(), (5, 5));
        assert_eq!(n.coordinates(NodeId::new(7)).unwrap(), (1, 1));
        assert!(n.coordinates(NodeId::new(36)).is_err());
    }

    #[test]
    fn hop_counts() {
        let n = noc();
        assert_eq!(n.hops(NodeId::new(0), NodeId::new(0)).unwrap(), 0);
        assert_eq!(n.hops(NodeId::new(0), NodeId::new(5)).unwrap(), 5);
        assert_eq!(n.hops(NodeId::new(0), NodeId::new(35)).unwrap(), 10);
    }

    #[test]
    fn xy_route_goes_x_then_y() {
        let n = noc();
        let path = n.route(NodeId::new(0), NodeId::new(14)).unwrap();
        // (0,0) → (1,0) → (2,0) → (2,1) → (2,2) = ids 0,1,2,8,14
        let ids: Vec<usize> = path.iter().map(|p| p.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 8, 14]);
    }

    #[test]
    fn route_reverse_direction() {
        let n = noc();
        let path = n.route(NodeId::new(14), NodeId::new(0)).unwrap();
        let ids: Vec<usize> = path.iter().map(|p| p.index()).collect();
        assert_eq!(ids, vec![14, 13, 12, 6, 0]);
    }

    #[test]
    fn local_transfer_is_free() {
        let n = noc();
        let c = n
            .transfer_cost(NodeId::new(3), NodeId::new(3), 4096)
            .unwrap();
        assert_eq!(c.cycles, Cycles::ZERO);
        assert_eq!(c.energy, Joules::ZERO);
        assert_eq!(c.hops, 0);
    }

    #[test]
    fn wormhole_cost_structure() {
        let n = noc();
        // 1 KiB = 256 flits, 10 hops corner to corner.
        let c = n
            .transfer_cost(NodeId::new(0), NodeId::new(35), 1024)
            .unwrap();
        assert_eq!(c.flits, 256);
        assert_eq!(c.hops, 10);
        // head: 10 hops × 2 cycles, body: 255 cycles behind it.
        assert_eq!(c.cycles, Cycles(20 + 255));
        let expect = RouterConfig::paper().energy_per_flit_hop() * (256 * 10) as f64;
        assert!((c.energy.value() - expect.value()).abs() < 1e-18);
    }

    #[test]
    fn mean_hops_symmetric_corners() {
        let n = noc();
        let a = n.mean_hops_from(NodeId::new(0)).unwrap();
        let b = n.mean_hops_from(NodeId::new(35)).unwrap();
        assert!((a - b).abs() < 1e-12, "corners are symmetric");
        let center = n.mean_hops_from(NodeId::new(14)).unwrap();
        assert!(center < a, "center is better connected than a corner");
    }

    #[test]
    fn rejects_empty_mesh() {
        assert!(MeshNoc::new(0, 6, RouterConfig::paper()).is_err());
        assert!(MeshNoc::new(6, 0, RouterConfig::paper()).is_err());
    }

    #[test]
    fn display_of_node() {
        assert_eq!(NodeId::new(7).to_string(), "PE7");
    }

    proptest! {
        #[test]
        fn hops_are_symmetric(a in 0usize..36, b in 0usize..36) {
            let n = noc();
            prop_assert_eq!(
                n.hops(NodeId::new(a), NodeId::new(b)).unwrap(),
                n.hops(NodeId::new(b), NodeId::new(a)).unwrap()
            );
        }

        #[test]
        fn route_length_matches_hops(a in 0usize..36, b in 0usize..36) {
            let n = noc();
            let path = n.route(NodeId::new(a), NodeId::new(b)).unwrap();
            let hops = n.hops(NodeId::new(a), NodeId::new(b)).unwrap();
            prop_assert_eq!(path.len() as u64, hops + 1);
            // Consecutive path nodes are mesh neighbours.
            for w in path.windows(2) {
                prop_assert_eq!(n.hops(w[0], w[1]).unwrap(), 1);
            }
        }

        #[test]
        fn cost_monotone_in_payload(
            a in 0usize..36, b in 0usize..36,
            small in 1u64..1000, extra in 0u64..1000
        ) {
            let n = noc();
            let c1 = n.transfer_cost(NodeId::new(a), NodeId::new(b), small).unwrap();
            let c2 = n.transfer_cost(NodeId::new(a), NodeId::new(b), small + extra).unwrap();
            prop_assert!(c2.cycles >= c1.cycles);
            prop_assert!(c2.energy >= c1.energy);
        }
    }
}
