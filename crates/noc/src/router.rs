//! Router configuration and per-hop costs.

use odin_units::{Cycles, Joules};
use serde::{Deserialize, Serialize};

/// One mesh router, per Table I: 32-bit flits, 8 ports, synthesized at
/// 32 nm / 1.2 GHz.
///
/// Per-flit-hop costs are representative 32 nm figures (router
/// traversal ≈ 2 cycles, link + switch energy ≈ 1 pJ/flit/hop); only
/// their order of magnitude matters since the NoC term is common to
/// all OU strategies.
///
/// # Examples
///
/// ```
/// use odin_noc::RouterConfig;
///
/// let r = RouterConfig::paper();
/// assert_eq!(r.flit_bits(), 32);
/// assert_eq!(r.ports(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    flit_bits: u32,
    ports: u32,
    cycles_per_hop: Cycles,
    energy_per_flit_hop: Joules,
}

impl RouterConfig {
    /// The Table I router.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            flit_bits: 32,
            ports: 8,
            cycles_per_hop: Cycles(2),
            energy_per_flit_hop: Joules::from_picojoules(1.0),
        }
    }

    /// Flit width in bits.
    #[must_use]
    pub fn flit_bits(&self) -> u32 {
        self.flit_bits
    }

    /// Router radix.
    #[must_use]
    pub fn ports(&self) -> u32 {
        self.ports
    }

    /// Pipeline cycles per router hop.
    #[must_use]
    pub fn cycles_per_hop(&self) -> Cycles {
        self.cycles_per_hop
    }

    /// Energy to move one flit across one hop (switch + link).
    #[must_use]
    pub fn energy_per_flit_hop(&self) -> Joules {
        self.energy_per_flit_hop
    }

    /// Number of flits needed to carry `bytes` of payload.
    #[must_use]
    pub fn flits_for(&self, bytes: u64) -> u64 {
        let bits = bytes * 8;
        bits.div_ceil(u64::from(self.flit_bits)).max(1)
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_router() {
        let r = RouterConfig::paper();
        assert_eq!(r.flit_bits(), 32);
        assert_eq!(r.ports(), 8);
        assert_eq!(r.cycles_per_hop(), Cycles(2));
        assert!(r.energy_per_flit_hop().as_picojoules() > 0.0);
        assert_eq!(RouterConfig::default(), r);
    }

    #[test]
    fn flit_packing() {
        let r = RouterConfig::paper();
        assert_eq!(r.flits_for(4), 1); // 32 bits exactly
        assert_eq!(r.flits_for(5), 2);
        assert_eq!(r.flits_for(0), 1); // header-only message
        assert_eq!(r.flits_for(1024), 256);
    }
}
