//! Integration coverage for the first-order mesh congestion model:
//! the link census cross-checked against brute-force adjacency, a
//! hand-computed utilization on the paper mesh, deterministic seeded
//! load sweeps, serde round-trips, and property tests over the
//! queueing-inflation bounds.

use odin_noc::{CongestionModel, MeshNoc, NodeId, RouterConfig};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn paper_model() -> CongestionModel {
    CongestionModel::new(MeshNoc::paper_6x6())
}

#[test]
fn link_count_matches_brute_force_adjacency_census() {
    for (w, h) in [(1, 1), (2, 2), (3, 5), (6, 6), (8, 3)] {
        let mesh = MeshNoc::new(w, h, RouterConfig::paper()).unwrap();
        let model = CongestionModel::new(mesh);
        let nodes = model.mesh().nodes();
        // A unidirectional link exists per ordered pair one hop apart.
        let adjacent = (0..nodes)
            .flat_map(|src| (0..nodes).map(move |dst| (src, dst)))
            .filter(|&(src, dst)| {
                model
                    .mesh()
                    .hops(NodeId::new(src), NodeId::new(dst))
                    .unwrap()
                    == 1
            })
            .count();
        assert_eq!(model.link_count(), adjacent, "{w}×{h} mesh");
    }
}

#[test]
fn paper_mesh_utilization_matches_hand_computation() {
    // 6×6 XY mesh: the ordered-pair Manhattan sum is
    // 2 · 36 · n(n² − 1)/3 = 5040 hops, each per-source mean divides
    // by the 35 non-self destinations, so the fleet mean is
    // 5040 / (36 · 35) = 4.0 hops over 120 links:
    // ρ(f) = f · 36 · 4 / 120 = 1.2 f.
    let model = paper_model();
    let rho = model.channel_utilization(0.1).unwrap();
    assert!((rho - 0.12).abs() < 1e-12, "rho {rho}");
}

#[test]
fn seeded_load_sweep_is_bit_reproducible() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD1A7);
    let loads: Vec<f64> = (0..64).map(|_| rng.gen_range(0.0..0.3)).collect();
    let sweep = |model: &CongestionModel| -> Vec<u64> {
        loads
            .iter()
            .map(|&l| model.latency_factor_at_load(l).unwrap().to_bits())
            .collect()
    };
    // Two independently built models answer the same seeded sweep
    // bit for bit — the model carries no hidden state.
    assert_eq!(sweep(&paper_model()), sweep(&paper_model()));
}

#[test]
fn inflation_saturates_and_floors() {
    let model = paper_model();
    assert!((model.latency_factor(-1.0).unwrap() - 1.0).abs() < 1e-12);
    assert!((model.latency_factor(0.5).unwrap() - 2.0).abs() < 1e-12);
    assert!((model.latency_factor(0.99).unwrap() - 100.0).abs() < 1e-9);
    assert!((model.latency_factor(7.0).unwrap() - 100.0).abs() < 1e-9);
}

#[test]
fn model_round_trips_through_serde() {
    let model = paper_model();
    let json = serde_json::to_string(&model).unwrap();
    let back: CongestionModel = serde_json::from_str(&json).unwrap();
    assert_eq!(back, model);
    assert_eq!(back.link_count(), model.link_count());
}

proptest! {
    #[test]
    fn utilization_is_linear_in_offered_load(
        load in 0.0f64..0.5,
        scale in 0.0f64..4.0,
    ) {
        let model = paper_model();
        let base = model.channel_utilization(load).unwrap();
        let scaled = model.channel_utilization(load * scale).unwrap();
        prop_assert!((scaled - base * scale).abs() < 1e-9 * (1.0 + base.abs()));
    }

    #[test]
    fn inflation_is_bounded_and_monotone(
        rho in -1.0f64..2.0,
        delta in 0.0f64..2.0,
    ) {
        let model = paper_model();
        let a = model.latency_factor(rho).unwrap();
        let b = model.latency_factor(rho + delta).unwrap();
        prop_assert!((1.0..=100.0 + 1e-9).contains(&a));
        prop_assert!(b >= a, "inflation must not shrink under load");
    }
}
