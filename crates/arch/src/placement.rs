//! Mapping network layers onto the 36-PE accelerator.
//!
//! Every layer needs `Xbar_j` crossbars; the system offers 96 per tile,
//! four tiles per PE. The placer assigns layers to PEs greedily and
//! contiguously in execution order — the standard ISAAC-style layout,
//! which keeps consecutive layers near each other on the mesh so
//! activation traffic travels few hops.

use odin_dnn::NetworkDescriptor;
use odin_noc::NodeId;
use odin_xbar::LayerMapping;
use serde::Serialize;

use crate::system::SystemConfig;

/// One layer's placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LayerPlacement {
    /// The layer index.
    pub layer: usize,
    /// The PE whose tiles hold (the majority of) this layer's
    /// crossbars.
    pub pe: NodeId,
    /// Crossbars the layer occupies.
    pub crossbars: usize,
}

/// A complete network placement.
#[derive(Debug, Clone, Serialize)]
pub struct Placement {
    assignments: Vec<LayerPlacement>,
    crossbars_used: usize,
    crossbars_available: usize,
}

/// Errors from placement.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlacementError {
    /// The network needs more crossbars than the system has.
    InsufficientCapacity {
        /// Crossbars required.
        needed: usize,
        /// Crossbars available.
        available: usize,
    },
    /// A layer could not be mapped onto the crossbar geometry.
    Unmappable {
        /// The layer index.
        layer: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::InsufficientCapacity { needed, available } => {
                write!(
                    f,
                    "network needs {needed} crossbars, system has {available}"
                )
            }
            PlacementError::Unmappable { layer } => {
                write!(f, "layer {layer} cannot be mapped onto the crossbars")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

impl Placement {
    /// Greedy contiguous placement: walk the PEs in row-major mesh
    /// order, filling each with consecutive layers until its crossbar
    /// budget is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::InsufficientCapacity`] when the
    /// network does not fit, or [`PlacementError::Unmappable`] for
    /// degenerate layers.
    pub fn greedy(
        network: &NetworkDescriptor,
        system: &SystemConfig,
    ) -> Result<Self, PlacementError> {
        let per_pe = system.tiles_per_pe() * system.tile().crossbars_per_tile();
        let pes = system.pe_count();
        let crossbar_size = system.tile().crossbar_size();

        let mut assignments = Vec::with_capacity(network.layers().len());
        let mut pe = 0usize;
        let mut used_in_pe = 0usize;
        let mut total = 0usize;
        for layer in network.layers() {
            let mapping = LayerMapping::new(layer.fan_in(), layer.fan_out(), crossbar_size)
                .map_err(|_| PlacementError::Unmappable {
                    layer: layer.index(),
                })?;
            let need = mapping.crossbar_count();
            total += need;
            // Move to the next PE when this one cannot take the layer
            // (layers bigger than a PE still start on a fresh PE and
            // spill; the dominant PE is recorded).
            if used_in_pe + need > per_pe && used_in_pe > 0 {
                pe += 1;
                used_in_pe = 0;
            }
            let spill = (used_in_pe + need).saturating_sub(per_pe);
            if pe >= pes {
                return Err(PlacementError::InsufficientCapacity {
                    needed: total,
                    available: pes * per_pe,
                });
            }
            assignments.push(LayerPlacement {
                layer: layer.index(),
                pe: NodeId::new(pe),
                crossbars: need,
            });
            if spill > 0 {
                // Continue filling subsequent PEs with the remainder.
                let mut rest = spill;
                while rest > per_pe {
                    pe += 1;
                    rest -= per_pe;
                }
                pe += 1;
                used_in_pe = rest;
                if pe > pes || (pe == pes && rest > 0) {
                    return Err(PlacementError::InsufficientCapacity {
                        needed: total,
                        available: pes * per_pe,
                    });
                }
                if used_in_pe == 0 && pe > 0 {
                    pe -= 1;
                }
            } else {
                used_in_pe += need;
            }
        }
        Ok(Self {
            assignments,
            crossbars_used: total,
            crossbars_available: pes * per_pe,
        })
    }

    /// Per-layer assignments in execution order.
    #[must_use]
    pub fn assignments(&self) -> &[LayerPlacement] {
        &self.assignments
    }

    /// Total crossbars the network occupies.
    #[must_use]
    pub fn crossbars_used(&self) -> usize {
        self.crossbars_used
    }

    /// System crossbar capacity.
    #[must_use]
    pub fn crossbars_available(&self) -> usize {
        self.crossbars_available
    }

    /// Fraction of the system's crossbars in use.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.crossbars_used as f64 / self.crossbars_available as f64
    }

    /// Crossbars left unassigned after placement — the spare pool a
    /// fault-tolerant runtime can remap worn or fault-clustered layers
    /// onto.
    #[must_use]
    pub fn spare_crossbars(&self) -> usize {
        self.crossbars_available.saturating_sub(self.crossbars_used)
    }

    /// How many spare groups of `group_size` crossbars the pool can
    /// provision (a group must be large enough to rehost any single
    /// layer).
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero.
    #[must_use]
    pub fn spare_groups(&self, group_size: usize) -> usize {
        assert!(group_size > 0, "group size must be nonzero");
        self.spare_crossbars() / group_size
    }

    /// The PE holding a given layer.
    #[must_use]
    pub fn pe_of(&self, layer: usize) -> Option<NodeId> {
        self.assignments
            .iter()
            .find(|a| a.layer == layer)
            .map(|a| a.pe)
    }

    /// Total mesh hops activation traffic crosses between consecutive
    /// layers (the quantity contiguous placement minimizes).
    ///
    /// # Panics
    ///
    /// Panics if a recorded PE is outside the system's mesh (cannot
    /// happen for placements produced by [`Placement::greedy`]).
    #[must_use]
    pub fn total_transition_hops(&self, system: &SystemConfig) -> u64 {
        self.assignments
            .windows(2)
            .map(|w| {
                system
                    .noc()
                    .hops(w[0].pe, w[1].pe)
                    .expect("placement PEs are on the mesh")
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_dnn::zoo::{self, Dataset};

    #[test]
    fn every_paper_workload_places() {
        let system = SystemConfig::paper();
        for net in zoo::paper_workloads() {
            let placement =
                Placement::greedy(&net, &system).unwrap_or_else(|e| panic!("{}: {e}", net.name()));
            assert_eq!(placement.assignments().len(), net.layers().len());
            assert!(placement.utilization() <= 1.0, "{}", net.name());
            assert!(placement.utilization() > 0.0);
        }
    }

    #[test]
    fn spare_pool_complements_usage() {
        let system = SystemConfig::paper();
        let net = zoo::vgg11(Dataset::Cifar10);
        let placement = Placement::greedy(&net, &system).unwrap();
        assert_eq!(
            placement.spare_crossbars() + placement.crossbars_used(),
            placement.crossbars_available()
        );
        let widest = placement
            .assignments()
            .iter()
            .map(|a| a.crossbars)
            .max()
            .unwrap();
        assert!(
            placement.spare_groups(widest) >= 1,
            "paper system should leave at least one layer-sized spare group"
        );
    }

    #[test]
    fn consecutive_layers_stay_close() {
        let system = SystemConfig::paper();
        let net = zoo::vgg11(Dataset::Cifar10);
        let placement = Placement::greedy(&net, &system).unwrap();
        // Contiguous fill: consecutive layers are on the same or
        // adjacent-index PEs, so per-transition hops stay small.
        let hops = placement.total_transition_hops(&system);
        let transitions = (net.layers().len() - 1) as u64;
        assert!(
            hops <= 3 * transitions,
            "mean transition hops {}",
            hops as f64 / transitions as f64
        );
    }

    #[test]
    fn placement_is_monotone_in_pe_index() {
        let system = SystemConfig::paper();
        let net = zoo::resnet50(Dataset::TinyImageNet);
        let placement = Placement::greedy(&net, &system).unwrap();
        for w in placement.assignments().windows(2) {
            assert!(w[1].pe.index() >= w[0].pe.index());
        }
        assert_eq!(placement.pe_of(0), Some(placement.assignments()[0].pe));
        assert_eq!(placement.pe_of(9999), None);
    }

    #[test]
    fn oversized_network_is_rejected() {
        let system = SystemConfig::paper();
        // A synthetic monster: ~50× DenseNet.
        let layers: Vec<odin_dnn::LayerDescriptor> = (0..400)
            .map(|j| {
                odin_dnn::LayerDescriptor::new(
                    j,
                    format!("huge{j}"),
                    odin_dnn::LayerKind::Linear {
                        inputs: 8192,
                        outputs: 8192,
                    },
                    1,
                    0.0,
                    1.0,
                )
            })
            .collect();
        let net = odin_dnn::NetworkDescriptor::new("huge".into(), "none".into(), layers);
        assert!(matches!(
            Placement::greedy(&net, &system),
            Err(PlacementError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn error_display() {
        let e = PlacementError::InsufficientCapacity {
            needed: 100,
            available: 50,
        };
        assert!(e.to_string().contains("100"));
        assert!(PlacementError::Unmappable { layer: 3 }
            .to_string()
            .contains('3'));
    }
}
