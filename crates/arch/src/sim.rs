//! Discrete-event simulation of one tile executing a layer.
//!
//! The analytic model (Eq. 1) prices a layer as
//! `critical-tile cycles × per-cycle latency`, assuming the 96
//! crossbars never stall. In the real tile they share one eDRAM bus
//! (Table I: 384 bits wide): every OU cycle must first pull its `R`
//! input activations through that bus, and when many crossbars are
//! active the bus serializes them. This simulator plays the schedule
//! out event by event and reports the true makespan and bus
//! utilization — the cross-check that tells you *when* Eq. 1 is an
//! underestimate.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use odin_units::Seconds;
use odin_xbar::OuShape;
use serde::Serialize;

use crate::cost::OuCostModel;
use crate::tile::TileConfig;

/// The outcome of simulating one layer on one tile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TileSimReport {
    /// Wall-clock time until the last crossbar finishes.
    pub makespan: Seconds,
    /// Fraction of the makespan the eDRAM bus was busy.
    pub bus_utilization: f64,
    /// Total OU cycles executed across all crossbars.
    pub total_cycles: u64,
    /// The analytic (contention-free) latency for comparison:
    /// `max cycles × per-cycle latency`.
    pub analytic_latency: Seconds,
}

impl TileSimReport {
    /// How much slower the simulated tile ran than the contention-free
    /// analytic model (≥ 1).
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        if self.analytic_latency.value() == 0.0 {
            return 1.0;
        }
        self.makespan / self.analytic_latency
    }
}

/// Simulates the crossbars of one tile executing `per_crossbar_cycles`
/// OU cycles each, at OU `shape`. Each cycle pulls `R` activation
/// bytes (8-bit) through the shared eDRAM bus, amortized over
/// `input_reuse` consecutive cycles that reuse the same input-register
/// contents — which is what happens when the OU scheduler sweeps the
/// column groups of one row window (`input_reuse` = number of column
/// groups; 1 = pessimistic refetch-every-cycle).
///
/// Crossbars compute independently (one ADC each); the bus grants
/// requests in ready-time order.
///
/// # Panics
///
/// Panics if more crossbars are requested than the tile has, or if
/// `input_reuse` is zero.
#[must_use]
pub fn simulate_layer(
    tile: &TileConfig,
    cost: &OuCostModel,
    shape: OuShape,
    per_crossbar_cycles: &[u64],
    input_reuse: u64,
) -> TileSimReport {
    assert!(
        per_crossbar_cycles.len() <= tile.crossbars_per_tile(),
        "layer uses more crossbars than the tile has"
    );
    assert!(input_reuse > 0, "input reuse must be nonzero");
    let bus_bytes_per_second = 384.0 / 8.0 * tile.clock_hz();
    let fetch_bytes = shape.rows() as f64;
    let transfer = fetch_bytes / bus_bytes_per_second / input_reuse as f64;
    let compute = cost.cycle_latency(shape).value();

    // Event queue of (ready time, crossbar id); deterministic
    // tie-break on id. Times in integer femtoseconds to keep the heap
    // total-ordered.
    const SCALE: f64 = 1e15;
    let to_fs = |t: f64| (t * SCALE).round() as u64;
    let mut remaining: Vec<u64> = per_crossbar_cycles.to_vec();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = remaining
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, _)| Reverse((0u64, i)))
        .collect();
    let mut bus_free = 0u64;
    let mut bus_busy_total = 0u64;
    let mut makespan = 0u64;
    while let Some(Reverse((ready, xbar))) = heap.pop() {
        let grant = ready.max(bus_free);
        let transfer_fs = to_fs(transfer);
        bus_free = grant + transfer_fs;
        bus_busy_total += transfer_fs;
        let done = grant + transfer_fs + to_fs(compute);
        makespan = makespan.max(done);
        remaining[xbar] -= 1;
        if remaining[xbar] > 0 {
            heap.push(Reverse((done, xbar)));
        }
    }

    let total_cycles: u64 = per_crossbar_cycles.iter().sum();
    let critical = per_crossbar_cycles.iter().copied().max().unwrap_or(0);
    TileSimReport {
        makespan: Seconds::new(makespan as f64 / SCALE),
        bus_utilization: if makespan == 0 {
            0.0
        } else {
            bus_busy_total as f64 / makespan as f64
        },
        total_cycles,
        analytic_latency: Seconds::new(critical as f64 * compute),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn setup() -> (TileConfig, OuCostModel) {
        (TileConfig::paper(), OuCostModel::paper())
    }

    #[test]
    fn single_crossbar_matches_serial_arithmetic() {
        let (tile, cost) = setup();
        let shape = OuShape::new(16, 16);
        let report = simulate_layer(&tile, &cost, shape, &[100], 1);
        let transfer = 16.0 / (48.0 * tile.clock_hz());
        let expect = 100.0 * (transfer + cost.cycle_latency(shape).value());
        assert!(
            (report.makespan.value() - expect).abs() < 1e-12,
            "makespan {} vs {expect}",
            report.makespan.value()
        );
        assert_eq!(report.total_cycles, 100);
    }

    #[test]
    fn contention_free_when_few_crossbars() {
        // A handful of crossbars with long compute barely touch the
        // bus: makespan ≈ analytic, slowdown ≈ 1.
        let (tile, cost) = setup();
        let report = simulate_layer(&tile, &cost, OuShape::new(16, 64), &[50, 50, 50, 50], 1);
        assert!(report.slowdown() < 1.05, "slowdown {}", report.slowdown());
        assert!(report.bus_utilization < 0.3);
    }

    #[test]
    fn many_crossbars_saturate_the_bus() {
        // All 96 crossbars hammering short cycles: the bus serializes
        // and the analytic model underestimates.
        let (tile, cost) = setup();
        let cycles = vec![200u64; 96];
        let report = simulate_layer(&tile, &cost, OuShape::new(128, 4), &cycles, 1);
        assert!(
            report.bus_utilization > 0.5,
            "bus utilization {}",
            report.bus_utilization
        );
        assert!(report.slowdown() > 1.2, "slowdown {}", report.slowdown());
    }

    #[test]
    fn input_reuse_relieves_the_bus() {
        let (tile, cost) = setup();
        let cycles = vec![200u64; 96];
        let shape = OuShape::new(128, 4);
        let naive = simulate_layer(&tile, &cost, shape, &cycles, 1);
        let reused = simulate_layer(&tile, &cost, shape, &cycles, 8);
        assert!(reused.makespan < naive.makespan);
        // A 128-row fetch across 96 crossbars stays bus-bound even
        // with reuse (that is the point of choosing this corner), but
        // reuse must cut the slowdown by nearly its factor.
        assert!(
            reused.slowdown() < naive.slowdown() / 4.0,
            "reused {} vs naive {}",
            reused.slowdown(),
            naive.slowdown()
        );
    }

    #[test]
    fn empty_layer_is_instant() {
        let (tile, cost) = setup();
        let report = simulate_layer(&tile, &cost, OuShape::new(16, 16), &[], 1);
        assert_eq!(report.makespan, Seconds::ZERO);
        assert_eq!(report.slowdown(), 1.0);
        assert_eq!(report.bus_utilization, 0.0);
    }

    #[test]
    #[should_panic(expected = "more crossbars")]
    fn too_many_crossbars_panics() {
        let (tile, cost) = setup();
        let _ = simulate_layer(&tile, &cost, OuShape::new(16, 16), &vec![1; 97], 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn makespan_never_beats_the_analytic_bound(
            n in 1usize..32, cycles in 1u64..200,
            r_exp in 2u32..8, c_exp in 2u32..8
        ) {
            let (tile, cost) = setup();
            let shape = OuShape::new(1 << r_exp, 1 << c_exp);
            let work = vec![cycles; n];
            let report = simulate_layer(&tile, &cost, shape, &work, 1);
            // The event simulation includes the analytic critical path
            // plus transfers: it can never be faster.
            prop_assert!(report.makespan >= report.analytic_latency);
            prop_assert!(report.bus_utilization <= 1.0 + 1e-9);
        }

        #[test]
        fn makespan_monotone_in_work(
            cycles in 1u64..100, extra in 0u64..100
        ) {
            let (tile, cost) = setup();
            let shape = OuShape::new(16, 16);
            let a = simulate_layer(&tile, &cost, shape, &[cycles; 8], 1);
            let b = simulate_layer(&tile, &cost, shape, &[cycles + extra; 8], 1);
            prop_assert!(b.makespan >= a.makespan);
        }
    }
}
