//! Cycle-level trace of one OU compute cycle through the Fig. 2
//! pipeline.
//!
//! Fig. 2's datapath: input activations land in the input register
//! (IR), the OU controller drives the selected wordlines, cell
//! currents settle into the sample-and-hold array, the reconfigurable
//! ADC converts the `C` active bitlines one after another, and results
//! retire into the output register (OR). This module materializes that
//! sequence as timed events — useful for visualization, for checking
//! the latency model against its own structure, and as documentation
//! of what `OuCostModel::cycle_latency` abstracts.

use odin_units::Seconds;
use odin_xbar::OuShape;
use serde::Serialize;

use crate::adc::ReconfigurableAdc;

/// A pipeline stage of the OU datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Stage {
    /// Fetch operands from the input register / eDRAM.
    FetchInputs,
    /// OU controller asserts the selected wordlines.
    DriveWordlines,
    /// Analog settle + sample into the S&H array.
    SampleHold,
    /// One ADC conversion of one bitline.
    AdcConvert {
        /// Which of the `C` bitlines this conversion serves.
        bitline: usize,
    },
    /// Retire results into the output register.
    WriteOutput,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::FetchInputs => write!(f, "fetch-inputs"),
            Stage::DriveWordlines => write!(f, "drive-wordlines"),
            Stage::SampleHold => write!(f, "sample-hold"),
            Stage::AdcConvert { bitline } => write!(f, "adc-convert[{bitline}]"),
            Stage::WriteOutput => write!(f, "write-output"),
        }
    }
}

/// One timed event in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PipelineEvent {
    /// The stage.
    pub stage: Stage,
    /// Start time relative to the cycle's beginning.
    pub start: Seconds,
    /// Stage duration.
    pub duration: Seconds,
}

impl PipelineEvent {
    /// End time of the event.
    #[must_use]
    pub fn end(&self) -> Seconds {
        self.start + self.duration
    }
}

/// The trace of one OU compute cycle.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DataflowTrace {
    shape: OuShape,
    adc_bits: u8,
    events: Vec<PipelineEvent>,
}

impl DataflowTrace {
    /// Fixed stage durations (representative 32 nm figures): operand
    /// fetch, wordline drive, analog settle, OR write.
    const FETCH: f64 = 0.3e-9;
    const DRIVE: f64 = 0.2e-9;
    const SETTLE: f64 = 0.3e-9;
    const RETIRE: f64 = 0.2e-9;

    /// Builds the trace for one OU activation of `shape` using `adc`.
    #[must_use]
    pub fn for_activation(shape: OuShape, adc: &ReconfigurableAdc) -> Self {
        let bits = adc.bits_for_rows(shape.rows());
        let mut events = Vec::with_capacity(4 + shape.cols());
        let mut t = 0.0;
        let mut push = |stage: Stage, duration: f64, t: &mut f64| {
            events.push(PipelineEvent {
                stage,
                start: Seconds::new(*t),
                duration: Seconds::new(duration),
            });
            *t += duration;
        };
        push(Stage::FetchInputs, Self::FETCH, &mut t);
        push(Stage::DriveWordlines, Self::DRIVE, &mut t);
        push(Stage::SampleHold, Self::SETTLE, &mut t);
        let conversion = adc.conversion_latency(bits).value();
        for bitline in 0..shape.cols() {
            push(Stage::AdcConvert { bitline }, conversion, &mut t);
        }
        push(Stage::WriteOutput, Self::RETIRE, &mut t);
        Self {
            shape,
            adc_bits: bits,
            events,
        }
    }

    /// The OU shape traced.
    #[must_use]
    pub fn shape(&self) -> OuShape {
        self.shape
    }

    /// ADC precision used.
    #[must_use]
    pub fn adc_bits(&self) -> u8 {
        self.adc_bits
    }

    /// The events in time order.
    #[must_use]
    pub fn events(&self) -> &[PipelineEvent] {
        &self.events
    }

    /// Total cycle latency (end of the last event).
    #[must_use]
    pub fn total_latency(&self) -> Seconds {
        self.events.last().map_or(Seconds::ZERO, PipelineEvent::end)
    }

    /// Fraction of the cycle spent in ADC conversions — the
    /// "ADC is the critical part of the pipeline" observation (§III.B)
    /// made quantitative.
    #[must_use]
    pub fn adc_fraction(&self) -> f64 {
        let adc: f64 = self
            .events
            .iter()
            .filter(|e| matches!(e.stage, Stage::AdcConvert { .. }))
            .map(|e| e.duration.value())
            .sum();
        adc / self.total_latency().value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(r: usize, c: usize) -> DataflowTrace {
        DataflowTrace::for_activation(OuShape::new(r, c), &ReconfigurableAdc::paper())
    }

    #[test]
    fn events_are_contiguous_and_ordered() {
        let t = trace(16, 16);
        assert_eq!(t.events().len(), 4 + 16);
        for w in t.events().windows(2) {
            assert!((w[1].start - w[0].end()).value().abs() < 1e-15);
        }
        assert_eq!(t.events()[0].stage, Stage::FetchInputs);
        assert_eq!(t.events().last().unwrap().stage, Stage::WriteOutput);
    }

    #[test]
    fn adc_dominates_the_cycle() {
        // §III.B: the ADC is the pipeline bottleneck.
        let t = trace(16, 16);
        assert!(t.adc_fraction() > 0.5, "adc fraction {}", t.adc_fraction());
        assert_eq!(t.adc_bits(), 4);
    }

    #[test]
    fn wider_ous_take_longer_to_convert() {
        assert!(trace(16, 32).total_latency() > trace(16, 8).total_latency());
        // Taller OUs raise the precision, lengthening each conversion.
        assert!(trace(64, 16).total_latency() > trace(8, 16).total_latency());
    }

    #[test]
    fn stage_display_is_informative() {
        assert_eq!(
            Stage::AdcConvert { bitline: 3 }.to_string(),
            "adc-convert[3]"
        );
        assert_eq!(Stage::FetchInputs.to_string(), "fetch-inputs");
    }

    #[test]
    fn trace_latency_tracks_cost_model_shape() {
        // Both the trace and OuCostModel put C·bits·t_adc at the core
        // of the cycle latency; their ratio across shapes must agree
        // to within the fixed-term difference.
        let a = trace(16, 32).total_latency().value();
        let b = trace(16, 8).total_latency().value();
        // ADC part quadruples; fixed parts identical.
        let adc = |c: usize| c as f64 * 0.4e-9;
        let expect = (1.0e-9 + adc(32)) / (1.0e-9 + adc(8));
        assert!(
            ((a / b) - expect).abs() < 0.05,
            "ratio {} vs {expect}",
            a / b
        );
    }
}
