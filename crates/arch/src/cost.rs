//! Per-layer energy/latency cost model (Eq. 1–2 with per-cycle fixed
//! overheads).
//!
//! Eq. 1–2 give the *scaling* of latency and energy with the OU shape:
//!
//! ```text
//! Latency ≅ C_j · log₂R_j · OU_j                 (Eq. 1)
//! Energy  ≅ Xbar_j · log₂R_j · R_j · C_j · OU_j  (Eq. 2)
//! ```
//!
//! Taken alone these always favour the finest OU (fewer active cells
//! per cycle), yet the paper finds that homogeneous OUs *smaller* than
//! 16×16 have higher inference EDP (§V.C, Fig. 8). The missing physics
//! is the per-cycle fixed cost — wordline driver activation, S&H
//! sampling, register writes, controller sequencing — which does not
//! shrink with the OU. The model therefore charges per cycle:
//!
//! ```text
//! energy  = C·bits·R·e_adc + R·e_dac + R·C·e_cell + e_fixed
//! latency = C·bits·t_adc + t_fixed
//! ```
//!
//! with `bits = ⌈log₂R⌉` from the reconfigurable ADC. The variable
//! terms reproduce Eq. 1–2 exactly; the fixed terms produce the
//! fine-OU penalty the paper observes.

use odin_units::{Joules, Seconds};
use odin_xbar::OuShape;
use serde::{Deserialize, Serialize};

use crate::adc::ReconfigurableAdc;

/// The energy and latency of executing one neural layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Total energy across all crossbars.
    pub energy: Joules,
    /// Wall-clock latency (crossbars run in parallel; the critical tile
    /// dominates).
    pub latency: Seconds,
}

impl LayerCost {
    /// A zero cost.
    pub const ZERO: LayerCost = LayerCost {
        energy: Joules::ZERO,
        latency: Seconds::ZERO,
    };

    /// The energy-delay product of this cost.
    #[must_use]
    pub fn edp(&self) -> odin_units::EnergyDelayProduct {
        self.energy * self.latency
    }

    /// Componentwise sum (sequential composition: latencies add).
    #[must_use]
    pub fn seq(self, other: LayerCost) -> LayerCost {
        LayerCost {
            energy: self.energy + other.energy,
            latency: self.latency + other.latency,
        }
    }
}

impl std::iter::Sum for LayerCost {
    fn sum<I: Iterator<Item = LayerCost>>(iter: I) -> LayerCost {
        iter.fold(LayerCost::ZERO, LayerCost::seq)
    }
}

/// Turns OU shapes and cycle counts into [`LayerCost`]s.
///
/// # Examples
///
/// ```
/// use odin_arch::OuCostModel;
/// use odin_xbar::OuShape;
///
/// let m = OuCostModel::paper();
/// let cost = m.layer_cost(OuShape::new(16, 16), 640, 64, 10);
/// assert!(cost.energy.as_picojoules() > 0.0);
/// assert!(cost.latency.as_nanos() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OuCostModel {
    adc: ReconfigurableAdc,
    dac_energy_per_row: Joules,
    cell_energy: Joules,
    fixed_energy_per_cycle: Joules,
    fixed_latency_per_cycle: Seconds,
}

impl OuCostModel {
    /// Representative 32 nm constants, calibrated so the homogeneous-OU
    /// inference-EDP ordering of §V.C emerges (16×16 cheapest to run,
    /// finer OUs progressively costlier).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            adc: ReconfigurableAdc::paper(),
            dac_energy_per_row: Joules::from_picojoules(0.05),
            cell_energy: Joules::from_picojoules(0.01),
            // Per-cycle overhead independent of the OU size: the S&H
            // array samples, wordline drivers fire, IR/OR registers and
            // the OU controller sequence regardless of how few cells
            // compute. ~24 pJ makes the 8×4 OU cost ≈2× the 16×16 per
            // MVM, reproducing the fine-OU inference-energy penalty of
            // §V.C / Fig. 8.
            fixed_energy_per_cycle: Joules::from_picojoules(24.0),
            fixed_latency_per_cycle: Seconds::from_nanos(1.0),
        }
    }

    /// The ADC model in use.
    #[must_use]
    pub fn adc(&self) -> &ReconfigurableAdc {
        &self.adc
    }

    /// Overrides the per-cycle fixed energy (ablation hook).
    #[must_use]
    pub fn with_fixed_energy(mut self, e: Joules) -> Self {
        self.fixed_energy_per_cycle = e;
        self
    }

    /// Overrides the per-cycle fixed latency (ablation hook).
    #[must_use]
    pub fn with_fixed_latency(mut self, t: Seconds) -> Self {
        self.fixed_latency_per_cycle = t;
        self
    }

    /// Energy of a single OU compute cycle.
    #[must_use]
    pub fn cycle_energy(&self, shape: OuShape) -> Joules {
        let bits = self.adc.bits_for_rows(shape.rows());
        let adc = self.adc.conversion_energy(bits, shape.rows()) * shape.cols() as f64;
        let dac = self.dac_energy_per_row * shape.rows() as f64;
        let cells = self.cell_energy * shape.area() as f64;
        adc + dac + cells + self.fixed_energy_per_cycle
    }

    /// Latency of a single OU compute cycle (the `C` bitline
    /// conversions share one ADC per crossbar and serialize).
    #[must_use]
    pub fn cycle_latency(&self, shape: OuShape) -> Seconds {
        let bits = self.adc.bits_for_rows(shape.rows());
        self.adc.conversion_latency(bits) * shape.cols() as f64 + self.fixed_latency_per_cycle
    }

    /// The cost of one layer executed with `shape`:
    ///
    /// * `total_cycles` — OU cycles summed across all crossbars
    ///   (drives energy).
    /// * `critical_tile_cycles` — OU cycles of the busiest crossbar
    ///   (drives latency; crossbars run in parallel).
    /// * `crossbar_count` — `Xbar_j`, used only for sanity checking.
    ///
    /// # Panics
    ///
    /// Panics if `critical_tile_cycles > total_cycles` or the counts
    /// are inconsistent with `crossbar_count`.
    #[must_use]
    pub fn layer_cost(
        &self,
        shape: OuShape,
        total_cycles: u64,
        critical_tile_cycles: u64,
        crossbar_count: usize,
    ) -> LayerCost {
        assert!(
            critical_tile_cycles <= total_cycles,
            "critical tile cannot exceed the total"
        );
        assert!(
            total_cycles <= critical_tile_cycles.saturating_mul(crossbar_count.max(1) as u64),
            "total cycles inconsistent with {crossbar_count} crossbars"
        );
        LayerCost {
            energy: self.cycle_energy(shape) * total_cycles as f64,
            latency: self.cycle_latency(shape) * critical_tile_cycles as f64,
        }
    }
}

impl Default for OuCostModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_xbar::estimate_cycles;
    use proptest::prelude::*;

    fn model() -> OuCostModel {
        OuCostModel::paper()
    }

    /// Cycle counts for a dense 1152×128 layer on 128-crossbars.
    fn cycles_for(shape: OuShape) -> (u64, u64, usize) {
        let total = estimate_cycles(1152, 128, 0.0, shape);
        let xbars = 18; // 9 down × 2 across
        let per_tile = estimate_cycles(128, 64, 0.0, shape);
        (total, per_tile, xbars)
    }

    #[test]
    fn fine_ous_cost_more_inference_energy() {
        // §V.C / Fig. 8: homogeneous OUs smaller than 16×16 have higher
        // inference energy because fixed per-cycle costs dominate.
        let m = model();
        let (t16, c16, x) = cycles_for(OuShape::new(16, 16));
        let (t84, c84, _) = cycles_for(OuShape::new(8, 4));
        let coarse = m.layer_cost(OuShape::new(16, 16), t16, c16, x);
        let fine = m.layer_cost(OuShape::new(8, 4), t84, c84, x);
        assert!(
            fine.energy > coarse.energy,
            "fine {fine:?} vs coarse {coarse:?}"
        );
        assert!(fine.latency > coarse.latency);
        assert!(fine.edp() > coarse.edp());
    }

    #[test]
    fn variable_energy_term_matches_eq2_shape() {
        // Doubling R (at equal cycles) roughly doubles the ADC term:
        // energy/cycle variable part ∝ bits·R·C.
        let m = model().with_fixed_energy(Joules::ZERO);
        let e16 = m.cycle_energy(OuShape::new(16, 16)).value();
        let e32 = m.cycle_energy(OuShape::new(32, 16)).value();
        // bits go 4→5, rows 16→32: ratio = (5·32)/(4·16) = 2.5 for the
        // ADC part; DAC and cell parts scale ≤ 2×.
        assert!(e32 / e16 > 1.8 && e32 / e16 < 2.6, "ratio {}", e32 / e16);
    }

    #[test]
    fn latency_matches_eq1_shape() {
        let m = model().with_fixed_latency(Seconds::ZERO);
        // latency/cycle ∝ C·bits.
        let l = |r, c| m.cycle_latency(OuShape::new(r, c)).value();
        assert!((l(16, 32) / l(16, 16) - 2.0).abs() < 1e-9);
        assert!((l(64, 16) / l(8, 16) - 2.0).abs() < 1e-9); // bits 6 vs 3
    }

    #[test]
    fn layer_cost_scales_linearly_in_cycles() {
        let m = model();
        let s = OuShape::new(16, 16);
        let a = m.layer_cost(s, 100, 10, 10);
        let b = m.layer_cost(s, 200, 20, 10);
        assert!((b.energy / a.energy - 2.0).abs() < 1e-9);
        assert!((b.latency / a.latency - 2.0).abs() < 1e-9);
    }

    #[test]
    fn seq_and_sum_compose() {
        let m = model();
        let s = OuShape::new(16, 16);
        let a = m.layer_cost(s, 100, 10, 10);
        let b = m.layer_cost(s, 50, 5, 10);
        let c = a.seq(b);
        assert!((c.energy.value() - (a.energy + b.energy).value()).abs() < 1e-20);
        let summed: LayerCost = [a, b].into_iter().sum();
        assert_eq!(summed, c);
    }

    #[test]
    fn zero_cycles_zero_cost() {
        let c = model().layer_cost(OuShape::new(16, 16), 0, 0, 4);
        assert_eq!(c, LayerCost::ZERO);
        assert_eq!(c.edp(), odin_units::EnergyDelayProduct::ZERO);
    }

    #[test]
    #[should_panic(expected = "critical tile")]
    fn inconsistent_critical_panics() {
        let _ = model().layer_cost(OuShape::new(16, 16), 10, 20, 4);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn inconsistent_total_panics() {
        let _ = model().layer_cost(OuShape::new(16, 16), 100, 10, 4);
    }

    proptest! {
        #[test]
        fn costs_positive_and_finite(
            r_exp in 2u32..8, c_exp in 2u32..8, cycles in 1u64..1_000_000
        ) {
            let m = model();
            let s = OuShape::new(1 << r_exp, 1 << c_exp);
            let cost = m.layer_cost(s, cycles, cycles, 1);
            prop_assert!(cost.energy.value() > 0.0 && cost.energy.is_finite());
            prop_assert!(cost.latency.value() > 0.0 && cost.latency.is_finite());
        }

        #[test]
        fn cycle_energy_monotone_in_shape(r in 2u32..7, c in 2u32..7) {
            let m = model();
            let base = m.cycle_energy(OuShape::new(1 << r, 1 << c));
            let taller = m.cycle_energy(OuShape::new(1 << (r + 1), 1 << c));
            let wider = m.cycle_energy(OuShape::new(1 << r, 1 << (c + 1)));
            prop_assert!(taller >= base);
            prop_assert!(wider >= base);
        }
    }
}
