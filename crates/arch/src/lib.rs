//! PIM tile / PE / system architecture model for Odin.
//!
//! This crate turns OU geometry and cycle counts into physical costs:
//!
//! * [`ReconfigurableAdc`] — the 3–6-bit reconfigurable ADC whose
//!   precision tracks the OU height (`⌈log₂ R⌉`, Table I / §IV).
//! * [`TileConfig`] — the Table I tile: 96 crossbars of 128×128 cells,
//!   96 ADCs, 64 KB eDRAM, IR/OR registers, OU controller, 0.28 mm².
//! * [`OuCostModel`] — per-layer energy (Eq. 2 shape) and latency
//!   (Eq. 1 shape) with the per-cycle fixed overheads that make
//!   too-fine OUs expensive.
//! * [`SystemConfig`] — the 36-PE, 4-tiles-per-PE accelerator with its
//!   mesh NoC.
//! * [`OverheadLedger`] — the §V.E online-learning overhead accounting.
//!
//! # Examples
//!
//! ```
//! use odin_arch::{OuCostModel, ReconfigurableAdc};
//! use odin_xbar::OuShape;
//!
//! let model = OuCostModel::paper();
//! let coarse = model.layer_cost(OuShape::new(16, 16), 1_000, 100, 10);
//! let fine = model.layer_cost(OuShape::new(8, 4), 8_000, 800, 10);
//! // Fine OUs burn more total energy on per-cycle overheads.
//! assert!(fine.energy > coarse.energy);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adc;
mod cost;
mod dataflow;
mod index;
mod movement;
mod overhead;
mod placement;
mod sim;
mod system;
mod tile;

pub use adc::ReconfigurableAdc;
pub use cost::{LayerCost, OuCostModel};
pub use dataflow::{DataflowTrace, PipelineEvent, Stage};
pub use index::IndexBufferModel;
pub use movement::DataMovementModel;
pub use overhead::OverheadLedger;
pub use placement::{LayerPlacement, Placement, PlacementError};
pub use sim::{simulate_layer, TileSimReport};
pub use system::SystemConfig;
pub use tile::{TileComponent, TileConfig};
