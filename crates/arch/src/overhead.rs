//! §V.E overhead accounting for the online-learning hardware.

use odin_units::{Joules, Seconds, SquareMillimeters, Watts};
use serde::{Deserialize, Serialize};

use crate::system::SystemConfig;

/// The §V.E overhead ledger for layer-wise OU computation and online
/// learning:
///
/// * OU + ADC controllers (registers, muxes, comparators): 0.005 mm²
///   — 1.8 % of the 0.28 mm² tile.
/// * OU-size prediction (policy forward pass): 0.14 mW, 0.9 % latency
///   penalty versus static homogeneous 16×16 inference.
/// * OU policy update (100 epochs on the 50-example buffer): 0.22 µJ,
///   amortized over the inference runs between updates.
/// * Total online-learning hardware: 0.076 mm² — 0.2 % of the 36-PE
///   system.
///
/// # Examples
///
/// ```
/// use odin_arch::{OverheadLedger, SystemConfig};
///
/// let ledger = OverheadLedger::paper();
/// let pct = ledger.controller_tile_percent(&SystemConfig::paper());
/// assert!((pct - 1.8).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadLedger {
    controller_area: SquareMillimeters,
    prediction_power: Watts,
    prediction_latency_penalty: f64,
    policy_update_energy: Joules,
    total_learning_area: SquareMillimeters,
}

impl OverheadLedger {
    /// The §V.E figures.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            controller_area: SquareMillimeters::new(0.005),
            prediction_power: Watts::from_milli(0.14),
            prediction_latency_penalty: 0.009,
            policy_update_energy: Joules::from_microjoules(0.22),
            total_learning_area: SquareMillimeters::new(0.076),
        }
    }

    /// OU + ADC controller area per tile.
    #[must_use]
    pub fn controller_area(&self) -> SquareMillimeters {
        self.controller_area
    }

    /// Power drawn by the policy forward pass.
    #[must_use]
    pub fn prediction_power(&self) -> Watts {
        self.prediction_power
    }

    /// Fractional latency penalty of OU-size prediction versus static
    /// 16×16 inference (0.009 = 0.9 %).
    #[must_use]
    pub fn prediction_latency_penalty(&self) -> f64 {
        self.prediction_latency_penalty
    }

    /// Energy of one policy update (100 epochs over the 50-example
    /// buffer on the digital PIM core).
    #[must_use]
    pub fn policy_update_energy(&self) -> Joules {
        self.policy_update_energy
    }

    /// Total online-learning hardware area.
    #[must_use]
    pub fn total_learning_area(&self) -> SquareMillimeters {
        self.total_learning_area
    }

    /// Controller area as a percentage of the tile (§V.E: 1.8 %).
    #[must_use]
    pub fn controller_tile_percent(&self, system: &SystemConfig) -> f64 {
        self.controller_area.percent_of(system.tile().total_area())
    }

    /// Learning-hardware area as a percentage of the whole system
    /// (§V.E: 0.2 %).
    #[must_use]
    pub fn learning_system_percent(&self, system: &SystemConfig) -> f64 {
        self.total_learning_area.percent_of(system.compute_area())
    }

    /// Prediction energy added to one inference of latency
    /// `inference_latency` (power × time).
    #[must_use]
    pub fn prediction_energy(&self, inference_latency: Seconds) -> Joules {
        self.prediction_power * inference_latency
    }

    /// Prediction latency added to one inference.
    #[must_use]
    pub fn prediction_latency(&self, inference_latency: Seconds) -> Seconds {
        inference_latency * self.prediction_latency_penalty
    }

    /// Policy-update energy amortized per inference run, given `runs`
    /// runs between updates.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    #[must_use]
    pub fn amortized_update_energy(&self, runs: u64) -> Joules {
        assert!(runs > 0, "amortization window must be nonzero");
        self.policy_update_energy / runs as f64
    }
}

impl Default for OverheadLedger {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_percentages() {
        let ledger = OverheadLedger::paper();
        let sys = SystemConfig::paper();
        let tile_pct = ledger.controller_tile_percent(&sys);
        assert!((tile_pct - 1.8).abs() < 0.1, "tile pct {tile_pct}");
        let sys_pct = ledger.learning_system_percent(&sys);
        assert!((sys_pct - 0.19).abs() < 0.05, "system pct {sys_pct}");
    }

    #[test]
    fn prediction_costs_scale_with_inference() {
        let ledger = OverheadLedger::paper();
        let lat = Seconds::from_micros(10.0);
        let e = ledger.prediction_energy(lat);
        assert!((e.value() - 0.14e-3 * 10e-6).abs() < 1e-15);
        let l = ledger.prediction_latency(lat);
        assert!((l.value() - 10e-6 * 0.009).abs() < 1e-15);
    }

    #[test]
    fn update_energy_amortizes() {
        let ledger = OverheadLedger::paper();
        let per_run = ledger.amortized_update_energy(100);
        assert!((per_run.as_microjoules() - 0.0022).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_window_panics() {
        let _ = OverheadLedger::paper().amortized_update_energy(0);
    }

    #[test]
    fn accessors() {
        let l = OverheadLedger::paper();
        assert!((l.prediction_power().as_milli() - 0.14).abs() < 1e-12);
        assert!((l.prediction_latency_penalty() - 0.009).abs() < 1e-12);
        assert!((l.policy_update_energy().as_microjoules() - 0.22).abs() < 1e-12);
        assert!((l.controller_area().value() - 0.005).abs() < 1e-12);
        assert!((l.total_learning_area().value() - 0.076).abs() < 1e-12);
        assert_eq!(OverheadLedger::default(), l);
    }
}
