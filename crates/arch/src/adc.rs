//! The reconfigurable ADC.

use odin_units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

/// The tile's reconfigurable successive-approximation ADC (Table I:
/// 96 per tile, precision 3–6 bits).
///
/// Following §IV, the precision tracks the OU height: an `R`-row OU
/// accumulates at most `R` unit currents per bitline, so `⌈log₂ R⌉`
/// bits suffice; lower LSBs are disabled below that. Sensing delay and
/// conversion energy scale with the active bit count (SAR: one
/// capacitor-settling + comparison per bit).
///
/// # Examples
///
/// ```
/// use odin_arch::ReconfigurableAdc;
///
/// let adc = ReconfigurableAdc::paper();
/// assert_eq!(adc.bits_for_rows(16), 4);
/// assert_eq!(adc.bits_for_rows(4), 3);   // clamped to the minimum
/// assert_eq!(adc.bits_for_rows(128), 6); // clamped to the maximum
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigurableAdc {
    min_bits: u8,
    max_bits: u8,
    latency_per_bit: Seconds,
    energy_per_bit_row: Joules,
}

impl ReconfigurableAdc {
    /// The Table I ADC: 3–6 bits, representative 32 nm SAR timing.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            min_bits: 3,
            max_bits: 6,
            latency_per_bit: Seconds::from_nanos(0.1),
            energy_per_bit_row: Joules::from_picojoules(0.1),
        }
    }

    /// Minimum configurable precision.
    #[must_use]
    pub fn min_bits(&self) -> u8 {
        self.min_bits
    }

    /// Maximum configurable precision.
    #[must_use]
    pub fn max_bits(&self) -> u8 {
        self.max_bits
    }

    /// The precision used for an OU of `rows` wordlines:
    /// `⌈log₂ rows⌉` clamped to the configurable range.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero.
    #[must_use]
    pub fn bits_for_rows(&self, rows: usize) -> u8 {
        assert!(rows > 0, "OU height must be nonzero");
        let needed = (usize::BITS - (rows - 1).leading_zeros()).max(1) as u8;
        needed.clamp(self.min_bits, self.max_bits)
    }

    /// Conversion latency at a given precision.
    #[must_use]
    pub fn conversion_latency(&self, bits: u8) -> Seconds {
        self.latency_per_bit * f64::from(bits)
    }

    /// Conversion energy at a given precision for an OU of `rows`
    /// accumulated unit currents (sense amplifier effort grows with the
    /// summed current, giving Eq. 2's `log₂R · R` product).
    #[must_use]
    pub fn conversion_energy(&self, bits: u8, rows: usize) -> Joules {
        self.energy_per_bit_row * (f64::from(bits) * rows as f64)
    }
}

impl Default for ReconfigurableAdc {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn precision_tracks_log2_rows() {
        let adc = ReconfigurableAdc::paper();
        assert_eq!(adc.bits_for_rows(8), 3);
        assert_eq!(adc.bits_for_rows(16), 4);
        assert_eq!(adc.bits_for_rows(32), 5);
        assert_eq!(adc.bits_for_rows(64), 6);
        // Non-powers of two round up.
        assert_eq!(adc.bits_for_rows(9), 4);
        assert_eq!(adc.bits_for_rows(33), 6);
    }

    #[test]
    fn clamping() {
        let adc = ReconfigurableAdc::paper();
        assert_eq!(adc.bits_for_rows(1), 3);
        assert_eq!(adc.bits_for_rows(2), 3);
        assert_eq!(adc.bits_for_rows(128), 6);
        assert_eq!(adc.bits_for_rows(1024), 6);
    }

    #[test]
    fn latency_and_energy_scale_with_bits() {
        let adc = ReconfigurableAdc::paper();
        assert!(adc.conversion_latency(6) > adc.conversion_latency(3));
        assert!(adc.conversion_energy(6, 16).value() > adc.conversion_energy(3, 16).value());
        assert!(adc.conversion_energy(4, 32).value() > adc.conversion_energy(4, 16).value());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_rows_panics() {
        let _ = ReconfigurableAdc::paper().bits_for_rows(0);
    }

    proptest! {
        #[test]
        fn bits_always_in_range(rows in 1usize..100_000) {
            let adc = ReconfigurableAdc::paper();
            let b = adc.bits_for_rows(rows);
            prop_assert!((3..=6).contains(&b));
        }

        #[test]
        fn bits_monotone_in_rows(rows in 1usize..1000, extra in 0usize..1000) {
            let adc = ReconfigurableAdc::paper();
            prop_assert!(adc.bits_for_rows(rows + extra) >= adc.bits_for_rows(rows));
        }
    }
}
