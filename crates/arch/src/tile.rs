//! The Table I tile: component inventory with areas.

use odin_units::SquareMillimeters;
use serde::Serialize;

/// One line of the Table I tile inventory.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TileComponent {
    /// Component name as printed in Table I.
    pub name: &'static str,
    /// Specification string as printed in Table I.
    pub spec: &'static str,
    /// Silicon area.
    pub area: SquareMillimeters,
}

/// The ReRAM tile of Table I: 1.2 GHz, 32 nm, 0.28 mm².
///
/// # Examples
///
/// ```
/// use odin_arch::TileConfig;
///
/// let tile = TileConfig::paper();
/// assert_eq!(tile.crossbars_per_tile(), 96);
/// assert!((tile.total_area().value() - 0.28).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TileConfig {
    clock_hz: f64,
    crossbars_per_tile: usize,
    crossbar_size: usize,
    bits_per_cell: u8,
    adcs_per_tile: usize,
    edram_bytes: usize,
    components: Vec<TileComponent>,
}

impl TileConfig {
    /// The Table I tile.
    #[must_use]
    pub fn paper() -> Self {
        let mm2 = SquareMillimeters::new;
        let components = vec![
            TileComponent {
                name: "eDRAM buffer",
                spec: "size:64KB",
                area: mm2(0.083),
            },
            TileComponent {
                name: "eDRAM bus",
                spec: "buswidth:384",
                area: mm2(0.09),
            },
            TileComponent {
                name: "Router",
                spec: "flit:32, port 8",
                area: mm2(0.0375),
            },
            TileComponent {
                name: "Sigmoid, S+A, Maxpool",
                spec: "number:2,96,1",
                area: mm2(0.0038),
            },
            TileComponent {
                name: "OR, IR",
                spec: "size:3KB, 2KB",
                area: mm2(0.0282),
            },
            TileComponent {
                name: "OU Control",
                spec: "number:1",
                area: mm2(0.0048),
            },
            TileComponent {
                name: "ADC (with control)",
                spec: "number:96; reconfigurable precision 3 to 6 bits",
                area: mm2(0.03),
            },
            TileComponent {
                name: "DAC, S+H",
                spec: "number:96×128",
                area: mm2(0.0025),
            },
            TileComponent {
                name: "Memristor array",
                spec: "number:96, size:128×128, bits/cell:2, OU size: varying",
                area: mm2(0.0024),
            },
        ];
        Self {
            clock_hz: 1.2e9,
            crossbars_per_tile: 96,
            crossbar_size: 128,
            bits_per_cell: 2,
            adcs_per_tile: 96,
            edram_bytes: 64 * 1024,
            components,
        }
    }

    /// Tile clock frequency in hertz (1.2 GHz).
    #[must_use]
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Crossbars per tile (96).
    #[must_use]
    pub fn crossbars_per_tile(&self) -> usize {
        self.crossbars_per_tile
    }

    /// Crossbar dimension (128).
    #[must_use]
    pub fn crossbar_size(&self) -> usize {
        self.crossbar_size
    }

    /// Bits stored per ReRAM cell (2).
    #[must_use]
    pub fn bits_per_cell(&self) -> u8 {
        self.bits_per_cell
    }

    /// ADCs per tile (96 — one per crossbar).
    #[must_use]
    pub fn adcs_per_tile(&self) -> usize {
        self.adcs_per_tile
    }

    /// eDRAM buffer capacity in bytes (64 KB).
    #[must_use]
    pub fn edram_bytes(&self) -> usize {
        self.edram_bytes
    }

    /// The component inventory, in Table I order.
    #[must_use]
    pub fn components(&self) -> &[TileComponent] {
        &self.components
    }

    /// Total tile area (≈ 0.28 mm²).
    #[must_use]
    pub fn total_area(&self) -> SquareMillimeters {
        self.components.iter().map(|c| c.area).sum()
    }

    /// Weights storable per tile:
    /// `crossbars × (c × c/2)` differential pairs.
    #[must_use]
    pub fn weight_capacity(&self) -> usize {
        self.crossbars_per_tile * self.crossbar_size * (self.crossbar_size / 2)
    }
}

impl Default for TileConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_inventory_sums_to_tile_area() {
        let tile = TileConfig::paper();
        // 0.083+0.09+0.0375+0.0038+0.0282+0.0048+0.03+0.0025+0.0024
        // = 0.2822 mm² — Table I headline rounds to 0.28.
        let total = tile.total_area().value();
        assert!((total - 0.2822).abs() < 1e-9, "total {total}");
        assert_eq!(tile.components().len(), 9);
    }

    #[test]
    fn paper_parameters() {
        let tile = TileConfig::paper();
        assert_eq!(tile.crossbars_per_tile(), 96);
        assert_eq!(tile.crossbar_size(), 128);
        assert_eq!(tile.bits_per_cell(), 2);
        assert_eq!(tile.adcs_per_tile(), 96);
        assert_eq!(tile.edram_bytes(), 65536);
        assert!((tile.clock_hz() - 1.2e9).abs() < 1.0);
    }

    #[test]
    fn weight_capacity() {
        let tile = TileConfig::paper();
        // 96 crossbars × 128 rows × 64 differential columns.
        assert_eq!(tile.weight_capacity(), 96 * 128 * 64);
    }

    #[test]
    fn ou_control_is_small_fraction() {
        // §V.E: OU/ADC controller ≈ 1.8 % of the tile.
        let tile = TileConfig::paper();
        let ou = tile
            .components()
            .iter()
            .find(|c| c.name == "OU Control")
            .unwrap();
        let pct = ou.area.percent_of(tile.total_area());
        assert!(pct < 2.0, "OU control {pct}% of tile");
    }
}
