//! Activation data-movement costs: eDRAM buffer traffic and NoC
//! transfers between layers.
//!
//! The OU choice does not change how many activation bytes move — the
//! paper treats data movement as part of the substrate — but a
//! production model must still charge for it: inputs stream from the
//! tile's eDRAM into the input register for every MVM, and outputs hop
//! the mesh to whichever PE holds the next layer.

use odin_noc::{MeshNoc, NodeId};
use odin_units::{Joules, Seconds};
use serde::Serialize;

use crate::cost::LayerCost;
use crate::system::SystemConfig;

/// Per-layer activation traffic model.
///
/// Activations are 8-bit (the usual quantized-inference width on PIM
/// substrates). Input bytes are read from eDRAM once per output
/// position; output bytes are written back and shipped over the mesh
/// at the uniform-traffic mean hop distance.
///
/// # Examples
///
/// ```
/// use odin_arch::{DataMovementModel, SystemConfig};
///
/// let m = DataMovementModel::new(SystemConfig::paper());
/// let cost = m.layer_cost(1152, 128, 64);
/// assert!(cost.energy.as_microjoules() > 0.0);
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct DataMovementModel {
    system: SystemConfig,
    mean_hops: f64,
}

impl DataMovementModel {
    /// Builds the model for a system configuration.
    #[must_use]
    pub fn new(system: SystemConfig) -> Self {
        let noc: &MeshNoc = system.noc();
        // Uniform traffic: average the mean hop count over sources.
        let nodes = noc.nodes();
        let mean_hops = (0..nodes)
            .map(|i| noc.mean_hops_from(NodeId::new(i)).expect("node in range"))
            .sum::<f64>()
            / nodes as f64;
        Self { system, mean_hops }
    }

    /// The uniform-traffic mean hop count of the mesh.
    #[must_use]
    pub fn mean_hops(&self) -> f64 {
        self.mean_hops
    }

    /// The system configuration.
    #[must_use]
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// Bytes read from eDRAM to feed one layer (8-bit activations,
    /// `fan_in` values per output position).
    #[must_use]
    pub fn input_bytes(&self, fan_in: usize, positions: usize) -> u64 {
        (fan_in as u64) * (positions as u64)
    }

    /// Bytes produced by one layer (8-bit activations).
    #[must_use]
    pub fn output_bytes(&self, fan_out: usize, positions: usize) -> u64 {
        (fan_out as u64) * (positions as u64)
    }

    /// The energy/latency of moving one layer's activations: eDRAM
    /// reads for the inputs, eDRAM writes plus a mean-distance mesh
    /// transfer for the outputs.
    ///
    /// Latency counts only the NoC serialization (eDRAM accesses hide
    /// behind compute through the IR/OR double buffering of the tile).
    #[must_use]
    pub fn layer_cost(&self, fan_in: usize, fan_out: usize, positions: usize) -> LayerCost {
        let in_bytes = self.input_bytes(fan_in, positions);
        let out_bytes = self.output_bytes(fan_out, positions);
        let edram: Joules = self.system.edram_read_energy(in_bytes + out_bytes);
        let noc = self.system.noc();
        let router = noc.router();
        let flits = router.flits_for(out_bytes);
        let hop_energy = router.energy_per_flit_hop() * (flits as f64 * self.mean_hops);
        let hop_cycles = router.cycles_per_hop().count() as f64 * self.mean_hops
            + (flits.saturating_sub(1)) as f64;
        let latency = Seconds::new(hop_cycles / self.system.tile().clock_hz());
        LayerCost {
            energy: edram + hop_energy,
            latency,
        }
    }
}

impl DataMovementModel {
    /// Placement-aware variant of the per-layer cost: instead of the
    /// uniform-traffic mean hop distance, charge the *actual* mesh
    /// distance from the layer's PE to its successor's PE under a
    /// [`crate::Placement`]. Contiguous placement keeps consecutive
    /// layers adjacent, so this is typically cheaper than the mean-hop
    /// model.
    #[must_use]
    pub fn network_cost_placed(
        &self,
        network: &odin_dnn::NetworkDescriptor,
        placement: &crate::Placement,
    ) -> LayerCost {
        let noc = self.system.noc();
        let router = noc.router();
        let mut total = LayerCost {
            energy: Joules::ZERO,
            latency: Seconds::ZERO,
        };
        for (i, layer) in network.layers().iter().enumerate() {
            let in_bytes = self.input_bytes(layer.fan_in(), layer.output_positions());
            let out_bytes = self.output_bytes(layer.fan_out(), layer.output_positions());
            total.energy += self.system.edram_read_energy(in_bytes + out_bytes);
            let hops = match (placement.pe_of(i), placement.pe_of(i + 1)) {
                (Some(a), Some(b)) => noc.hops(a, b).unwrap_or(0),
                _ => 0, // final layer: results stay local
            };
            if hops > 0 {
                let flits = router.flits_for(out_bytes);
                total.energy += router.energy_per_flit_hop() * (flits * hops) as f64;
                let cycles = router.cycles_per_hop().count() * hops + flits.saturating_sub(1);
                total.latency += Seconds::new(cycles as f64 / self.system.tile().clock_hz());
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DataMovementModel {
        DataMovementModel::new(SystemConfig::paper())
    }

    #[test]
    fn mean_hops_of_6x6_mesh() {
        // Mean Manhattan distance on a 6×6 mesh is 4 exactly (over
        // ordered pairs with distinct endpoints it is 140/35 = 4).
        let m = model();
        assert!(
            (m.mean_hops() - 4.0).abs() < 0.1,
            "mean hops {}",
            m.mean_hops()
        );
    }

    #[test]
    fn byte_accounting() {
        let m = model();
        assert_eq!(m.input_bytes(1152, 64), 1152 * 64);
        assert_eq!(m.output_bytes(128, 64), 128 * 64);
    }

    #[test]
    fn cost_scales_with_traffic() {
        let m = model();
        let small = m.layer_cost(64, 64, 16);
        let big = m.layer_cost(64, 64, 160);
        assert!((big.energy / small.energy - 10.0).abs() < 0.5);
        assert!(big.latency >= small.latency);
    }

    #[test]
    fn movement_is_small_next_to_compute() {
        // The movement term must not distort the OU economics: for a
        // VGG-scale layer it is well under the ~µJ-scale compute cost.
        let m = model();
        let cost = m.layer_cost(4608, 512, 16);
        assert!(cost.energy.as_microjoules() < 0.2, "{}", cost.energy);
    }

    #[test]
    fn contiguous_placement_beats_uniform_traffic() {
        use odin_dnn::zoo::{self, Dataset};
        let m = model();
        let net = zoo::vgg11(Dataset::Cifar10);
        let placement = crate::Placement::greedy(&net, m.system()).unwrap();
        let placed = m.network_cost_placed(&net, &placement);
        let uniform: LayerCost = net
            .layers()
            .iter()
            .map(|l| m.layer_cost(l.fan_in(), l.fan_out(), l.output_positions()))
            .sum();
        assert!(
            placed.energy <= uniform.energy,
            "placed {} vs uniform {}",
            placed.energy,
            uniform.energy
        );
    }

    #[test]
    fn zero_positions_costs_only_a_header_flit() {
        let m = model();
        let cost = m.layer_cost(128, 128, 0);
        // No payload: just the header flit crossing the mean distance.
        assert!(cost.energy.value() < 1e-11, "{}", cost.energy);
    }
}
