//! Index-buffer storage accounting for compressed OU execution.
//!
//! §II: prior OU compression schemes compute input/output index
//! tables *offline* — which inputs feed each compressed row, which
//! outputs each compressed column produces — and store them in a
//! buffer before execution. The tables are specific to one DNN *and*
//! one OU configuration; with time-varying configurations the storage
//! demand is unbounded ("requiring unlimited storage for input and
//! output indices"). Odin instead forms virtual OUs at runtime in the
//! OU controller, whose state is a few registers.
//!
//! This module quantifies that argument.

use odin_dnn::NetworkDescriptor;
use odin_xbar::OuShape;
use serde::Serialize;

/// Storage model for compressed-execution index tables.
///
/// # Examples
///
/// ```
/// use odin_arch::IndexBufferModel;
/// use odin_dnn::zoo::{self, Dataset};
/// use odin_xbar::OuShape;
///
/// let m = IndexBufferModel::new();
/// let net = zoo::vgg11(Dataset::Cifar10);
/// let one = m.network_bytes(&net, OuShape::new(16, 16));
/// // One configuration of one DNN already needs hundreds of KB …
/// assert!(one > 100 * 1024);
/// // … while Odin's runtime OU controller state is constant.
/// assert!(m.odin_controller_bytes() < 1024);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct IndexBufferModel;

impl IndexBufferModel {
    /// Creates the model.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Index bytes for one layer at one OU configuration: every
    /// surviving (non-pruned) row stores its original input index so
    /// the right activation is fetched; every column group stores its
    /// output base index.
    #[must_use]
    pub fn layer_bytes(&self, fan_in: usize, fan_out: usize, sparsity: f64, shape: OuShape) -> u64 {
        let input_index_bits = bits_for(fan_in);
        let output_index_bits = bits_for(fan_out);
        let surviving_rows = ((fan_in as f64) * (1.0 - sparsity)).ceil() as u64;
        let col_groups = fan_out.div_ceil((shape.cols() / 2).max(1)) as u64;
        let input_bits = surviving_rows * col_groups * input_index_bits;
        let output_bits = col_groups * output_index_bits;
        (input_bits + output_bits).div_ceil(8)
    }

    /// Index bytes for a whole network at one OU configuration.
    #[must_use]
    pub fn network_bytes(&self, network: &NetworkDescriptor, shape: OuShape) -> u64 {
        network
            .layers()
            .iter()
            .map(|l| self.layer_bytes(l.fan_in(), l.fan_out(), l.sparsity(), shape))
            .sum()
    }

    /// Offline storage to support `configurations` distinct OU shapes
    /// for one network (prior work precomputes one table per shape —
    /// the whole 36-shape grid if the configuration may change).
    #[must_use]
    pub fn offline_bytes(&self, network: &NetworkDescriptor, configurations: &[OuShape]) -> u64 {
        configurations
            .iter()
            .map(|&s| self.network_bytes(network, s))
            .sum()
    }

    /// The runtime state of Odin's OU controller: the current shape
    /// (two level indices), row/column cursors, and the active-row
    /// scoreboard for one 128-row crossbar — a few dozen bytes,
    /// independent of the DNN and of how often the configuration
    /// changes.
    #[must_use]
    pub fn odin_controller_bytes(&self) -> u64 {
        // 2 B shape + 4 B cursors + 128-bit active-row mask + 16 B misc.
        2 + 4 + 16 + 16
    }
}

fn bits_for(n: usize) -> u64 {
    (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_dnn::zoo::{self, Dataset};
    use odin_xbar::OuGrid;

    #[test]
    fn layer_bytes_shrink_with_sparsity_and_wider_ous() {
        let m = IndexBufferModel::new();
        let dense = m.layer_bytes(4608, 512, 0.0, OuShape::new(16, 16));
        let sparse = m.layer_bytes(4608, 512, 0.8, OuShape::new(16, 16));
        assert!(sparse < dense);
        let wide = m.layer_bytes(4608, 512, 0.0, OuShape::new(16, 64));
        assert!(wide < dense, "wider OUs need fewer column groups");
    }

    #[test]
    fn supporting_the_full_grid_offline_is_megabytes() {
        // §II's argument: precomputing indices for every shape the
        // runtime might pick costs MBs per DNN, versus Odin's
        // constant controller state.
        let m = IndexBufferModel::new();
        let net = zoo::vgg11(Dataset::Cifar10);
        let grid: Vec<OuShape> = OuGrid::for_crossbar(128).iter().collect();
        let offline = m.offline_bytes(&net, &grid);
        assert!(
            offline > 10 * 1024 * 1024,
            "full-grid offline storage {offline} B"
        );
        let ratio = offline as f64 / m.odin_controller_bytes() as f64;
        assert!(ratio > 1e5, "odin advantage {ratio:.1e}×");
    }

    #[test]
    fn controller_state_is_tiny_and_constant() {
        let m = IndexBufferModel::new();
        assert!(m.odin_controller_bytes() < 64);
    }

    #[test]
    fn bits_for_powers() {
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(512), 9);
        assert_eq!(bits_for(513), 10);
        assert_eq!(bits_for(1), 1);
    }
}
