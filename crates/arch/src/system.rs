//! The 36-PE accelerator.

use odin_noc::MeshNoc;
use odin_units::{Joules, SquareMillimeters};
use serde::Serialize;

use crate::tile::TileConfig;

/// The full Odin-enabled accelerator: 36 ReRAM PEs on a 6×6 mesh, four
/// tiles per PE (§V.A), plus a dedicated digital PIM core for policy
/// gradient computation (following ReHy).
///
/// # Examples
///
/// ```
/// use odin_arch::SystemConfig;
///
/// let sys = SystemConfig::paper();
/// assert_eq!(sys.pe_count(), 36);
/// assert_eq!(sys.total_crossbars(), 36 * 4 * 96);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SystemConfig {
    tile: TileConfig,
    tiles_per_pe: usize,
    noc: MeshNoc,
    edram_read_energy_per_byte: Joules,
}

impl SystemConfig {
    /// The paper's 36-PE system.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            tile: TileConfig::paper(),
            tiles_per_pe: 4,
            noc: MeshNoc::paper_6x6(),
            // Representative 32 nm eDRAM: ~1 pJ/byte read.
            edram_read_energy_per_byte: Joules::from_picojoules(1.0),
        }
    }

    /// The tile configuration.
    #[must_use]
    pub fn tile(&self) -> &TileConfig {
        &self.tile
    }

    /// Tiles per PE (4).
    #[must_use]
    pub fn tiles_per_pe(&self) -> usize {
        self.tiles_per_pe
    }

    /// The mesh NoC.
    #[must_use]
    pub fn noc(&self) -> &MeshNoc {
        &self.noc
    }

    /// Number of PEs (mesh nodes).
    #[must_use]
    pub fn pe_count(&self) -> usize {
        self.noc.nodes()
    }

    /// Total crossbars in the system.
    #[must_use]
    pub fn total_crossbars(&self) -> usize {
        self.pe_count() * self.tiles_per_pe * self.tile.crossbars_per_tile()
    }

    /// Total weight capacity (differential pairs) of the system.
    #[must_use]
    pub fn total_weight_capacity(&self) -> usize {
        self.pe_count() * self.tiles_per_pe * self.tile.weight_capacity()
    }

    /// Total compute silicon area (tiles only, before online-learning
    /// overheads).
    #[must_use]
    pub fn compute_area(&self) -> SquareMillimeters {
        self.tile.total_area() * (self.pe_count() * self.tiles_per_pe) as f64
    }

    /// eDRAM read energy for fetching `bytes` of activations.
    #[must_use]
    pub fn edram_read_energy(&self, bytes: u64) -> Joules {
        self.edram_read_energy_per_byte * bytes as f64
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_dimensions() {
        let sys = SystemConfig::paper();
        assert_eq!(sys.pe_count(), 36);
        assert_eq!(sys.tiles_per_pe(), 4);
        assert_eq!(sys.total_crossbars(), 13_824);
        assert_eq!(sys.total_weight_capacity(), 36 * 4 * 96 * 128 * 64);
    }

    #[test]
    fn compute_area_is_tiles_times_area() {
        let sys = SystemConfig::paper();
        let expect = sys.tile().total_area().value() * 144.0;
        assert!((sys.compute_area().value() - expect).abs() < 1e-9);
        // ≈ 40 mm² — the £V.E 0.076 mm² overhead is ~0.2 % of this.
        assert!(sys.compute_area().value() > 30.0);
    }

    #[test]
    fn capacity_fits_resnet18() {
        // ResNet18 has ~11 M weights; the system stores 28 M pairs.
        let sys = SystemConfig::paper();
        assert!(sys.total_weight_capacity() > 11_000_000);
    }

    #[test]
    fn edram_energy_scales() {
        let sys = SystemConfig::paper();
        let one = sys.edram_read_energy(1);
        let kb = sys.edram_read_energy(1024);
        assert!((kb.value() / one.value() - 1024.0).abs() < 1e-9);
    }
}
