//! Quantization of signed DNN weights onto differential cell pairs.

use crate::cell::CellLevel;
use crate::error::DeviceError;
use crate::params::DeviceParams;

/// A signed weight encoded as a differential pair of cell levels:
/// positive magnitude on the `plus` column, negative magnitude on the
/// `minus` column. Analog accelerators subtract the two bitline
/// currents to recover the signed product.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct DifferentialWeight {
    /// Level programmed on the positive column.
    pub plus: CellLevel,
    /// Level programmed on the negative column.
    pub minus: CellLevel,
}

impl DifferentialWeight {
    /// `true` when both columns are in the erased state, i.e. the weight
    /// is an exact zero that the OU scheduler can skip.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.plus == CellLevel(0) && self.minus == CellLevel(0)
    }
}

/// Maps `f32` weights in `[-max_abs, max_abs]` onto differential
/// [`CellLevel`] pairs and back.
///
/// The codec is the boundary between the DNN world (signed reals) and
/// the device world (unsigned conductance levels). Encoding is
/// symmetric: a weight and its negation swap their `plus`/`minus`
/// columns.
///
/// # Examples
///
/// ```
/// use odin_device::{DeviceParams, WeightCodec};
///
/// let codec = WeightCodec::new(&DeviceParams::paper(), 1.0);
/// let w = codec.encode(0.7)?;
/// let back = codec.decode(w);
/// assert!((back - 0.7).abs() <= codec.quantization_step());
/// # Ok::<(), odin_device::DeviceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WeightCodec {
    max_abs: f64,
    levels: u16,
}

impl WeightCodec {
    /// Creates a codec for weights bounded by `max_abs` on a device with
    /// `params.levels()` conductance levels per cell.
    ///
    /// # Panics
    ///
    /// Panics if `max_abs` is not strictly positive and finite.
    #[must_use]
    pub fn new(params: &DeviceParams, max_abs: f64) -> Self {
        assert!(
            max_abs.is_finite() && max_abs > 0.0,
            "max_abs must be positive and finite"
        );
        Self {
            max_abs,
            levels: params.levels(),
        }
    }

    /// The magnitude represented by one level step.
    #[must_use]
    pub fn quantization_step(&self) -> f64 {
        self.max_abs / f64::from(self.levels - 1)
    }

    /// The largest representable magnitude.
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// Encodes a signed weight into a differential level pair.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::WeightOutOfRange`] if `|weight|` exceeds
    /// `max_abs` (after a small tolerance) or `weight` is not finite.
    pub fn encode(&self, weight: f64) -> Result<DifferentialWeight, DeviceError> {
        if !weight.is_finite() || weight.abs() > self.max_abs * (1.0 + 1e-9) {
            return Err(DeviceError::WeightOutOfRange { weight });
        }
        let magnitude = (weight.abs().min(self.max_abs) / self.quantization_step()).round() as u16;
        let level = CellLevel(magnitude.min(self.levels - 1));
        Ok(if weight >= 0.0 {
            DifferentialWeight {
                plus: level,
                minus: CellLevel(0),
            }
        } else {
            DifferentialWeight {
                plus: CellLevel(0),
                minus: level,
            }
        })
    }

    /// Decodes a differential pair back to a signed weight value.
    #[must_use]
    pub fn decode(&self, w: DifferentialWeight) -> f64 {
        let step = self.quantization_step();
        (f64::from(w.plus.index()) - f64::from(w.minus.index())) * step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn codec() -> WeightCodec {
        WeightCodec::new(&DeviceParams::paper(), 1.0)
    }

    #[test]
    fn zero_encodes_to_skippable_zero() {
        let w = codec().encode(0.0).unwrap();
        assert!(w.is_zero());
        assert_eq!(codec().decode(w), 0.0);
    }

    #[test]
    fn symmetric_encoding() {
        let c = codec();
        let pos = c.encode(0.66).unwrap();
        let neg = c.encode(-0.66).unwrap();
        assert_eq!(pos.plus, neg.minus);
        assert_eq!(pos.minus, neg.plus);
        assert!((c.decode(pos) + c.decode(neg)).abs() < 1e-12);
    }

    #[test]
    fn rejects_out_of_range_and_nonfinite() {
        let c = codec();
        assert!(matches!(
            c.encode(1.5),
            Err(DeviceError::WeightOutOfRange { .. })
        ));
        assert!(c.encode(f64::NAN).is_err());
        assert!(c.encode(f64::INFINITY).is_err());
    }

    #[test]
    fn extremes_map_to_extreme_levels() {
        let c = codec();
        let top = c.encode(1.0).unwrap();
        assert_eq!(top.plus, CellLevel(3));
        let bottom = c.encode(-1.0).unwrap();
        assert_eq!(bottom.minus, CellLevel(3));
    }

    #[test]
    fn more_bits_give_finer_steps() {
        let p4 = DeviceParams::paper().with_bits_per_cell(4).unwrap();
        let fine = WeightCodec::new(&p4, 1.0);
        assert!(fine.quantization_step() < codec().quantization_step());
    }

    proptest! {
        #[test]
        fn roundtrip_within_half_step(w in -1.0f64..1.0) {
            let c = codec();
            let enc = c.encode(w).unwrap();
            let dec = c.decode(enc);
            prop_assert!((dec - w).abs() <= c.quantization_step() / 2.0 + 1e-12);
        }

        #[test]
        fn encode_never_uses_both_columns(w in -1.0f64..1.0) {
            let enc = codec().encode(w).unwrap();
            prop_assert!(enc.plus == CellLevel(0) || enc.minus == CellLevel(0));
        }
    }
}
