//! Write-endurance accounting.
//!
//! ReRAM cells survive a bounded number of SET/RESET cycles (10⁶–10¹²
//! depending on the device class). Reprogramming-heavy OU strategies
//! therefore do not just burn energy — they consume array lifetime.
//! This module turns a reprogramming cadence into a wear-out horizon,
//! the companion metric to §V.C's reprogram counts.

use odin_units::Seconds;
use serde::{Deserialize, Serialize};

use crate::error::DeviceError;

/// Endurance model: cycles-to-failure and the resulting lifetime under
/// a periodic full-array reprogramming regime.
///
/// # Examples
///
/// ```
/// use odin_device::EnduranceModel;
/// use odin_units::Seconds;
///
/// let m = EnduranceModel::paper();
/// // Reprogramming every 1.2e6 s (the 16×16 cadence):
/// let life = m.lifetime(Seconds::new(1.2e6));
/// // 1e8 write cycles × 1.2e6 s each ≈ 3.8e6 years — endurance is
/// // not the binding constraint, energy is; but the ordering between
/// // strategies is still meaningful.
/// assert!(life.value() > 1e12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnduranceModel {
    cycles_to_failure: f64,
}

impl EnduranceModel {
    /// A representative HfOx multi-level corner: 10⁸ write cycles
    /// (multi-level write-verify wears faster than binary switching).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            cycles_to_failure: 1e8,
        }
    }

    /// Creates a model with an explicit cycles-to-failure figure.
    ///
    /// # Panics
    ///
    /// Panics unless `cycles_to_failure` is positive and finite.
    #[must_use]
    pub fn new(cycles_to_failure: f64) -> Self {
        assert!(
            cycles_to_failure.is_finite() && cycles_to_failure > 0.0,
            "cycles to failure must be positive"
        );
        Self { cycles_to_failure }
    }

    /// Cycles to failure.
    #[must_use]
    pub fn cycles_to_failure(&self) -> f64 {
        self.cycles_to_failure
    }

    /// Array lifetime when every cell is rewritten once per
    /// `reprogram_period`.
    #[must_use]
    pub fn lifetime(&self, reprogram_period: Seconds) -> Seconds {
        Seconds::new(self.cycles_to_failure * reprogram_period.value())
    }

    /// Fraction of endurance consumed by `writes` programming passes.
    #[must_use]
    pub fn wear_fraction(&self, writes: u64) -> f64 {
        writes as f64 / self.cycles_to_failure
    }

    /// Relative lifetime of strategy A versus strategy B given their
    /// reprogram counts over the same horizon (A reprogramming half as
    /// often lives twice as long).
    ///
    /// # Panics
    ///
    /// Panics if `b_reprograms` is zero.
    #[must_use]
    pub fn lifetime_ratio(&self, a_reprograms: u64, b_reprograms: u64) -> f64 {
        assert!(b_reprograms > 0, "reference strategy must reprogram");
        b_reprograms as f64 / a_reprograms.max(1) as f64
    }
}

impl Default for EnduranceModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// Per-array write-cycle accounting against a hard endurance budget.
///
/// Every full-array programming pass charges one write cycle; once an
/// array has consumed its budget, [`charge`](Self::charge) refuses with
/// [`DeviceError::EnduranceExceeded`] and the caller must degrade
/// (remap to a spare, or take the array out of service). The budget is
/// `max(1, ⌊cycles_to_failure⌋)`, so a fresh array always admits its
/// initial programming pass.
///
/// # Examples
///
/// ```
/// use odin_device::{EnduranceLedger, EnduranceModel};
///
/// let mut ledger = EnduranceLedger::new(EnduranceModel::new(2.0), 1);
/// assert_eq!(ledger.charge(0), Ok(1));
/// assert_eq!(ledger.charge(0), Ok(2));
/// assert!(ledger.charge(0).is_err()); // budget of 2 exhausted
/// assert!(!ledger.can_write(0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnduranceLedger {
    model: EnduranceModel,
    budget: u64,
    writes: Vec<u64>,
}

impl EnduranceLedger {
    /// Creates a ledger tracking `arrays` arrays under `model`.
    #[must_use]
    pub fn new(model: EnduranceModel, arrays: usize) -> Self {
        // Truncating keeps the budget conservative; the max(1) floor
        // guarantees initial programming always succeeds.
        let budget = (model.cycles_to_failure().floor() as u64).max(1);
        Self {
            model,
            budget,
            writes: vec![0; arrays],
        }
    }

    /// The underlying endurance model.
    #[must_use]
    pub fn model(&self) -> &EnduranceModel {
        &self.model
    }

    /// Write cycles each array may consume before failing.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Number of arrays tracked.
    #[must_use]
    pub fn arrays(&self) -> usize {
        self.writes.len()
    }

    /// Write cycles charged to `array` so far.
    ///
    /// # Panics
    ///
    /// Panics if `array` is out of range.
    #[must_use]
    pub fn writes(&self, array: usize) -> u64 {
        self.writes[array]
    }

    /// Total write cycles charged across all arrays.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }

    /// Fraction of `array`'s budget consumed (1.0 = exhausted).
    ///
    /// # Panics
    ///
    /// Panics if `array` is out of range.
    #[must_use]
    pub fn wear(&self, array: usize) -> f64 {
        self.writes[array] as f64 / self.budget as f64
    }

    /// `true` while `array` still has budget for another write.
    ///
    /// # Panics
    ///
    /// Panics if `array` is out of range.
    #[must_use]
    pub fn can_write(&self, array: usize) -> bool {
        self.writes[array] < self.budget
    }

    /// Charges one programming pass to `array`, returning the new write
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::EnduranceExceeded`] when the array's
    /// budget is already consumed; the write is not recorded.
    ///
    /// # Panics
    ///
    /// Panics if `array` is out of range.
    pub fn charge(&mut self, array: usize) -> Result<u64, DeviceError> {
        if self.writes[array] >= self.budget {
            return Err(DeviceError::EnduranceExceeded {
                array,
                writes: self.writes[array],
                budget: self.budget,
            });
        }
        self.writes[array] += 1;
        Ok(self.writes[array])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lifetime_scales_with_period() {
        let m = EnduranceModel::paper();
        let short = m.lifetime(Seconds::new(1.2e6));
        let long = m.lifetime(Seconds::new(1.06e8));
        assert!((long / short - 1.06e8 / 1.2e6).abs() < 1e-6);
    }

    #[test]
    fn wear_accounting() {
        let m = EnduranceModel::new(1000.0);
        assert!((m.wear_fraction(10) - 0.01).abs() < 1e-12);
        assert!((m.wear_fraction(1000) - 1.0).abs() < 1e-12);
        assert_eq!(m.cycles_to_failure(), 1000.0);
        assert_eq!(EnduranceModel::default(), EnduranceModel::paper());
    }

    #[test]
    fn strategy_lifetime_ratio() {
        // §V.C: 16×16 reprograms 43×, Odin once → Odin's arrays last
        // ~43× longer.
        let m = EnduranceModel::paper();
        assert!((m.lifetime_ratio(1, 43) - 43.0).abs() < 1e-12);
        // Zero reprograms clamp to one pass (initial programming).
        assert!((m.lifetime_ratio(0, 43) - 43.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_cycles_panics() {
        let _ = EnduranceModel::new(0.0);
    }

    #[test]
    fn ledger_charges_until_budget_then_refuses() {
        let mut ledger = EnduranceLedger::new(EnduranceModel::new(3.0), 2);
        assert_eq!(ledger.budget(), 3);
        assert_eq!(ledger.arrays(), 2);
        assert_eq!(ledger.charge(0), Ok(1));
        assert_eq!(ledger.charge(0), Ok(2));
        assert!((ledger.wear(0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ledger.charge(0), Ok(3));
        assert!(!ledger.can_write(0));
        assert_eq!(
            ledger.charge(0),
            Err(DeviceError::EnduranceExceeded {
                array: 0,
                writes: 3,
                budget: 3,
            })
        );
        // A refused charge is not recorded; other arrays are untouched.
        assert_eq!(ledger.writes(0), 3);
        assert_eq!(ledger.writes(1), 0);
        assert!(ledger.can_write(1));
        assert_eq!(ledger.total_writes(), 3);
        assert_eq!(ledger.model(), &EnduranceModel::new(3.0));
    }

    #[test]
    fn ledger_budget_floors_at_one() {
        let mut ledger = EnduranceLedger::new(EnduranceModel::new(0.25), 1);
        assert_eq!(ledger.budget(), 1);
        assert_eq!(ledger.charge(0), Ok(1));
        assert!(ledger.charge(0).is_err());
    }

    proptest! {
        #[test]
        fn wear_monotone(w1 in 0u64..1_000_000, extra in 0u64..1_000_000) {
            let m = EnduranceModel::paper();
            prop_assert!(m.wear_fraction(w1 + extra) >= m.wear_fraction(w1));
        }

        /// Boundary behaviour at exhaustion: exactly `budget` charges
        /// succeed (returning 1..=budget), the write at the boundary
        /// fails with the precise [`DeviceError::EnduranceExceeded`]
        /// payload, and any number of refused retries saturates — the
        /// counter never moves past the budget, so it can never wrap.
        #[test]
        fn charges_saturate_exactly_at_budget(
            budget in 1u64..64,
            refused_retries in 1usize..16,
        ) {
            let mut ledger = EnduranceLedger::new(EnduranceModel::new(budget as f64), 2);
            prop_assert_eq!(ledger.budget(), budget);
            for i in 1..=budget {
                prop_assert!(ledger.can_write(0));
                prop_assert_eq!(ledger.charge(0), Ok(i));
                prop_assert!(ledger.wear(0) <= 1.0);
            }
            // Exhausted exactly at the last admitted cycle.
            prop_assert_eq!(ledger.writes(0), budget);
            prop_assert_eq!(ledger.wear(0), 1.0);
            prop_assert!(!ledger.can_write(0));
            for _ in 0..refused_retries {
                prop_assert_eq!(
                    ledger.charge(0),
                    Err(DeviceError::EnduranceExceeded {
                        array: 0,
                        writes: budget,
                        budget,
                    })
                );
                // Refused charges are never recorded: no creep, no wrap.
                prop_assert_eq!(ledger.writes(0), budget);
            }
            // The sibling array is untouched by array 0's exhaustion.
            prop_assert_eq!(ledger.writes(1), 0);
            prop_assert!(ledger.can_write(1));
            prop_assert_eq!(ledger.total_writes(), budget);
        }

        /// The budget is the conservative floor of cycles-to-failure,
        /// never rounding a fractional cycle up, with a floor of one so
        /// initial programming always succeeds.
        #[test]
        fn budget_is_conservative_floor(cycles in 0.01f64..1_000.0) {
            let ledger = EnduranceLedger::new(EnduranceModel::new(cycles), 1);
            let expected = (cycles.floor() as u64).max(1);
            prop_assert_eq!(ledger.budget(), expected);
            prop_assert!(ledger.budget() as f64 <= cycles.max(1.0));
        }
    }
}
