//! ReRAM device physics for the Odin PIM simulator.
//!
//! This crate models the non-volatile memory cells underneath every
//! crossbar in the Odin stack:
//!
//! * [`DeviceParams`] — the Table II device corner (`G_ON`/`G_OFF`,
//!   drift coefficient `v`, bits per cell, pulse costs).
//! * [`DriftModel`] — time-dependent conductance drift, Eq. 3 of the
//!   paper: `G_drift(t) = G_ON · (t/t₀)^(−v)`.
//! * [`ReramCell`] — a programmable multi-level cell with programming
//!   variation, read noise and stuck-at faults.
//! * [`WeightCodec`] — quantization of signed DNN weights onto
//!   differential pairs of multi-level cells.
//! * [`ReprogramCost`] — the energy/latency ledger for rewriting arrays
//!   when drift makes every OU size violate the non-ideality budget.
//!
//! # Examples
//!
//! ```
//! use odin_device::{DeviceParams, DriftModel};
//! use odin_units::Seconds;
//!
//! let params = DeviceParams::paper();
//! let drift = DriftModel::new(&params);
//! // After 1e4 s the on-state conductance has visibly decayed.
//! let g = drift.conductance_at(Seconds::new(1e4));
//! assert!(g < params.g_on());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod codec;
mod drift;
mod endurance;
mod error;
mod fault;
mod noise;
mod params;
mod reprogram;
mod thermal;

pub use cell::{CellLevel, ReramCell};
pub use codec::{DifferentialWeight, WeightCodec};
pub use drift::{DriftMemo, DriftModel};
pub use endurance::{EnduranceLedger, EnduranceModel};
pub use error::DeviceError;
pub use fault::{FaultInjector, FaultKind, FaultMap};
pub use noise::{NoiseModel, ProgrammingNoise, ReadNoise};
pub use params::DeviceParams;
pub use reprogram::{ReprogramCost, ReprogramLedger};
pub use thermal::ThermalModel;
