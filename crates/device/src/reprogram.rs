//! Reprogramming cost model and ledger.
//!
//! When drift pushes the non-ideality ΔG above the threshold η for
//! *every* candidate OU size, the runtime must rewrite the DNN weights
//! into the arrays (Algorithm 1, lines 7–8). Reprogramming restores
//! pristine conductances but costs energy and latency proportional to
//! the number of programmed cells — this is exactly the overhead that
//! makes coarse homogeneous OUs (which reprogram 43× for VGG11 over
//! `t₀..1e8 s`) lose on *total* EDP despite winning on inference EDP.

use odin_units::{Joules, Seconds};

use crate::params::DeviceParams;

/// The energy/latency cost of one full reprogramming pass over a set of
/// cells.
///
/// # Examples
///
/// ```
/// use odin_device::{DeviceParams, ReprogramCost};
///
/// let cost = ReprogramCost::for_cells(1_000_000, &DeviceParams::paper());
/// assert!(cost.energy().as_microjoules() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReprogramCost {
    cells: u64,
    energy: Joules,
    latency: Seconds,
}

impl ReprogramCost {
    /// Cost of rewriting `cells` cells with the given device corner.
    ///
    /// Writes proceed row-parallel within a crossbar (one row of 128
    /// cells per pulse train) and eight crossbar banks are programmed
    /// concurrently, so latency scales with `cells / 1024` while
    /// energy scales with every cell written.
    #[must_use]
    pub fn for_cells(cells: u64, params: &DeviceParams) -> Self {
        const ROW_PARALLELISM: u64 = 128 * 8;
        let pulses = cells.div_ceil(ROW_PARALLELISM);
        Self {
            cells,
            energy: params.write_energy_per_cell() * cells as f64,
            latency: params.write_latency_per_cell() * pulses as f64,
        }
    }

    /// Number of cells rewritten.
    #[must_use]
    pub fn cells(&self) -> u64 {
        self.cells
    }

    /// Total programming energy.
    #[must_use]
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Total programming latency.
    #[must_use]
    pub fn latency(&self) -> Seconds {
        self.latency
    }
}

/// Accumulates reprogramming events over an inference campaign.
///
/// The evaluation (Fig. 6–8) charges each OU strategy for the
/// reprogramming passes it triggered; this ledger is how the harness
/// keeps score.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReprogramLedger {
    events: Vec<ReprogramEvent>,
}

/// One recorded reprogramming pass.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReprogramEvent {
    /// Wall-clock time at which the pass happened.
    pub at: Seconds,
    /// Its cost.
    pub cost: ReprogramCost,
}

impl ReprogramLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a reprogramming pass at time `at`.
    pub fn record(&mut self, at: Seconds, cost: ReprogramCost) {
        self.events.push(ReprogramEvent { at, cost });
    }

    /// Number of reprogramming passes so far.
    #[must_use]
    pub fn count(&self) -> usize {
        self.events.len()
    }

    /// Total energy spent reprogramming.
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.events.iter().map(|e| e.cost.energy()).sum()
    }

    /// Total latency spent reprogramming.
    #[must_use]
    pub fn total_latency(&self) -> Seconds {
        self.events.iter().map(|e| e.cost.latency()).sum()
    }

    /// The recorded events, oldest first.
    #[must_use]
    pub fn events(&self) -> &[ReprogramEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cost_scales_linearly_in_energy() {
        let p = DeviceParams::paper();
        let one = ReprogramCost::for_cells(1000, &p);
        let ten = ReprogramCost::for_cells(10_000, &p);
        assert!((ten.energy() / one.energy() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn latency_uses_row_and_bank_parallelism() {
        let p = DeviceParams::paper();
        let c = ReprogramCost::for_cells(1024, &p);
        assert!((c.latency().value() - p.write_latency_per_cell().value()).abs() < 1e-18);
        let c2 = ReprogramCost::for_cells(1025, &p);
        assert!((c2.latency() / c.latency() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cells_zero_cost() {
        let c = ReprogramCost::for_cells(0, &DeviceParams::paper());
        assert_eq!(c.energy(), Joules::ZERO);
        assert_eq!(c.latency(), Seconds::ZERO);
        assert_eq!(c.cells(), 0);
    }

    #[test]
    fn ledger_accumulates() {
        let p = DeviceParams::paper();
        let mut ledger = ReprogramLedger::new();
        assert_eq!(ledger.count(), 0);
        ledger.record(Seconds::new(10.0), ReprogramCost::for_cells(100, &p));
        ledger.record(Seconds::new(20.0), ReprogramCost::for_cells(100, &p));
        assert_eq!(ledger.count(), 2);
        let expect = ReprogramCost::for_cells(100, &p).energy() * 2.0;
        assert!((ledger.total_energy().value() - expect.value()).abs() < 1e-18);
        assert_eq!(ledger.events().len(), 2);
        assert!(ledger.total_latency().value() > 0.0);
    }

    proptest! {
        #[test]
        fn energy_monotone_in_cells(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            let p = DeviceParams::paper();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let cl = ReprogramCost::for_cells(lo, &p);
            let ch = ReprogramCost::for_cells(hi, &p);
            prop_assert!(ch.energy() >= cl.energy());
            prop_assert!(ch.latency() >= cl.latency());
        }
    }
}
