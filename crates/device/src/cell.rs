//! A single programmable multi-level ReRAM cell.

use odin_units::{Seconds, Siemens};
use rand::Rng;

use crate::drift::DriftModel;
use crate::noise::NoiseModel;
use crate::params::DeviceParams;

/// A discrete conductance level stored in a multi-level cell.
///
/// With 2 bits/cell (Table I) levels range over `0..=3`, level 0 being
/// `G_OFF` and the maximum level `G_ON`.
#[derive(
    Debug,
    Clone,
    Copy,
    Default,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct CellLevel(pub u16);

impl CellLevel {
    /// The raw level index.
    #[must_use]
    pub fn index(self) -> u16 {
        self.0
    }
}

impl std::fmt::Display for CellLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One ReRAM cell: a target level, the residual programming error and
/// the time it was last programmed.
///
/// The *effective* conductance observed during compute combines the
/// programmed conductance, the one-shot programming error, and the
/// multiplicative drift decay since the last program operation.
///
/// # Examples
///
/// ```
/// use odin_device::{DeviceParams, ReramCell, CellLevel, NoiseModel};
/// use odin_units::Seconds;
/// use rand::SeedableRng;
///
/// let params = DeviceParams::paper();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut cell = ReramCell::new(&params);
/// cell.program(CellLevel(3), Seconds::new(1.0), &params, &NoiseModel::disabled(), &mut rng);
/// let fresh = cell.effective_conductance(Seconds::new(1.0), &params);
/// let aged = cell.effective_conductance(Seconds::new(1e6), &params);
/// assert!(aged < fresh);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReramCell {
    level: CellLevel,
    programmed_conductance: Siemens,
    programmed_at: Seconds,
    write_count: u64,
}

impl ReramCell {
    /// A fresh cell in the erased (off) state.
    #[must_use]
    pub fn new(params: &DeviceParams) -> Self {
        Self {
            level: CellLevel(0),
            programmed_conductance: params.g_off(),
            programmed_at: params.program_reference_time(),
            write_count: 0,
        }
    }

    /// Programs the cell to `level` at wall-clock instant `now`,
    /// applying one-shot programming variation from `noise`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside the device's level range.
    pub fn program<R: Rng + ?Sized>(
        &mut self,
        level: CellLevel,
        now: Seconds,
        params: &DeviceParams,
        noise: &NoiseModel,
        rng: &mut R,
    ) {
        let target = params.level_conductance(level.index());
        let achieved = noise.programming().perturb(target.value(), rng);
        self.level = level;
        self.programmed_conductance = Siemens::new(achieved);
        self.programmed_at = now;
        self.write_count += 1;
    }

    /// The stored level the cell was last programmed to.
    #[must_use]
    pub fn level(&self) -> CellLevel {
        self.level
    }

    /// The conductance achieved immediately after the last program
    /// operation (target ± programming error).
    #[must_use]
    pub fn programmed_conductance(&self) -> Siemens {
        self.programmed_conductance
    }

    /// When the cell was last programmed.
    #[must_use]
    pub fn programmed_at(&self) -> Seconds {
        self.programmed_at
    }

    /// How many times this cell has been written (endurance tracking).
    #[must_use]
    pub fn write_count(&self) -> u64 {
        self.write_count
    }

    /// The conductance the cell presents at wall-clock time `now`,
    /// after drift. Drift scales multiplicatively from the instant the
    /// cell was programmed, so reprogramming resets the decay.
    #[must_use]
    pub fn effective_conductance(&self, now: Seconds, params: &DeviceParams) -> Siemens {
        let drift = DriftModel::new(params);
        let elapsed = Seconds::new(
            (now.value() - self.programmed_at.value() + params.program_reference_time().value())
                .max(params.program_reference_time().value()),
        );
        let scaled = self.programmed_conductance * drift.scale_at(elapsed);
        scaled.max(params.g_off())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn fresh_cell_is_off() {
        let p = DeviceParams::paper();
        let cell = ReramCell::new(&p);
        assert_eq!(cell.level(), CellLevel(0));
        assert_eq!(cell.programmed_conductance(), p.g_off());
        assert_eq!(cell.write_count(), 0);
    }

    #[test]
    fn program_sets_level_and_counts_writes() {
        let p = DeviceParams::paper();
        let mut cell = ReramCell::new(&p);
        let mut r = rng();
        cell.program(
            CellLevel(2),
            Seconds::new(1.0),
            &p,
            &NoiseModel::disabled(),
            &mut r,
        );
        assert_eq!(cell.level(), CellLevel(2));
        assert_eq!(cell.write_count(), 1);
        assert_eq!(cell.programmed_conductance(), p.level_conductance(2));
        cell.program(
            CellLevel(3),
            Seconds::new(2.0),
            &p,
            &NoiseModel::disabled(),
            &mut r,
        );
        assert_eq!(cell.write_count(), 2);
    }

    #[test]
    fn drift_decays_then_reprogram_restores() {
        let p = DeviceParams::paper();
        let mut cell = ReramCell::new(&p);
        let mut r = rng();
        cell.program(
            CellLevel(3),
            Seconds::new(1.0),
            &p,
            &NoiseModel::disabled(),
            &mut r,
        );
        let aged = cell.effective_conductance(Seconds::new(1e6), &p);
        assert!(aged < p.g_on());
        // Reprogram at t = 1e6: conductance snaps back to G_ON.
        cell.program(
            CellLevel(3),
            Seconds::new(1e6),
            &p,
            &NoiseModel::disabled(),
            &mut r,
        );
        let restored = cell.effective_conductance(Seconds::new(1e6), &p);
        assert!((restored.value() - p.g_on().value()).abs() < 1e-15);
        // …and decays again relative to the new programming instant.
        let re_aged = cell.effective_conductance(Seconds::new(2e6), &p);
        assert!(re_aged < restored);
    }

    #[test]
    fn effective_conductance_never_below_off_state() {
        let p = DeviceParams::paper();
        let mut cell = ReramCell::new(&p);
        let mut r = rng();
        cell.program(
            CellLevel(1),
            Seconds::new(1.0),
            &p,
            &NoiseModel::disabled(),
            &mut r,
        );
        let g = cell.effective_conductance(Seconds::new(1e30), &p);
        assert!(g >= p.g_off());
    }

    #[test]
    fn display_of_level() {
        assert_eq!(CellLevel(3).to_string(), "L3");
    }
}
