//! Stochastic device non-idealities: programming variation and read
//! (thermal) noise.

use rand::Rng;

/// Gaussian programming variation applied once, when a cell is written.
///
/// Write-verify loops leave a residual error on the programmed
/// conductance; the standard model is multiplicative Gaussian noise with
/// a relative sigma of a few percent.
///
/// # Examples
///
/// ```
/// use odin_device::ProgrammingNoise;
/// use rand::SeedableRng;
///
/// let noise = ProgrammingNoise::new(0.02);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = noise.perturb(100e-6, &mut rng);
/// assert!((g - 100e-6).abs() < 20e-6); // within ±20 %, overwhelmingly
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProgrammingNoise {
    relative_sigma: f64,
}

impl ProgrammingNoise {
    /// Creates a programming-noise model with the given relative sigma.
    ///
    /// # Panics
    ///
    /// Panics if `relative_sigma` is negative or not finite.
    #[must_use]
    pub fn new(relative_sigma: f64) -> Self {
        assert!(
            relative_sigma.is_finite() && relative_sigma >= 0.0,
            "relative sigma must be finite and non-negative"
        );
        Self { relative_sigma }
    }

    /// A noiseless model (useful for deterministic tests).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            relative_sigma: 0.0,
        }
    }

    /// The relative standard deviation.
    #[must_use]
    pub fn relative_sigma(&self) -> f64 {
        self.relative_sigma
    }

    /// Applies multiplicative Gaussian noise to a target conductance
    /// (in siemens, returned in siemens). Results are clamped at zero:
    /// a cell cannot be programmed to negative conductance.
    pub fn perturb<R: Rng + ?Sized>(&self, target: f64, rng: &mut R) -> f64 {
        if self.relative_sigma == 0.0 {
            return target;
        }
        let z = standard_normal(rng);
        (target * (1.0 + self.relative_sigma * z)).max(0.0)
    }
}

/// Additive thermal/shot noise on each analog read, relative to the
/// full-scale on-state conductance.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReadNoise {
    absolute_sigma: f64,
}

impl ReadNoise {
    /// Creates a read-noise model with the given absolute sigma
    /// (siemens).
    ///
    /// # Panics
    ///
    /// Panics if `absolute_sigma` is negative or not finite.
    #[must_use]
    pub fn new(absolute_sigma: f64) -> Self {
        assert!(
            absolute_sigma.is_finite() && absolute_sigma >= 0.0,
            "absolute sigma must be finite and non-negative"
        );
        Self { absolute_sigma }
    }

    /// A noiseless model.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            absolute_sigma: 0.0,
        }
    }

    /// The absolute standard deviation in siemens.
    #[must_use]
    pub fn absolute_sigma(&self) -> f64 {
        self.absolute_sigma
    }

    /// Applies additive Gaussian noise to an observed conductance.
    pub fn perturb<R: Rng + ?Sized>(&self, observed: f64, rng: &mut R) -> f64 {
        if self.absolute_sigma == 0.0 {
            return observed;
        }
        (observed + self.absolute_sigma * standard_normal(rng)).max(0.0)
    }
}

/// The bundle of stochastic models a crossbar consults during reads and
/// writes.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NoiseModel {
    programming: ProgrammingNoise,
    read: ReadNoise,
}

impl NoiseModel {
    /// Combines programming and read noise models.
    #[must_use]
    pub fn new(programming: ProgrammingNoise, read: ReadNoise) -> Self {
        Self { programming, read }
    }

    /// A fully deterministic (noiseless) model.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            programming: ProgrammingNoise::disabled(),
            read: ReadNoise::disabled(),
        }
    }

    /// A representative 32 nm corner: 2 % programming sigma, 0.5 µS read
    /// sigma.
    #[must_use]
    pub fn representative() -> Self {
        Self {
            programming: ProgrammingNoise::new(0.02),
            read: ReadNoise::new(0.5e-6),
        }
    }

    /// The programming-variation component.
    #[must_use]
    pub fn programming(&self) -> ProgrammingNoise {
        self.programming
    }

    /// The read-noise component.
    #[must_use]
    pub fn read(&self) -> ReadNoise {
        self.read
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Samples a standard normal via Box–Muller (avoids a dependency on
/// `rand_distr`, which is outside the approved dependency set).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::EPSILON {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn disabled_noise_is_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(ProgrammingNoise::disabled().perturb(5.0, &mut rng), 5.0);
        assert_eq!(ReadNoise::disabled().perturb(5.0, &mut rng), 5.0);
    }

    #[test]
    fn programming_noise_statistics() {
        let noise = ProgrammingNoise::new(0.05);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 20_000;
        let target = 1.0;
        let samples: Vec<f64> = (0..n).map(|_| noise.perturb(target, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.05).abs() < 0.01, "sigma {}", var.sqrt());
    }

    #[test]
    fn read_noise_statistics() {
        let noise = ReadNoise::new(0.5e-6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let n = 20_000;
        let observed = 100e-6;
        let mean = (0..n)
            .map(|_| noise.perturb(observed, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - observed).abs() < 0.05e-6);
    }

    #[test]
    fn never_negative() {
        let noise = ProgrammingNoise::new(2.0); // absurdly noisy
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        for _ in 0..1000 {
            assert!(noise.perturb(1e-6, &mut rng) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        let _ = ProgrammingNoise::new(-0.1);
    }

    #[test]
    fn representative_corner() {
        let m = NoiseModel::representative();
        assert!((m.programming().relative_sigma() - 0.02).abs() < 1e-12);
        assert!((m.read().absolute_sigma() - 0.5e-6).abs() < 1e-18);
        assert_eq!(NoiseModel::default(), NoiseModel::disabled());
    }
}
