//! Hard-fault injection: stuck-at cells.

use rand::Rng;
use std::collections::HashMap;

/// The kind of a hard cell fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// The cell is stuck at the on-state conductance regardless of what
    /// is programmed (stuck-at-1 / SA1).
    StuckOn,
    /// The cell is stuck at the off-state conductance (stuck-at-0 / SA0).
    StuckOff,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::StuckOn => write!(f, "stuck-on"),
            FaultKind::StuckOff => write!(f, "stuck-off"),
        }
    }
}

/// A sparse map from `(row, col)` coordinates to hard faults within one
/// crossbar.
///
/// Serialized as a sorted `[row, col, kind]` list rather than a map:
/// JSON cannot key objects with tuples, and sorting makes the encoding
/// canonical — two equal maps always produce byte-identical JSON.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultMap {
    #[serde(
        serialize_with = "serialize_faults",
        deserialize_with = "deserialize_faults"
    )]
    faults: HashMap<(usize, usize), FaultKind>,
}

fn serialize_faults<S>(
    faults: &HashMap<(usize, usize), FaultKind>,
    serializer: S,
) -> Result<S::Ok, S::Error>
where
    S: serde::Serializer,
{
    let mut entries: Vec<(usize, usize, FaultKind)> =
        faults.iter().map(|(&(r, c), &k)| (r, c, k)).collect();
    entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
    serde::Serialize::serialize(&entries, serializer)
}

fn deserialize_faults<'de, D>(
    deserializer: D,
) -> Result<HashMap<(usize, usize), FaultKind>, D::Error>
where
    D: serde::Deserializer<'de>,
{
    let entries: Vec<(usize, usize, FaultKind)> = serde::Deserialize::deserialize(deserializer)?;
    Ok(entries.into_iter().map(|(r, c, k)| ((r, c), k)).collect())
}

impl FaultMap {
    /// An empty (fault-free) map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a fault at `(row, col)`, replacing any previous fault
    /// there. Returns the previous fault if one existed.
    pub fn insert(&mut self, row: usize, col: usize, kind: FaultKind) -> Option<FaultKind> {
        self.faults.insert((row, col), kind)
    }

    /// The fault at `(row, col)`, if any.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Option<FaultKind> {
        self.faults.get(&(row, col)).copied()
    }

    /// Number of faulty cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when no cell is faulty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterates over `((row, col), kind)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&(usize, usize), &FaultKind)> {
        self.faults.iter()
    }
}

/// Randomly sprinkles stuck-at faults over a crossbar at a given rate.
///
/// # Examples
///
/// ```
/// use odin_device::FaultInjector;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let map = FaultInjector::new(0.01, 0.5).inject(128, 128, &mut rng);
/// // ≈ 164 of 16384 cells faulty at 1 %
/// assert!(map.len() > 80 && map.len() < 280);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultInjector {
    rate: f64,
    stuck_on_fraction: f64,
}

impl FaultInjector {
    /// Creates an injector where each cell independently faults with
    /// probability `rate`, and a faulty cell is stuck-on with
    /// probability `stuck_on_fraction` (else stuck-off).
    ///
    /// # Panics
    ///
    /// Panics if either argument is outside `[0, 1]`.
    #[must_use]
    pub fn new(rate: f64, stuck_on_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        assert!(
            (0.0..=1.0).contains(&stuck_on_fraction),
            "stuck_on_fraction must be in [0,1]"
        );
        Self {
            rate,
            stuck_on_fraction,
        }
    }

    /// The stuck-at density of §V-style fault sweeps: 0.1 % of cells
    /// faulty, an even stuck-on/stuck-off mix — the midpoint of the
    /// {0, 0.1 %, 1 %} evaluation sweep.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(0.001, 0.5)
    }

    /// Per-cell fault probability.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Probability that a faulty cell is stuck-on rather than stuck-off.
    #[must_use]
    pub fn stuck_on_fraction(&self) -> f64 {
        self.stuck_on_fraction
    }

    /// Generates a fault map for a `rows × cols` crossbar.
    ///
    /// Cells are visited in row-major order and every cell consumes
    /// exactly two Bernoulli draws (faulty? stuck-on?), so the stream
    /// position of any cell — and therefore its outcome under a given
    /// seed — is independent of every other cell's outcome.
    pub fn inject<R: Rng + ?Sized>(&self, rows: usize, cols: usize, rng: &mut R) -> FaultMap {
        let mut map = FaultMap::new();
        if self.rate == 0.0 {
            return map;
        }
        for row in 0..rows {
            for col in 0..cols {
                let faulty = rng.gen_bool(self.rate);
                let stuck_on = rng.gen_bool(self.stuck_on_fraction);
                if faulty {
                    let kind = if stuck_on {
                        FaultKind::StuckOn
                    } else {
                        FaultKind::StuckOff
                    };
                    map.insert(row, col, kind);
                }
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_rate_injects_nothing() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let map = FaultInjector::new(0.0, 0.5).inject(64, 64, &mut rng);
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn full_rate_faults_every_cell() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let map = FaultInjector::new(1.0, 1.0).inject(8, 8, &mut rng);
        assert_eq!(map.len(), 64);
        assert_eq!(map.get(3, 3), Some(FaultKind::StuckOn));
    }

    #[test]
    fn stuck_fraction_controls_mix() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let map = FaultInjector::new(1.0, 0.0).inject(8, 8, &mut rng);
        assert!(map.iter().all(|(_, k)| *k == FaultKind::StuckOff));
    }

    #[test]
    fn insert_replaces_and_reports_previous() {
        let mut map = FaultMap::new();
        assert_eq!(map.insert(0, 0, FaultKind::StuckOn), None);
        assert_eq!(
            map.insert(0, 0, FaultKind::StuckOff),
            Some(FaultKind::StuckOn)
        );
        assert_eq!(map.get(0, 0), Some(FaultKind::StuckOff));
        assert_eq!(map.get(1, 1), None);
    }

    #[test]
    #[should_panic(expected = "[0,1]")]
    fn invalid_rate_panics() {
        let _ = FaultInjector::new(1.5, 0.5);
    }

    #[test]
    fn display_of_kinds() {
        assert_eq!(FaultKind::StuckOn.to_string(), "stuck-on");
        assert_eq!(FaultKind::StuckOff.to_string(), "stuck-off");
    }

    #[test]
    fn paper_matches_sweep_midpoint() {
        let inj = FaultInjector::paper();
        assert_eq!(inj.rate(), 0.001);
        assert_eq!(inj.stuck_on_fraction(), 0.5);
    }

    #[test]
    fn fault_locations_independent_of_stuck_fraction() {
        // Two draws per cell regardless of outcome: the *set* of faulty
        // cells under a seed depends only on the rate, not on the
        // stuck-on mix.
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(9);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(9);
        let a = FaultInjector::new(0.05, 0.0).inject(32, 32, &mut rng_a);
        let b = FaultInjector::new(0.05, 1.0).inject(32, 32, &mut rng_b);
        assert_eq!(a.len(), b.len());
        for (&(r, c), _) in a.iter() {
            assert!(b.get(r, c).is_some(), "cell ({r},{c}) diverged");
        }
    }

    #[test]
    fn serde_is_canonical_and_roundtrips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let map = FaultInjector::new(0.1, 0.3).inject(16, 16, &mut rng);
        let json = serde_json::to_string(&map).unwrap();
        let back: FaultMap = serde_json::from_str(&json).unwrap();
        assert_eq!(map, back);
        // Canonical: re-encoding the decoded map is byte-identical.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }
}
