//! Time-dependent conductance drift (Eq. 3).

use odin_units::{Seconds, Siemens};

use crate::params::DeviceParams;

/// The conductance-drift model of Eq. 3:
///
/// ```text
/// G_drift(t) = G_ON · (t / t₀)^(−v)
/// ```
///
/// where `t₀` is the instant the device was programmed, `t ≥ t₀` the
/// elapsed wall-clock time and `v` the drift coefficient (0.2 s⁻¹ in
/// Table II). Drift is monotone non-increasing in `t` and clamped below
/// at `G_OFF` — a device can depolarize no further than its off state.
///
/// # Examples
///
/// ```
/// use odin_device::{DeviceParams, DriftModel};
/// use odin_units::Seconds;
///
/// let params = DeviceParams::paper();
/// let drift = DriftModel::new(&params);
/// let early = drift.conductance_at(Seconds::new(10.0));
/// let late = drift.conductance_at(Seconds::new(1e6));
/// assert!(late < early);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftModel {
    g_on: Siemens,
    g_off: Siemens,
    v: f64,
    t0: Seconds,
}

impl DriftModel {
    /// Builds a drift model from a device corner.
    #[must_use]
    pub fn new(params: &DeviceParams) -> Self {
        Self {
            g_on: params.g_on(),
            g_off: params.g_off(),
            v: params.drift_coefficient(),
            t0: params.program_reference_time(),
        }
    }

    /// The drifted on-state conductance `G_drift(t)` at elapsed time `t`.
    ///
    /// Times earlier than the programming reference `t₀` (including the
    /// reprogramming instant itself) return the pristine `G_ON`.
    #[must_use]
    pub fn conductance_at(&self, t: Seconds) -> Siemens {
        if t.value() <= self.t0.value() {
            return self.g_on;
        }
        let ratio = t.value() / self.t0.value();
        let g = self.g_on * ratio.powf(-self.v);
        g.max(self.g_off)
    }

    /// The drift of an arbitrary programmed conductance, scaled by the
    /// same decay factor as the on state. Used for multi-level cells,
    /// whose intermediate states decay proportionally.
    #[must_use]
    pub fn scale_at(&self, t: Seconds) -> f64 {
        if t.value() <= self.t0.value() {
            return 1.0;
        }
        (t.value() / self.t0.value()).powf(-self.v)
    }

    /// Fraction of the pristine on-state conductance lost to drift at
    /// time `t`, in `[0, 1)`.
    #[must_use]
    pub fn relative_loss_at(&self, t: Seconds) -> f64 {
        1.0 - self.conductance_at(t) / self.g_on
    }

    /// The earliest time at which the drifted conductance falls below
    /// `threshold`, or `None` if it never does (threshold at or below
    /// `G_OFF`, or a zero drift coefficient).
    ///
    /// Solves `G_ON · (t/t₀)^(−v) = threshold` for `t`.
    #[must_use]
    pub fn time_to_reach(&self, threshold: Siemens) -> Option<Seconds> {
        if threshold.value() >= self.g_on.value() {
            return Some(self.t0);
        }
        if self.v == 0.0 || threshold.value() <= self.g_off.value() {
            return None;
        }
        let ratio = (self.g_on.value() / threshold.value()).powf(1.0 / self.v);
        Some(Seconds::new(self.t0.value() * ratio))
    }
}

/// A small memo over [`DriftModel`] decay factors, keyed on the exact
/// bit pattern of the query time (one "age bucket" per distinct
/// programming age), so repeated evaluations at the same age — a grid
/// sweep, a campaign round, a batch of cells — pay the `powf` once.
///
/// The table is a fixed-size direct-mapped array: no heap, collisions
/// simply recompute and replace. **Bit-transparent** by construction —
/// a memoized answer is the exact value the wrapped model returns,
/// because it *is* that value, stored.
///
/// # Examples
///
/// ```
/// use odin_device::{DeviceParams, DriftMemo, DriftModel};
/// use odin_units::Seconds;
///
/// let model = DriftModel::new(&DeviceParams::paper());
/// let mut memo = DriftMemo::new(model.clone());
/// let t = Seconds::new(1e4);
/// assert_eq!(memo.scale_at(t), model.scale_at(t));
/// assert_eq!(memo.scale_at(t), model.scale_at(t)); // memoized
/// ```
#[derive(Debug, Clone)]
pub struct DriftMemo {
    model: DriftModel,
    slots: [(u64, f64); DriftMemo::SLOTS],
}

impl DriftMemo {
    /// Direct-mapped slot count. The runtime sees a handful of ages per
    /// round, so a small stack table suffices.
    const SLOTS: usize = 16;
    /// A key no finite time produces (an all-ones NaN pattern).
    const EMPTY: u64 = u64::MAX;

    /// Wraps a drift model with an empty memo.
    #[must_use]
    pub fn new(model: DriftModel) -> Self {
        Self {
            model,
            slots: [(Self::EMPTY, 0.0); Self::SLOTS],
        }
    }

    /// The wrapped model.
    #[must_use]
    pub fn model(&self) -> &DriftModel {
        &self.model
    }

    /// Memoized [`DriftModel::scale_at`].
    pub fn scale_at(&mut self, t: Seconds) -> f64 {
        let bits = t.value().to_bits();
        if bits == Self::EMPTY {
            return self.model.scale_at(t);
        }
        let slot = (bits as usize) % Self::SLOTS;
        let (key, cached) = self.slots[slot];
        if key == bits {
            return cached;
        }
        let scale = self.model.scale_at(t);
        self.slots[slot] = (bits, scale);
        scale
    }

    /// Memoized [`DriftModel::conductance_at`]: the clamp and the
    /// pristine early-return are re-applied around the memoized decay
    /// factor, reproducing the unmemoized result bit for bit.
    pub fn conductance_at(&mut self, t: Seconds) -> Siemens {
        if t.value() <= self.model.t0.value() {
            return self.model.g_on;
        }
        let g = self.model.g_on * self.scale_at(t);
        g.max(self.model.g_off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> DriftModel {
        DriftModel::new(&DeviceParams::paper())
    }

    #[test]
    fn pristine_at_or_before_t0() {
        let m = model();
        assert_eq!(m.conductance_at(Seconds::new(0.5)), m.g_on);
        assert_eq!(m.conductance_at(Seconds::new(1.0)), m.g_on);
        assert!((m.scale_at(Seconds::new(1.0)) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn matches_closed_form() {
        let m = model();
        // (1e4)^(-0.2) = 10^(-0.8)
        let expect = 333e-6 * 10f64.powf(-0.8);
        let got = m.conductance_at(Seconds::new(1e4)).value();
        assert!((got - expect).abs() < 1e-12, "got {got}, expect {expect}");
    }

    #[test]
    fn clamped_at_g_off() {
        let m = model();
        // Far future: (t/t0)^(-0.2) would go below G_OFF/G_ON = 1e-3
        // around t = 1e15; verify the clamp engages.
        let g = m.conductance_at(Seconds::new(1e40));
        assert_eq!(g, DeviceParams::paper().g_off());
    }

    #[test]
    fn time_to_reach_inverts_conductance_at() {
        let m = model();
        let threshold = Siemens::from_micro(100.0);
        let t = m.time_to_reach(threshold).expect("reachable threshold");
        let g = m.conductance_at(t);
        assert!((g.value() - threshold.value()).abs() < 1e-9 * threshold.value());
    }

    #[test]
    fn unreachable_thresholds() {
        let m = model();
        assert_eq!(m.time_to_reach(Siemens::from_micro(400.0)), Some(m.t0));
        assert!(m.time_to_reach(Siemens::from_micro(0.1)).is_none());
        let frozen = DriftModel::new(&DeviceParams::paper().with_drift_coefficient(0.0).unwrap());
        assert!(frozen.time_to_reach(Siemens::from_micro(100.0)).is_none());
    }

    #[test]
    fn zero_drift_coefficient_is_constant() {
        let p = DeviceParams::paper().with_drift_coefficient(0.0).unwrap();
        let m = DriftModel::new(&p);
        assert_eq!(m.conductance_at(Seconds::new(1e8)), p.g_on());
    }

    #[test]
    fn memo_is_bit_identical_including_clamp_and_pristine_regions() {
        let m = model();
        let mut memo = DriftMemo::new(m.clone());
        for t in [0.0, 0.5, 1.0, 2.0, 1e4, 1e4, 2.75e7, 1e40, 1e4] {
            let t = Seconds::new(t);
            assert_eq!(
                memo.scale_at(t).to_bits(),
                m.scale_at(t).to_bits(),
                "scale at {t:?}"
            );
            assert_eq!(
                memo.conductance_at(t).value().to_bits(),
                m.conductance_at(t).value().to_bits(),
                "conductance at {t:?}"
            );
        }
    }

    #[test]
    fn memo_collisions_recompute_correctly() {
        let m = model();
        let mut memo = DriftMemo::new(m.clone());
        // Far more distinct ages than slots: every answer must still
        // match the unmemoized model exactly.
        for i in 0..200 {
            let t = Seconds::new(1.0 + i as f64 * 17.3);
            assert_eq!(memo.scale_at(t).to_bits(), m.scale_at(t).to_bits());
        }
        assert_eq!(memo.model(), &m);
    }

    proptest! {
        #[test]
        fn memo_matches_model_for_arbitrary_times(t in 0.0f64..1e30) {
            let m = model();
            let mut memo = DriftMemo::new(m.clone());
            let t = Seconds::new(t);
            prop_assert_eq!(memo.scale_at(t).to_bits(), m.scale_at(t).to_bits());
            prop_assert_eq!(
                memo.conductance_at(t).value().to_bits(),
                m.conductance_at(t).value().to_bits()
            );
        }

        #[test]
        fn drift_is_monotone_nonincreasing(t1 in 1.0f64..1e9, dt in 0.0f64..1e9) {
            let m = model();
            let g1 = m.conductance_at(Seconds::new(t1));
            let g2 = m.conductance_at(Seconds::new(t1 + dt));
            prop_assert!(g2 <= g1);
        }

        #[test]
        fn drift_bounded_by_device_corner(t in 0.0f64..1e30) {
            let m = model();
            let g = m.conductance_at(Seconds::new(t));
            let p = DeviceParams::paper();
            prop_assert!(g <= p.g_on());
            prop_assert!(g >= p.g_off());
        }

        #[test]
        fn relative_loss_in_unit_interval(t in 0.0f64..1e30) {
            let loss = model().relative_loss_at(Seconds::new(t));
            prop_assert!((0.0..1.0).contains(&loss));
        }
    }
}
