//! Device-layer error type.

/// Errors produced by the ReRAM device layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A parameter failed validation when building a configuration.
    InvalidParameter {
        /// The parameter name.
        name: &'static str,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A weight magnitude exceeded the representable range of the codec.
    WeightOutOfRange {
        /// The offending weight value.
        weight: f64,
    },
    /// An array has consumed its write-endurance budget and can no
    /// longer be reprogrammed.
    EnduranceExceeded {
        /// Index of the exhausted array in its [`EnduranceLedger`].
        ///
        /// [`EnduranceLedger`]: crate::EnduranceLedger
        array: usize,
        /// Write cycles already charged to the array.
        writes: u64,
        /// The array's total write-cycle budget.
        budget: u64,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::InvalidParameter { name, reason } => {
                write!(f, "invalid device parameter `{name}`: {reason}")
            }
            DeviceError::WeightOutOfRange { weight } => {
                write!(f, "weight {weight} outside the codec's representable range")
            }
            DeviceError::EnduranceExceeded {
                array,
                writes,
                budget,
            } => {
                write!(
                    f,
                    "array {array} exhausted its write endurance ({writes}/{budget} cycles)"
                )
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let e = DeviceError::InvalidParameter {
            name: "g_on",
            reason: "must be positive",
        };
        let s = e.to_string();
        assert!(s.starts_with("invalid"));
        let e = DeviceError::WeightOutOfRange { weight: 2.0 };
        assert!(e.to_string().contains("2"));
        let e = DeviceError::EnduranceExceeded {
            array: 3,
            writes: 7,
            budget: 7,
        };
        assert!(e.to_string().contains("array 3"));
        assert!(e.to_string().contains("7/7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<DeviceError>();
    }
}
