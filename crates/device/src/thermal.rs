//! Thermal acceleration of conductance drift.
//!
//! The authors' TEFLON work (cited as [26]) shows PIM tiles heat up
//! with compute activity and that temperature accelerates ReRAM
//! retention loss. This module provides the standard
//! exponential-acceleration model: tile temperature rises linearly
//! with dissipated power over the thermal resistance, and drift speeds
//! up by a fixed factor per 10 °C above ambient (Arrhenius behaviour
//! linearized over the operating window).
//!
//! Compose with the crossbar non-ideality model by dividing its drift
//! timescale: `τ_effective = τ / acceleration`.

use odin_units::Watts;
use serde::{Deserialize, Serialize};

/// Power → temperature → drift-acceleration model.
///
/// # Examples
///
/// ```
/// use odin_device::ThermalModel;
/// use odin_units::Watts;
///
/// let m = ThermalModel::paper();
/// let idle = m.drift_acceleration(m.temperature(Watts::ZERO));
/// assert!((idle - 1.0).abs() < 1e-12);
/// let busy = m.drift_acceleration(m.temperature(Watts::new(2.0)));
/// assert!(busy > idle);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    ambient_c: f64,
    c_per_watt: f64,
    acceleration_per_10c: f64,
}

impl ThermalModel {
    /// A representative corner: 45 °C ambient-on-die, 10 °C/W tile
    /// thermal resistance, drift doubling every 10 °C.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            ambient_c: 45.0,
            c_per_watt: 10.0,
            acceleration_per_10c: 2.0,
        }
    }

    /// Creates a model with explicit constants.
    ///
    /// # Panics
    ///
    /// Panics unless all constants are finite, `c_per_watt ≥ 0` and
    /// `acceleration_per_10c ≥ 1`.
    #[must_use]
    pub fn new(ambient_c: f64, c_per_watt: f64, acceleration_per_10c: f64) -> Self {
        assert!(
            ambient_c.is_finite() && c_per_watt.is_finite() && acceleration_per_10c.is_finite(),
            "thermal constants must be finite"
        );
        assert!(c_per_watt >= 0.0, "thermal resistance must be non-negative");
        assert!(
            acceleration_per_10c >= 1.0,
            "drift cannot decelerate with temperature"
        );
        Self {
            ambient_c,
            c_per_watt,
            acceleration_per_10c,
        }
    }

    /// Ambient (zero-power) die temperature in °C.
    #[must_use]
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Steady-state die temperature at a sustained power draw.
    #[must_use]
    pub fn temperature(&self, power: Watts) -> f64 {
        self.ambient_c + self.c_per_watt * power.value()
    }

    /// Drift acceleration factor at a die temperature (1.0 at
    /// ambient, ×`acceleration_per_10c` per 10 °C above it).
    #[must_use]
    pub fn drift_acceleration(&self, temperature_c: f64) -> f64 {
        let delta = (temperature_c - self.ambient_c).max(0.0);
        self.acceleration_per_10c.powf(delta / 10.0)
    }

    /// Convenience: acceleration straight from sustained power.
    #[must_use]
    pub fn acceleration_at_power(&self, power: Watts) -> f64 {
        self.drift_acceleration(self.temperature(power))
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ambient_is_neutral() {
        let m = ThermalModel::paper();
        assert!((m.temperature(Watts::ZERO) - 45.0).abs() < 1e-12);
        assert!((m.acceleration_at_power(Watts::ZERO) - 1.0).abs() < 1e-12);
        assert_eq!(ThermalModel::default(), m);
        assert!((m.ambient_c() - 45.0).abs() < 1e-12);
    }

    #[test]
    fn doubling_per_ten_degrees() {
        let m = ThermalModel::paper();
        // 1 W → +10 °C → ×2; 2 W → +20 °C → ×4.
        assert!((m.acceleration_at_power(Watts::new(1.0)) - 2.0).abs() < 1e-9);
        assert!((m.acceleration_at_power(Watts::new(2.0)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn below_ambient_clamps_to_one() {
        let m = ThermalModel::paper();
        assert!((m.drift_acceleration(20.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "decelerate")]
    fn sub_unity_acceleration_panics() {
        let _ = ThermalModel::new(45.0, 10.0, 0.5);
    }

    proptest! {
        #[test]
        fn acceleration_monotone_in_power(p1 in 0.0f64..100.0, dp in 0.0f64..100.0) {
            let m = ThermalModel::paper();
            prop_assert!(
                m.acceleration_at_power(Watts::new(p1 + dp))
                    >= m.acceleration_at_power(Watts::new(p1))
            );
        }
    }
}
