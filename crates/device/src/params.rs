//! Device parameter corners.

use odin_units::{Joules, Seconds, Siemens, Volts};

use crate::error::DeviceError;

/// The physical parameters of one ReRAM device corner.
///
/// Defaults come from Table II of the paper: `G_ON` = 333 µS,
/// `G_OFF` = 0.33 µS, drift coefficient `v` = 0.2 s⁻¹ and 2 bits per
/// cell (Table I). Pulse costs are representative SET/RESET figures for
/// 32 nm HfOx devices and only matter through the *relative* weight of
/// reprogramming versus inference energy.
///
/// # Examples
///
/// ```
/// use odin_device::DeviceParams;
///
/// let p = DeviceParams::paper();
/// assert_eq!(p.levels(), 4); // 2 bits/cell
/// assert!(p.g_on() > p.g_off());
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeviceParams {
    g_on: Siemens,
    g_off: Siemens,
    drift_coefficient: f64,
    program_reference_time: Seconds,
    bits_per_cell: u8,
    read_voltage: Volts,
    write_energy_per_cell: Joules,
    write_latency_per_cell: Seconds,
}

impl DeviceParams {
    /// The Table II corner used throughout the paper's evaluation.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            g_on: Siemens::from_micro(333.0),
            g_off: Siemens::from_micro(0.33),
            drift_coefficient: 0.2,
            program_reference_time: Seconds::new(1.0),
            bits_per_cell: 2,
            read_voltage: Volts::new(0.2),
            // SET/RESET pulse: ~2 V, ~50 µA, ~50 ns → ~5-10 pJ per raw
            // pulse. Multi-level programming needs a write-verify train
            // (~20 iterations) plus erase, charge-pump and peripheral
            // energy, so the effective per-cell reprogramming cost is
            // ~300 pJ — this is what makes frequent reprogramming (43
            // passes for the homogeneous 16×16 OU, §V.C) dominate the
            // coarse baselines' total energy.
            write_energy_per_cell: Joules::from_picojoules(300.0),
            write_latency_per_cell: Seconds::from_nanos(50.0),
        }
    }

    /// Builder-style override of the ON-state conductance.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `g_on` is not strictly
    /// greater than the current `g_off`.
    pub fn with_g_on(mut self, g_on: Siemens) -> Result<Self, DeviceError> {
        if g_on.value() <= self.g_off.value() {
            return Err(DeviceError::InvalidParameter {
                name: "g_on",
                reason: "must be strictly greater than g_off",
            });
        }
        self.g_on = g_on;
        Ok(self)
    }

    /// Builder-style override of the drift coefficient `v` (Eq. 3).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `v` is negative or
    /// not finite.
    pub fn with_drift_coefficient(mut self, v: f64) -> Result<Self, DeviceError> {
        if !v.is_finite() || v < 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "drift_coefficient",
                reason: "must be finite and non-negative",
            });
        }
        self.drift_coefficient = v;
        Ok(self)
    }

    /// Builder-style override of the number of bits stored per cell.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for 0 bits or more than
    /// 4 bits (16 levels), beyond which multi-level ReRAM programming is
    /// not credible.
    pub fn with_bits_per_cell(mut self, bits: u8) -> Result<Self, DeviceError> {
        if bits == 0 || bits > 4 {
            return Err(DeviceError::InvalidParameter {
                name: "bits_per_cell",
                reason: "must be in 1..=4",
            });
        }
        self.bits_per_cell = bits;
        Ok(self)
    }

    /// Builder-style override of the per-cell write energy (campaign
    /// calibration hook).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for non-finite or
    /// negative energies.
    pub fn with_write_energy_per_cell(mut self, e: Joules) -> Result<Self, DeviceError> {
        if !e.value().is_finite() || e.value() < 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "write_energy_per_cell",
                reason: "must be finite and non-negative",
            });
        }
        self.write_energy_per_cell = e;
        Ok(self)
    }

    /// Builder-style override of the per-cell write latency.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for non-finite or
    /// negative latencies.
    pub fn with_write_latency_per_cell(mut self, t: Seconds) -> Result<Self, DeviceError> {
        if !t.value().is_finite() || t.value() < 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "write_latency_per_cell",
                reason: "must be finite and non-negative",
            });
        }
        self.write_latency_per_cell = t;
        Ok(self)
    }

    /// ON-state (lowest-resistance) conductance `G_ON`.
    #[must_use]
    pub fn g_on(&self) -> Siemens {
        self.g_on
    }

    /// OFF-state (highest-resistance) conductance `G_OFF`.
    #[must_use]
    pub fn g_off(&self) -> Siemens {
        self.g_off
    }

    /// Drift coefficient `v` of Eq. 3 (paper: 0.2 s⁻¹).
    #[must_use]
    pub fn drift_coefficient(&self) -> f64 {
        self.drift_coefficient
    }

    /// Reference time `t₀` at which the cell was last programmed.
    #[must_use]
    pub fn program_reference_time(&self) -> Seconds {
        self.program_reference_time
    }

    /// Bits of weight data stored per cell.
    #[must_use]
    pub fn bits_per_cell(&self) -> u8 {
        self.bits_per_cell
    }

    /// Number of distinguishable conductance levels (`2^bits`).
    #[must_use]
    pub fn levels(&self) -> u16 {
        1u16 << self.bits_per_cell
    }

    /// Read (sense) voltage applied on active wordlines.
    #[must_use]
    pub fn read_voltage(&self) -> Volts {
        self.read_voltage
    }

    /// Energy cost of one write-verify programming pulse train.
    #[must_use]
    pub fn write_energy_per_cell(&self) -> Joules {
        self.write_energy_per_cell
    }

    /// Latency of one write-verify programming pulse train.
    #[must_use]
    pub fn write_latency_per_cell(&self) -> Seconds {
        self.write_latency_per_cell
    }

    /// The conductance corresponding to a stored level index.
    ///
    /// Levels are spaced linearly between `G_OFF` (level 0) and `G_ON`
    /// (maximum level), the usual assumption for linear multi-level
    /// programming with write-verify.
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds [`DeviceParams::levels`]` - 1`.
    #[must_use]
    pub fn level_conductance(&self, level: u16) -> Siemens {
        let max = self.levels() - 1;
        assert!(level <= max, "level {level} out of range 0..={max}");
        let frac = f64::from(level) / f64::from(max);
        self.g_off + (self.g_on - self.g_off) * frac
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_corner_matches_table2() {
        let p = DeviceParams::paper();
        assert!((p.g_on().as_micro() - 333.0).abs() < 1e-9);
        assert!((p.g_off().as_micro() - 0.33).abs() < 1e-9);
        assert!((p.drift_coefficient() - 0.2).abs() < 1e-12);
        assert_eq!(p.bits_per_cell(), 2);
        assert_eq!(p.levels(), 4);
    }

    #[test]
    fn level_conductances_span_range_monotonically() {
        let p = DeviceParams::paper();
        let mut prev = Siemens::ZERO;
        for level in 0..p.levels() {
            let g = p.level_conductance(level);
            assert!(g > prev, "levels must be strictly increasing");
            prev = g;
        }
        assert!((p.level_conductance(0).value() - p.g_off().value()).abs() < 1e-15);
        assert!((p.level_conductance(3).value() - p.g_on().value()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn level_out_of_range_panics() {
        let _ = DeviceParams::paper().level_conductance(4);
    }

    #[test]
    fn builder_validation() {
        assert!(DeviceParams::paper()
            .with_g_on(Siemens::from_micro(0.1))
            .is_err());
        assert!(DeviceParams::paper().with_drift_coefficient(-1.0).is_err());
        assert!(DeviceParams::paper()
            .with_drift_coefficient(f64::NAN)
            .is_err());
        assert!(DeviceParams::paper().with_bits_per_cell(0).is_err());
        assert!(DeviceParams::paper().with_bits_per_cell(5).is_err());
        let p = DeviceParams::paper().with_bits_per_cell(3).unwrap();
        assert_eq!(p.levels(), 8);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(DeviceParams::default(), DeviceParams::paper());
    }
}
