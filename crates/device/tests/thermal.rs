//! Integration coverage for the thermal drift-acceleration model:
//! the paper corner pinned by hand, multiplicative composition of the
//! Arrhenius-style exponent, deterministic seeded power sweeps, serde
//! round-trips, and property tests over the acceleration bounds.

use odin_device::ThermalModel;
use odin_units::Watts;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

#[test]
fn paper_corner_matches_hand_computation() {
    let model = ThermalModel::paper();
    // 45 °C ambient, 10 °C/W, drift doubling per 10 °C.
    assert!((model.temperature(Watts::ZERO) - 45.0).abs() < 1e-12);
    assert!((model.temperature(Watts::new(1.0)) - 55.0).abs() < 1e-12);
    assert!((model.temperature(Watts::new(2.5)) - 70.0).abs() < 1e-12);
    assert!((model.acceleration_at_power(Watts::ZERO) - 1.0).abs() < 1e-12);
    assert!((model.acceleration_at_power(Watts::new(1.0)) - 2.0).abs() < 1e-9);
    assert!((model.acceleration_at_power(Watts::new(3.0)) - 8.0).abs() < 1e-9);
}

#[test]
fn acceleration_composes_multiplicatively_above_ambient() {
    // powf over an additive exponent: heating by a + b degrees
    // accelerates by the product of heating by a and by b.
    let model = ThermalModel::paper();
    let ambient = model.ambient_c();
    for (a, b) in [(3.0, 7.0), (12.5, 0.5), (20.0, 20.0)] {
        let combined = model.drift_acceleration(ambient + a + b);
        let product = model.drift_acceleration(ambient + a) * model.drift_acceleration(ambient + b);
        assert!(
            (combined - product).abs() < 1e-9 * product,
            "{a} + {b}: {combined} vs {product}"
        );
    }
}

#[test]
fn seeded_power_sweep_is_bit_reproducible() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7E_4F10);
    let powers: Vec<f64> = (0..64).map(|_| rng.gen_range(0.0..10.0)).collect();
    let sweep = |model: &ThermalModel| -> Vec<u64> {
        powers
            .iter()
            .map(|&p| model.acceleration_at_power(Watts::new(p)).to_bits())
            .collect()
    };
    // Two independently built models answer the same seeded sweep bit
    // for bit — the model carries no hidden state.
    assert_eq!(sweep(&ThermalModel::paper()), sweep(&ThermalModel::paper()));
}

#[test]
fn custom_constants_shift_the_corner() {
    let model = ThermalModel::new(25.0, 5.0, 1.5);
    assert!((model.ambient_c() - 25.0).abs() < 1e-12);
    assert!((model.temperature(Watts::new(2.0)) - 35.0).abs() < 1e-12);
    // +10 °C at 1.5×/10 °C.
    assert!((model.acceleration_at_power(Watts::new(2.0)) - 1.5).abs() < 1e-9);
    // Below ambient never decelerates past 1.
    assert!((model.drift_acceleration(-40.0) - 1.0).abs() < 1e-12);
}

#[test]
fn model_round_trips_through_serde() {
    let model = ThermalModel::new(30.0, 7.5, 2.5);
    let json = serde_json::to_string(&model).unwrap();
    let back: ThermalModel = serde_json::from_str(&json).unwrap();
    assert_eq!(back, model);
}

proptest! {
    #[test]
    fn acceleration_is_bounded_finite_and_monotone(
        power in 0.0f64..100.0,
        extra in 0.0f64..100.0,
    ) {
        let model = ThermalModel::paper();
        let a = model.acceleration_at_power(Watts::new(power));
        let b = model.acceleration_at_power(Watts::new(power + extra));
        prop_assert!(a >= 1.0, "never decelerates: {a}");
        prop_assert!(a.is_finite() && b.is_finite());
        prop_assert!(b >= a, "hotter must drift at least as fast");
    }

    #[test]
    fn valid_constants_are_accepted_and_ambient_neutral(
        ambient in -50.0f64..120.0,
        c_per_watt in 0.0f64..100.0,
        accel in 1.0f64..10.0,
    ) {
        let model = ThermalModel::new(ambient, c_per_watt, accel);
        prop_assert!((model.acceleration_at_power(Watts::ZERO) - 1.0).abs() < 1e-12);
        prop_assert!((model.temperature(Watts::ZERO) - ambient).abs() < 1e-12);
    }
}
