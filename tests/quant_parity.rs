//! The INT8 decision-parity gate: a runtime built with
//! `Precision::Int8` must emit a `LayerDecision` stream bit-identical
//! to the f64 runtime it quantizes, across the whole nine-model zoo.
//!
//! This is the hard acceptance gate for the quantized policy fast
//! path. The guard inside `QuantizedPolicy::predict_batch_guarded`
//! recomputes in f64 any row whose argmax margin (or distance to the
//! confidence-escalation threshold) falls within the calibrated
//! quantization error bound, so parity here is by construction — the
//! test exists to catch any regression in that construction: a stale
//! calibration after an online update, a miscounted bound, a head
//! whose margin check was skipped.

use odin::dnn::zoo::{self, Dataset};
use odin::prelude::*;

fn runtime(seed: u64, precision: Precision) -> OdinRuntime {
    OdinRuntime::builder(OdinConfig::paper())
        .rng_seed(seed)
        .policy_precision(precision)
        .telemetry(Telemetry::enabled())
        .build()
        .expect("paper config is valid")
}

#[test]
fn int8_policy_decisions_match_f64_across_the_zoo() {
    let schedule = TimeSchedule::geometric(1.0, 1e7, 12);
    let mut quant_rows_total = 0u64;
    for net in zoo::all_models(Dataset::Cifar10) {
        let mut f64_rt = runtime(42, Precision::F64);
        let f64_report = f64_rt
            .run_campaign(&net, &schedule)
            .expect("zoo model maps");

        let mut int8_rt = runtime(42, Precision::Int8);
        let int8_report = int8_rt
            .run_campaign(&net, &schedule)
            .expect("zoo model maps");

        // The full record stream — decisions, costs, reprogram flags,
        // policy-update markers — must be bit-identical, not just the
        // argmax winners. PartialEq on InferenceRecord compares f64
        // payloads exactly.
        assert_eq!(
            int8_report.runs,
            f64_report.runs,
            "INT8 decision stream diverged from f64 on {}",
            net.name()
        );
        assert_eq!(int8_report.skipped, f64_report.skipped, "{}", net.name());

        let snapshot = int8_rt.telemetry().snapshot();
        quant_rows_total += snapshot.counter(CounterId::PolicyQuantRows);
        // The f64 runtime must never touch the quant counters.
        let f64_snapshot = f64_rt.telemetry().snapshot();
        assert_eq!(f64_snapshot.counter(CounterId::PolicyQuantRows), 0);
        assert_eq!(f64_snapshot.counter(CounterId::PolicyQuantFallback), 0);
    }
    // The gate is vacuous if every row fell back to f64: require that
    // the integer path actually served a meaningful share of rows.
    assert!(
        quant_rows_total > 0,
        "INT8 path never served a row — parity gate is vacuous"
    );
}

#[test]
fn int8_runtime_with_confidence_escalation_matches_f64() {
    // The guard also covers the confidence side: with escalation
    // enabled, a quantized confidence landing on the other side of the
    // threshold would flip the search strategy. Cross-check on one
    // model with the paper's escalation knob turned on.
    let config = OdinConfig::builder()
        .confidence_escalation(Some(0.6))
        .build()
        .expect("valid config");
    let net = zoo::vgg16(Dataset::Cifar10);
    let schedule = TimeSchedule::geometric(1.0, 1e7, 12);

    let build = |precision: Precision| {
        OdinRuntime::builder(config.clone())
            .rng_seed(7)
            .policy_precision(precision)
            .telemetry(Telemetry::enabled())
            .build()
            .expect("valid config")
    };
    let mut f64_rt = build(Precision::F64);
    let f64_report = f64_rt.run_campaign(&net, &schedule).expect("VGG16 maps");
    let mut int8_rt = build(Precision::Int8);
    let int8_report = int8_rt.run_campaign(&net, &schedule).expect("VGG16 maps");
    assert_eq!(int8_report.runs, f64_report.runs);
}

#[test]
fn precision_is_not_semantic_state() {
    // RuntimeState excludes precision by design — the parity guard
    // makes INT8 semantically invisible, so a resumed runtime defaults
    // to f64 and replays the same decision stream.
    let int8_rt = runtime(3, Precision::Int8);
    let resumed = OdinRuntime::from_state(&int8_rt.state()).expect("state is valid");
    assert_eq!(resumed.policy_precision(), Precision::F64);
    assert_eq!(int8_rt.policy_precision(), Precision::Int8);

    let net = zoo::googlenet(Dataset::Cifar10);
    let schedule = TimeSchedule::geometric(1.0, 1e6, 6);
    let mut a = runtime(3, Precision::Int8);
    let mut b = OdinRuntime::from_state(&runtime(3, Precision::Int8).state()).expect("valid");
    let ra = a.run_campaign(&net, &schedule).expect("GoogLeNet maps");
    let rb = b.run_campaign(&net, &schedule).expect("GoogLeNet maps");
    assert_eq!(ra.runs, rb.runs);
}
