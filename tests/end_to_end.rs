//! End-to-end integration: offline bootstrap → online adaptation →
//! campaign economics, across every crate in the workspace.

use odin::core::baselines::{paper_baselines, HomogeneousRuntime};
use odin::core::offline::{bootstrap_policy, leave_one_out};
use odin::core::AnalyticModel;
use odin::dnn::zoo::{self, Dataset};
use odin::policy::OuPolicy;
use odin::prelude::*;
use odin::xbar::OuShape;
use rand::SeedableRng;

fn schedule() -> TimeSchedule {
    TimeSchedule::geometric(1.0, 1e8, 80)
}

#[test]
fn odin_beats_every_homogeneous_baseline_on_total_edp() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let config = OdinConfig::paper();
    let net = zoo::vgg11(Dataset::Cifar10);
    let analytic = AnalyticModel::new(config.crossbar().clone()).unwrap();
    let known = leave_one_out(&zoo::all_models(Dataset::Cifar10), net.name());
    let policy = bootstrap_policy(
        &analytic,
        &known,
        config.eta(),
        config.policy().clone(),
        &mut rng,
    )
    .unwrap();
    let mut odin = OdinRuntime::builder(config.clone())
        .policy(policy)
        .build()
        .unwrap();
    let odin_report = odin.run_campaign(&net, &schedule()).unwrap();

    for (label, shape) in paper_baselines() {
        let mut rt =
            HomogeneousRuntime::new(config.crossbar().clone(), shape, config.eta()).unwrap();
        let base = rt.run_campaign(&net, &schedule()).unwrap();
        let gain = base.total_edp() / odin_report.total_edp();
        assert!(gain > 1.0, "odin must beat {label}: {gain:.2}×");
    }
}

#[test]
fn reprogram_cadence_ordering_matches_paper() {
    // §V.C: 16×16 reprograms ~43×, 8×4 ~2×, Odin once at most, over
    // t₀..1e8 s with a dense enough run schedule.
    let config = OdinConfig::paper();
    let net = zoo::vgg11(Dataset::Cifar10);
    let dense = TimeSchedule::geometric(1.0, 1e8, 200);

    let count = |shape: OuShape| {
        let mut rt =
            HomogeneousRuntime::new(config.crossbar().clone(), shape, config.eta()).unwrap();
        rt.run_campaign(&net, &dense).unwrap().reprogram_count()
    };
    let coarse = count(OuShape::new(16, 16));
    let fine = count(OuShape::new(8, 4));
    assert!(
        (25..=60).contains(&coarse),
        "16×16 reprograms {coarse} (paper: 43)"
    );
    assert!(fine <= 4, "8×4 reprograms {fine} (paper: 2)");

    let mut odin = OdinRuntime::builder(config).rng_seed(2).build().unwrap();
    let odin_count = odin.run_campaign(&net, &dense).unwrap().reprogram_count();
    assert!(odin_count <= 2, "odin reprograms {odin_count} (paper: 1)");
    assert!(odin_count < fine.max(1) * 3);
    assert!(coarse > 10 * odin_count.max(1));
}

#[test]
fn online_learning_actually_changes_the_policy() {
    let config = OdinConfig::builder().buffer_capacity(20).build().unwrap();
    let mut odin = OdinRuntime::builder(config).rng_seed(3).build().unwrap();
    let net = zoo::googlenet(Dataset::Cifar10);
    let before = odin.policy().clone();
    let report = odin
        .run_campaign(&net, &TimeSchedule::linear(1.0, 1.0, 10))
        .unwrap();
    assert!(report.policy_updates() > 0);
    assert_ne!(odin.policy(), &before, "updates must move the parameters");
    assert!(odin.policy().updates() > 0);
}

#[test]
fn every_workload_runs_through_the_full_stack() {
    // One RNG stream across all workloads: each runtime's policy draws
    // the next initialization from it, like the pre-builder API did.
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let config = OdinConfig::paper();
    let quick = TimeSchedule::geometric(1.0, 1e6, 5);
    for net in zoo::paper_workloads() {
        let mut odin = OdinRuntime::builder(config.clone())
            .policy(OuPolicy::new(config.policy().clone(), &mut rng))
            .build()
            .unwrap();
        let report = odin.run_campaign(&net, &quick).unwrap();
        assert_eq!(report.runs.len(), 5, "{}", net.name());
        assert!(report.total_energy().value() > 0.0, "{}", net.name());
        assert!(report.total_latency().value() > 0.0, "{}", net.name());
        for run in &report.runs {
            assert_eq!(run.decisions.len(), net.layers().len());
            for d in &run.decisions {
                assert!(d.eval.feasible(config.eta()));
            }
        }
    }
}

#[test]
fn crossbar_size_sweep_runs_and_odin_wins_everywhere() {
    let net = zoo::resnet34(Dataset::Cifar100);
    let quick = TimeSchedule::geometric(1.0, 1e8, 30);
    for size in [128usize, 64, 32] {
        let crossbar = odin::xbar::CrossbarConfig::builder()
            .size(size)
            .build()
            .unwrap();
        let config = OdinConfig::builder()
            .crossbar(crossbar.clone())
            .build()
            .unwrap();
        let mut odin = OdinRuntime::builder(config.clone())
            .rng_seed(5)
            .build()
            .unwrap();
        let odin_edp = odin.run_campaign(&net, &quick).unwrap().total_edp();
        let mut base =
            HomogeneousRuntime::new(crossbar, OuShape::new(16, 16), config.eta()).unwrap();
        let base_edp = base.run_campaign(&net, &quick).unwrap().total_edp();
        assert!(
            base_edp > odin_edp,
            "odin must win at {size}×{size}: {:.2}×",
            base_edp / odin_edp
        );
    }
}
