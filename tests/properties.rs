//! Cross-crate property tests: invariants that must hold for *any*
//! layer geometry, OU shape, or drift age — not just the paper's
//! corners.

use odin::core::search::{find_best, SearchStrategy};
use odin::core::{AnalyticModel, OdinConfig, OdinRuntime, TimeSchedule};
use odin::device::{FaultInjector, FaultKind, FaultMap};
use odin::dnn::{LayerDescriptor, LayerKind};
use odin::units::Seconds;
use odin::xbar::{CrossbarConfig, OuShape};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_layer() -> impl Strategy<Value = LayerDescriptor> {
    (
        1usize..4000,
        1usize..600,
        prop_oneof![Just(1usize), Just(3), Just(5), Just(7)],
        0.0f64..0.95,
        0.41f64..1.0,
        1usize..256,
    )
        .prop_map(
            |(fan_in, fan_out, kernel, sparsity, sensitivity, positions)| {
                let in_channels = fan_in.div_ceil(kernel * kernel).max(1);
                LayerDescriptor::new(
                    0,
                    "arb".into(),
                    LayerKind::Conv {
                        kernel,
                        in_channels,
                        out_channels: fan_out,
                    },
                    positions,
                    sparsity,
                    sensitivity,
                )
            },
        )
}

fn arb_shape() -> impl Strategy<Value = OuShape> {
    (2u32..8, 2u32..8).prop_map(|(r, c)| OuShape::new(1 << r, 1 << c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn evaluation_is_finite_and_positive(layer in arb_layer(), shape in arb_shape(), t in 0.0f64..1e9) {
        let model = AnalyticModel::new(CrossbarConfig::paper_128()).unwrap();
        let eval = model.evaluate(&layer, shape, Seconds::new(t)).unwrap();
        prop_assert!(eval.cost.energy.is_finite());
        prop_assert!(eval.cost.energy.value() > 0.0);
        prop_assert!(eval.cost.latency.value() > 0.0);
        prop_assert!(eval.edp.value() > 0.0);
        prop_assert!(eval.impact.is_finite() && eval.impact > 0.0);
    }

    #[test]
    fn exhaustive_best_is_global_minimum(layer in arb_layer(), t in 0.0f64..1e7) {
        let model = AnalyticModel::new(CrossbarConfig::paper_128()).unwrap();
        let age = Seconds::new(t);
        let out = find_best(&model, &layer, age, 0.005, (0, 0), SearchStrategy::Exhaustive).unwrap();
        if let Some(best) = out.best {
            for shape in model.grid().iter() {
                let eval = model.evaluate(&layer, shape, age).unwrap();
                if eval.feasible(0.005) {
                    prop_assert!(best.edp <= eval.edp, "{shape} beats best {}", best.shape);
                }
            }
        } else {
            // Nothing feasible: even the smallest shape violates η.
            let smallest = model.evaluate(&layer, OuShape::new(4, 4), age).unwrap();
            prop_assert!(!smallest.feasible(0.005));
        }
    }

    #[test]
    fn rb_never_beats_exhaustive(layer in arb_layer(), seed_r in 0usize..6, seed_c in 0usize..6) {
        let model = AnalyticModel::new(CrossbarConfig::paper_128()).unwrap();
        let age = Seconds::new(1e2);
        let ex = find_best(&model, &layer, age, 0.005, (0, 0), SearchStrategy::Exhaustive).unwrap();
        let rb = find_best(&model, &layer, age, 0.005, (seed_r, seed_c), SearchStrategy::paper()).unwrap();
        match (ex.best, rb.best) {
            (Some(e), Some(r)) => prop_assert!(e.edp <= r.edp),
            (None, Some(_)) => prop_assert!(false, "RB found something EX missed"),
            _ => {}
        }
        prop_assert!(rb.evaluations <= ex.evaluations);
    }

    #[test]
    fn fault_map_serde_roundtrips_exactly(
        entries in proptest::collection::vec((0usize..256, 0usize..256, any::<bool>()), 0..80)
    ) {
        let mut map = FaultMap::new();
        for (row, col, on) in entries {
            let kind = if on { FaultKind::StuckOn } else { FaultKind::StuckOff };
            map.insert(row, col, kind);
        }
        let json = serde_json::to_string(&map).unwrap();
        let back: FaultMap = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&map, &back);
        // The sorted-list encoding is canonical: re-encoding the decoded
        // map is byte-identical.
        prop_assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    #[test]
    fn injection_rate_extremes_are_exact(
        seed in any::<u64>(),
        rows in 1usize..48,
        cols in 1usize..48,
        stuck_on in 0.0f64..=1.0,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let none = FaultInjector::new(0.0, stuck_on).inject(rows, cols, &mut rng);
        prop_assert!(none.is_empty(), "rate 0 must inject nothing");

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let all = FaultInjector::new(1.0, stuck_on).inject(rows, cols, &mut rng);
        prop_assert_eq!(all.len(), rows * cols, "rate 1 must fault every cell");
        for row in 0..rows {
            for col in 0..cols {
                prop_assert!(all.get(row, col).is_some());
            }
        }
    }
}

#[test]
fn campaign_totals_equal_run_sums_for_many_seeds() {
    for seed in 0..5u64 {
        let net = odin::dnn::zoo::googlenet(odin::dnn::zoo::Dataset::Cifar10);
        let mut rt = OdinRuntime::builder(OdinConfig::paper())
            .rng_seed(seed)
            .build()
            .unwrap();
        let report = rt
            .run_campaign(&net, &TimeSchedule::geometric(1.0, 1e5, 8))
            .unwrap();
        let e: f64 = report.runs.iter().map(|r| r.total_energy().value()).sum();
        let t: f64 = report.runs.iter().map(|r| r.total_latency().value()).sum();
        assert!((report.total_energy().value() - e).abs() <= 1e-12 * e);
        assert!((report.total_latency().value() - t).abs() <= 1e-12 * t);
        assert!((report.total_edp().value() - e * t).abs() <= 1e-9 * e * t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn eval_cache_never_changes_a_decision(seed in any::<u64>(), runs in 3usize..10) {
        // The memoized evaluation cache must be bit-transparent for any
        // policy initialization and schedule length: every LayerDecision
        // — chosen shape, predicted shape, mismatch flag, and the f64
        // evaluation payload — is identical with the cache on and off.
        let net = odin::dnn::zoo::vgg11(odin::dnn::zoo::Dataset::Cifar10);
        let schedule = TimeSchedule::geometric(1.0, 1e7, runs);
        let cached = OdinRuntime::builder(OdinConfig::paper())
            .rng_seed(seed)
            .build()
            .unwrap()
            .run_campaign(&net, &schedule)
            .unwrap();
        let uncached = OdinRuntime::builder(OdinConfig::paper())
            .rng_seed(seed)
            .eval_cache(false)
            .build()
            .unwrap()
            .run_campaign(&net, &schedule)
            .unwrap();
        prop_assert_eq!(&cached.runs, &uncached.runs);
        prop_assert!(cached.cache.total() > 0, "cache must actually be exercised");
        prop_assert_eq!(uncached.cache.total(), 0, "disabled cache must stay silent");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn snapshot_roundtrip_is_bit_exact(seed in any::<u64>(), sequence in any::<u64>(), eta_milli in 1u32..500) {
        // Any snapshot written by the store must read back bit-equal:
        // struct equality *and* byte-identical re-serialization (the
        // workspace enables serde_json's float_roundtrip, so every f64
        // in the policy weights survives exactly).
        use odin::core::snapshot::{CampaignProgress, CampaignSnapshot, SNAPSHOT_FORMAT_VERSION};
        use odin::core::{CacheStats, EngineStats, ShardMode};
        let config = OdinConfig::builder()
            .eta(f64::from(eta_milli) / 1000.0)
            .build()
            .unwrap();
        let runtime = OdinRuntime::builder(config).rng_seed(seed).build().unwrap();
        let snapshot = CampaignSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            sequence,
            states: vec![runtime.state()],
            progress: CampaignProgress {
                network: "vgg11".to_string(),
                mode: ShardMode::Lockstep,
                shards: 1,
                resilient: false,
                next_index: 0,
                runs: Vec::new(),
                skipped: Vec::new(),
                cache: CacheStats::default(),
                engine: EngineStats::default(),
            },
        };
        let path = snapshot_scratch();
        snapshot.write_atomic(&path).unwrap();
        let back = CampaignSnapshot::read(&path).unwrap();
        prop_assert_eq!(&back, &snapshot);
        prop_assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&snapshot).unwrap()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_snapshots_are_rejected_not_panicked_on(
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
        mask in 1u8..,
    ) {
        // Truncating a snapshot anywhere, or flipping any bits of any
        // byte, must surface a typed OdinError::Snapshot — never a
        // panic, and never a silently wrong read.
        use odin::core::snapshot::CampaignSnapshot;
        use odin::core::OdinError;
        let path = snapshot_scratch();
        reference_snapshot().write_atomic(&path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        let cut = ((pristine.len() as f64 * cut_frac) as usize).min(pristine.len() - 1);
        std::fs::write(&path, &pristine[..cut]).unwrap();
        prop_assert!(matches!(
            CampaignSnapshot::read(&path),
            Err(OdinError::Snapshot(_))
        ));

        let mut flipped = pristine.clone();
        let pos = ((flipped.len() as f64 * flip_frac) as usize).min(flipped.len() - 1);
        flipped[pos] ^= mask;
        std::fs::write(&path, &flipped).unwrap();
        prop_assert!(matches!(
            CampaignSnapshot::read(&path),
            Err(OdinError::Snapshot(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}

/// A unique snapshot scratch path per call.
fn snapshot_scratch() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("odin-snap-prop-{}-{n}.snap", std::process::id()))
}

/// One fixed snapshot for the corruption property (rebuilt per case is
/// wasteful; the damage inputs are what vary).
fn reference_snapshot() -> odin::core::snapshot::CampaignSnapshot {
    use odin::core::snapshot::{CampaignProgress, CampaignSnapshot, SNAPSHOT_FORMAT_VERSION};
    use odin::core::{CacheStats, EngineStats, ShardMode};
    let runtime = OdinRuntime::builder(OdinConfig::paper())
        .rng_seed(9)
        .build()
        .unwrap();
    CampaignSnapshot {
        format_version: SNAPSHOT_FORMAT_VERSION,
        sequence: 1,
        states: vec![runtime.state()],
        progress: CampaignProgress {
            network: "vgg11".to_string(),
            mode: ShardMode::Lockstep,
            shards: 1,
            resilient: false,
            next_index: 0,
            runs: Vec::new(),
            skipped: Vec::new(),
            cache: CacheStats::default(),
            engine: EngineStats::default(),
        },
    }
}
