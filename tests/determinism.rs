//! Reproducibility: identical seeds give identical campaigns, campaign
//! reports survive JSON round-trips (the `results/` records the
//! harness writes are faithful), and the parallel engine's lockstep
//! mode is shard-count invariant bit for bit.

use odin::device::{EnduranceModel, FaultInjector};
use odin::dnn::zoo::{self, Dataset};
use odin::prelude::*;

fn runtime(seed: u64) -> OdinRuntime {
    OdinRuntime::builder(OdinConfig::paper())
        .rng_seed(seed)
        .build()
        .expect("paper config is valid")
}

fn campaign(seed: u64) -> CampaignReport {
    let net = zoo::vgg11(Dataset::Cifar10);
    runtime(seed)
        .run_campaign(&net, &TimeSchedule::geometric(1.0, 1e7, 30))
        .expect("VGG11 maps")
}

fn degrading_fabric(fault_seed: u64) -> FabricHealth {
    use rand::SeedableRng;
    let net = zoo::vgg11(Dataset::Cifar10);
    let mut fault_rng = rand::rngs::StdRng::seed_from_u64(fault_seed);
    FabricHealth::new(
        net.layers().len(),
        128,
        2,
        &FaultInjector::new(0.01, 0.5),
        EnduranceModel::new(2.0),
        DegradationPolicy::paper(),
        &mut fault_rng,
    )
}

fn fault_runtime(policy_seed: u64, fault_seed: u64) -> OdinRuntime {
    OdinRuntime::builder(OdinConfig::paper())
        .rng_seed(policy_seed)
        .fabric(degrading_fabric(fault_seed))
        .build()
        .expect("paper config is valid")
}

fn fault_campaign(policy_seed: u64, fault_seed: u64) -> CampaignReport {
    let net = zoo::vgg11(Dataset::Cifar10);
    fault_runtime(policy_seed, fault_seed)
        .run_campaign_resilient(&net, &TimeSchedule::geometric(1.0, 1e8, 40))
}

#[test]
fn same_seed_same_campaign() {
    let a = campaign(42);
    let b = campaign(42);
    assert_eq!(a, b);
}

#[test]
fn different_seed_different_policy_path() {
    // Different initializations disagree with the search differently;
    // the decision *outcomes* may coincide but the full record should
    // not be bit-identical in general.
    let a = campaign(1);
    let b = campaign(2);
    assert_eq!(a.runs.len(), b.runs.len());
    // Energies may match (same best decisions), but at least the
    // mismatch trajectories differ for untrained policies.
    let mismatches = |r: &CampaignReport| -> Vec<usize> {
        r.runs
            .iter()
            .map(|run| run.decisions.iter().filter(|d| d.mismatch).count())
            .collect()
    };
    assert_ne!(mismatches(&a), mismatches(&b));
}

#[test]
fn same_fault_seed_same_degradation_trajectory() {
    // The whole ladder — fault sampling, wear caps, retirements,
    // remaps, degraded serves — is a pure function of the two seeds:
    // two campaigns replay the identical InferenceRecord stream,
    // events included.
    let a = fault_campaign(42, 1234);
    let b = fault_campaign(42, 1234);
    assert_eq!(a, b);
    assert_eq!(a.runs.len(), b.runs.len());
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.events, rb.events);
    }
    // The trajectory is non-trivial: this configuration exercises the
    // ladder, so determinism is being tested on real events.
    assert!(a.degradation_events().count() > 0, "ladder never engaged");
}

#[test]
fn different_fault_seed_different_fault_placement() {
    let a = fault_campaign(42, 1);
    let b = fault_campaign(42, 2);
    // Same policy, different stuck-at placement: the campaigns must
    // still both complete, but the recorded trajectories (fault-term
    // inflated evaluations, ladder events) diverge.
    assert_eq!(
        a.runs.len() + a.skipped.len(),
        b.runs.len() + b.skipped.len()
    );
    assert_ne!(a, b);
}

#[test]
fn degraded_report_roundtrips_through_json() {
    let report = fault_campaign(7, 1234);
    assert!(report.degradation_events().count() > 0);
    let json = serde_json::to_string(&report).expect("serializable");
    let back: CampaignReport = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(report, back);
}

#[test]
fn report_roundtrips_through_json() {
    let report = campaign(7);
    let json = serde_json::to_string(&report).expect("serializable");
    let back: CampaignReport = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(report, back);
    assert_eq!(report.total_edp(), back.total_edp());
}

#[test]
fn schedule_and_config_roundtrip_through_json() {
    let schedule = TimeSchedule::paper();
    let json = serde_json::to_string(&schedule).unwrap();
    assert_eq!(schedule, serde_json::from_str(&json).unwrap());

    let config = OdinConfig::paper();
    let json = serde_json::to_string(&config).unwrap();
    assert_eq!(config, serde_json::from_str::<OdinConfig>(&json).unwrap());
}

#[test]
fn lockstep_aggregates_are_shard_count_invariant() {
    // The engine's determinism contract: total EDP, mismatch rate, and
    // fraction served are invariant across 1/2/4 lockstep shards for a
    // fixed seed — compared on raw f64 bits, not approximately.
    let net = zoo::vgg11(Dataset::Cifar10);
    let schedule = TimeSchedule::geometric(1.0, 1e7, 30);
    let reference = runtime(42)
        .run_campaign(&net, &schedule)
        .expect("VGG11 maps");
    for shards in [1usize, 2, 4] {
        let mut rt = runtime(42);
        let report = CampaignEngine::new(shards)
            .run_campaign(&mut rt, &net, &schedule)
            .expect("VGG11 maps");
        assert_eq!(report.runs, reference.runs, "{shards} shards");
        assert_eq!(
            report.total_edp().value().to_bits(),
            reference.total_edp().value().to_bits(),
            "{shards} shards"
        );
        assert_eq!(
            report.mismatch_rate().to_bits(),
            reference.mismatch_rate().to_bits(),
            "{shards} shards"
        );
        assert_eq!(
            report.fraction_served().to_bits(),
            reference.fraction_served().to_bits(),
            "{shards} shards"
        );
    }
}

#[test]
fn single_shard_engine_is_bit_identical_to_run_campaign() {
    // The PR-1-style rate-0 guard: the engine at shard count 1 must
    // reproduce the sequential path bit for bit — records, skips, and
    // even the cache counters.
    let net = zoo::vgg11(Dataset::Cifar10);
    let schedule = TimeSchedule::geometric(1.0, 1e8, 40);

    let sequential = runtime(42)
        .run_campaign(&net, &TimeSchedule::geometric(1.0, 1e7, 30))
        .expect("VGG11 maps");
    let mut rt = runtime(42);
    let parallel = CampaignEngine::new(1)
        .run_campaign(&mut rt, &net, &TimeSchedule::geometric(1.0, 1e7, 30))
        .expect("VGG11 maps");
    assert_eq!(parallel.runs, sequential.runs);
    assert_eq!(parallel.skipped, sequential.skipped);
    assert_eq!(parallel.cache, sequential.cache);

    // Same guard on a degrading fabric, resilient mode: skips and
    // ladder events included.
    let seq_faulty = fault_runtime(42, 1234).run_campaign_resilient(&net, &schedule);
    assert!(seq_faulty.degradation_events().count() > 0);
    let mut rt = fault_runtime(42, 1234);
    let par_faulty = CampaignEngine::new(1).run_campaign_resilient(&mut rt, &net, &schedule);
    assert_eq!(par_faulty.runs, seq_faulty.runs);
    assert_eq!(par_faulty.skipped, seq_faulty.skipped);
    assert_eq!(par_faulty.cache, seq_faulty.cache);
}

#[test]
fn lockstep_resilient_sharding_replays_the_degradation_trajectory() {
    let net = zoo::vgg11(Dataset::Cifar10);
    let schedule = TimeSchedule::geometric(1.0, 1e8, 40);
    let reference = fault_runtime(42, 1234).run_campaign_resilient(&net, &schedule);
    for shards in [2usize, 4] {
        let mut rt = fault_runtime(42, 1234);
        let report = CampaignEngine::new(shards).run_campaign_resilient(&mut rt, &net, &schedule);
        assert_eq!(report.runs, reference.runs, "{shards} shards");
        assert_eq!(report.skipped, reference.skipped, "{shards} shards");
    }
}

#[test]
fn independent_mode_is_deterministic_per_shard_count() {
    let net = zoo::vgg11(Dataset::Cifar10);
    let schedule = TimeSchedule::geometric(1.0, 1e7, 30);
    let engine = CampaignEngine::new(4).with_mode(ShardMode::Independent);
    let mut rt_a = runtime(42);
    let a = engine
        .run_campaign(&mut rt_a, &net, &schedule)
        .expect("VGG11 maps");
    let mut rt_b = runtime(42);
    let b = engine
        .run_campaign(&mut rt_b, &net, &schedule)
        .expect("VGG11 maps");
    assert_eq!(a, b, "thread scheduling must not leak into the report");
    assert_eq!(a.engine.mode, ShardMode::Independent);
}

#[test]
fn shard_seed_stream_is_stable() {
    // The per-shard seed derivation is part of the determinism
    // contract: frozen values, shard 0 passes the base seed through.
    assert_eq!(shard_seed(42, 0), 42);
    let derived: Vec<u64> = (0..8).map(|s| shard_seed(42, s)).collect();
    assert_eq!(
        derived,
        (0..8).map(|s| shard_seed(42, s)).collect::<Vec<u64>>()
    );
    let mut unique = derived.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), 8, "derived shard seeds must not collide");
}
