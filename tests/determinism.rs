//! Reproducibility: identical seeds give identical campaigns, and
//! campaign reports survive JSON round-trips (the `results/` records
//! the harness writes are faithful).

use odin::core::{CampaignReport, OdinConfig, OdinRuntime, TimeSchedule};
use odin::dnn::zoo::{self, Dataset};
use rand::SeedableRng;

fn campaign(seed: u64) -> CampaignReport {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let net = zoo::vgg11(Dataset::Cifar10);
    let mut odin = OdinRuntime::new(OdinConfig::paper(), &mut rng);
    odin.run_campaign(&net, &TimeSchedule::geometric(1.0, 1e7, 30))
        .expect("VGG11 maps")
}

#[test]
fn same_seed_same_campaign() {
    let a = campaign(42);
    let b = campaign(42);
    assert_eq!(a, b);
}

#[test]
fn different_seed_different_policy_path() {
    // Different initializations disagree with the search differently;
    // the decision *outcomes* may coincide but the full record should
    // not be bit-identical in general.
    let a = campaign(1);
    let b = campaign(2);
    assert_eq!(a.runs.len(), b.runs.len());
    // Energies may match (same best decisions), but at least the
    // mismatch trajectories differ for untrained policies.
    let mismatches =
        |r: &CampaignReport| -> Vec<usize> {
            r.runs
                .iter()
                .map(|run| run.decisions.iter().filter(|d| d.mismatch).count())
                .collect()
        };
    assert_ne!(mismatches(&a), mismatches(&b));
}

#[test]
fn report_roundtrips_through_json() {
    let report = campaign(7);
    let json = serde_json::to_string(&report).expect("serializable");
    let back: CampaignReport = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(report, back);
    assert_eq!(report.total_edp(), back.total_edp());
}

#[test]
fn schedule_and_config_roundtrip_through_json() {
    let schedule = TimeSchedule::paper();
    let json = serde_json::to_string(&schedule).unwrap();
    assert_eq!(schedule, serde_json::from_str(&json).unwrap());

    let config = OdinConfig::paper();
    let json = serde_json::to_string(&config).unwrap();
    assert_eq!(config, serde_json::from_str::<OdinConfig>(&json).unwrap());
}
