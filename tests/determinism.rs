//! Reproducibility: identical seeds give identical campaigns, and
//! campaign reports survive JSON round-trips (the `results/` records
//! the harness writes are faithful).

use odin::core::{
    CampaignReport, DegradationPolicy, FabricHealth, OdinConfig, OdinRuntime, TimeSchedule,
};
use odin::device::{EnduranceModel, FaultInjector};
use odin::dnn::zoo::{self, Dataset};
use rand::SeedableRng;

fn campaign(seed: u64) -> CampaignReport {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let net = zoo::vgg11(Dataset::Cifar10);
    let mut odin = OdinRuntime::new(OdinConfig::paper(), &mut rng);
    odin.run_campaign(&net, &TimeSchedule::geometric(1.0, 1e7, 30))
        .expect("VGG11 maps")
}

fn fault_campaign(policy_seed: u64, fault_seed: u64) -> CampaignReport {
    let net = zoo::vgg11(Dataset::Cifar10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(policy_seed);
    let mut fault_rng = rand::rngs::StdRng::seed_from_u64(fault_seed);
    let fabric = FabricHealth::new(
        net.layers().len(),
        128,
        2,
        &FaultInjector::new(0.01, 0.5),
        EnduranceModel::new(2.0),
        DegradationPolicy::paper(),
        &mut fault_rng,
    );
    let mut odin = OdinRuntime::new(OdinConfig::paper(), &mut rng).with_fabric_health(fabric);
    odin.run_campaign_resilient(&net, &TimeSchedule::geometric(1.0, 1e8, 40))
}

#[test]
fn same_seed_same_campaign() {
    let a = campaign(42);
    let b = campaign(42);
    assert_eq!(a, b);
}

#[test]
fn different_seed_different_policy_path() {
    // Different initializations disagree with the search differently;
    // the decision *outcomes* may coincide but the full record should
    // not be bit-identical in general.
    let a = campaign(1);
    let b = campaign(2);
    assert_eq!(a.runs.len(), b.runs.len());
    // Energies may match (same best decisions), but at least the
    // mismatch trajectories differ for untrained policies.
    let mismatches =
        |r: &CampaignReport| -> Vec<usize> {
            r.runs
                .iter()
                .map(|run| run.decisions.iter().filter(|d| d.mismatch).count())
                .collect()
        };
    assert_ne!(mismatches(&a), mismatches(&b));
}

#[test]
fn same_fault_seed_same_degradation_trajectory() {
    // The whole ladder — fault sampling, wear caps, retirements,
    // remaps, degraded serves — is a pure function of the two seeds:
    // two campaigns replay the identical InferenceRecord stream,
    // events included.
    let a = fault_campaign(42, 1234);
    let b = fault_campaign(42, 1234);
    assert_eq!(a, b);
    assert_eq!(a.runs.len(), b.runs.len());
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.events, rb.events);
    }
    // The trajectory is non-trivial: this configuration exercises the
    // ladder, so determinism is being tested on real events.
    assert!(a.degradation_events().count() > 0, "ladder never engaged");
}

#[test]
fn different_fault_seed_different_fault_placement() {
    let a = fault_campaign(42, 1);
    let b = fault_campaign(42, 2);
    // Same policy, different stuck-at placement: the campaigns must
    // still both complete, but the recorded trajectories (fault-term
    // inflated evaluations, ladder events) diverge.
    assert_eq!(a.runs.len() + a.skipped.len(), b.runs.len() + b.skipped.len());
    assert_ne!(a, b);
}

#[test]
fn degraded_report_roundtrips_through_json() {
    let report = fault_campaign(7, 1234);
    assert!(report.degradation_events().count() > 0);
    let json = serde_json::to_string(&report).expect("serializable");
    let back: CampaignReport = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(report, back);
}

#[test]
fn report_roundtrips_through_json() {
    let report = campaign(7);
    let json = serde_json::to_string(&report).expect("serializable");
    let back: CampaignReport = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(report, back);
    assert_eq!(report.total_edp(), back.total_edp());
}

#[test]
fn schedule_and_config_roundtrip_through_json() {
    let schedule = TimeSchedule::paper();
    let json = serde_json::to_string(&schedule).unwrap();
    assert_eq!(schedule, serde_json::from_str(&json).unwrap());

    let config = OdinConfig::paper();
    let json = serde_json::to_string(&config).unwrap();
    assert_eq!(config, serde_json::from_str::<OdinConfig>(&json).unwrap());
}
