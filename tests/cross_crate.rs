//! Cross-crate consistency: the analytic models (what Odin decides
//! with) must agree with the functional substrate (what the hardware
//! would actually do).

use odin::core::{AnalyticModel, LayerFeatures};
use odin::device::{DeviceParams, WeightCodec};
use odin::dnn::zoo::{self, Dataset};
use odin::dnn::{prune_rows, row_sparsity, Tensor};
use odin::units::Seconds;
use odin::xbar::mvm::{self, NonIdealMvm};
use odin::xbar::{
    estimate_cycles, CrossbarConfig, LayerMapping, NonIdealityModel, OuScheduler, OuShape,
};
use rand::{Rng, SeedableRng};

#[test]
fn analytic_cycle_estimate_matches_functional_scheduler_for_pruned_rows() {
    // Crossbar-aware row pruning produces exactly the structured
    // sparsity the Eq. 1–2 estimate assumes; the exact scheduler and
    // the closed form must then agree on every tile.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let rows = 200;
    let cols = 90;
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(0.1..1.0)).collect();
    let mut weights = Tensor::from_vec(vec![rows, cols], data).unwrap();
    prune_rows(&mut weights, 0.6);
    let sparsity = row_sparsity(&weights);

    let as_f64: Vec<Vec<f64>> = (0..rows)
        .map(|r| (0..cols).map(|c| f64::from(weights.get(&[r, c]))).collect())
        .collect();
    let mapping = LayerMapping::new(rows, cols, 128).unwrap();
    let shape = OuShape::new(16, 16);
    let scheduler = OuScheduler::new(shape);
    let mut exact_total = 0u64;
    for tile in mapping.tiles() {
        let mask = mapping.tile_nonzero_mask(&as_f64, tile).unwrap();
        exact_total += scheduler.count_cycles(&mask);
    }
    // The analytic estimate per tile with the measured global sparsity.
    let mut est_total = 0u64;
    for tile in mapping.tiles() {
        est_total += estimate_cycles(tile.rows(), tile.cols(), sparsity, shape);
    }
    // The closed form is a conservative upper bound (pruned rows are
    // not spread uniformly over tiles), and must stay within ceil-
    // rounding distance of the exact schedule.
    assert!(est_total >= exact_total, "estimate must upper-bound exact");
    let rel = (est_total - exact_total) as f64 / exact_total as f64;
    assert!(
        rel < 0.35,
        "estimate {est_total} vs exact {exact_total} ({:.1}% off)",
        rel * 100.0
    );
}

#[test]
fn decisions_keep_functional_mvm_error_within_budget_when_fresh() {
    // An OU the analytic model declares feasible at t₀ must execute on
    // the functional crossbars with only quantization-scale error.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let model = AnalyticModel::new(CrossbarConfig::paper_128()).unwrap();
    let net = zoo::vgg11(Dataset::Cifar10);
    let layer = &net.layers()[1];
    let eval = model
        .evaluate(layer, OuShape::new(16, 16), Seconds::ZERO)
        .unwrap();
    assert!(eval.feasible(0.005));

    // Small surrogate matrix on the same fabric with the codec grid.
    let step = 1.0 / 3.0;
    let rows = 32;
    let cols = 16;
    let weights: Vec<Vec<f64>> = (0..rows)
        .map(|_| {
            (0..cols)
                .map(|_| step * f64::from(rng.gen_range(-3i32..=3)))
                .collect()
        })
        .collect();
    let input: Vec<f64> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let cfg = CrossbarConfig::paper_128();
    let mapping = LayerMapping::new(rows, cols, cfg.size()).unwrap();
    let codec = WeightCodec::new(&DeviceParams::paper(), 1.0);
    let xbars = mvm::program_layer(
        &mapping,
        &weights,
        &codec,
        &cfg,
        Seconds::new(1.0),
        &mut rng,
    )
    .unwrap();
    let nonideal = NonIdealityModel::for_config(&cfg);
    let engine = NonIdealMvm::new(&mapping, &xbars, &nonideal, &codec, OuShape::new(16, 16));
    let (got, _) = engine
        .execute(&weights, &input, Seconds::new(1.0), &mut rng)
        .unwrap();
    let want = mvm::ideal(&weights, &input).unwrap();
    let denom: f64 = want.iter().map(|w| w.abs()).sum::<f64>().max(1e-9);
    let err: f64 = got
        .iter()
        .zip(&want)
        .map(|(g, w)| (g - w).abs())
        .sum::<f64>()
        / denom;
    assert!(err < 0.02, "fresh feasible OU must be near-exact: {err}");
}

#[test]
fn surrogate_and_raw_drift_agree_on_direction() {
    // The calibrated accuracy-impact surrogate and the raw Eq. 3/4
    // models must order shapes and times the same way.
    let model = NonIdealityModel::new(DeviceParams::paper(), odin::units::Ohms::new(1.0));
    let shapes = [
        OuShape::new(8, 4),
        OuShape::new(16, 16),
        OuShape::new(64, 64),
    ];
    let times = [1.0, 1e4, 1e8];
    for w in shapes.windows(2) {
        for &t in &times {
            let t = Seconds::new(t);
            assert!(model.accuracy_impact(w[0], t) <= model.accuracy_impact(w[1], t));
            assert!(model.delta_g(w[0], t) <= model.delta_g(w[1], t));
        }
    }
    for shape in shapes {
        for w in times.windows(2) {
            assert!(
                model.accuracy_impact(shape, Seconds::new(w[0]))
                    <= model.accuracy_impact(shape, Seconds::new(w[1]))
            );
            assert!(
                model.delta_g(shape, Seconds::new(w[0]))
                    <= model.delta_g(shape, Seconds::new(w[1]))
            );
        }
    }
}

#[test]
fn features_for_every_zoo_layer_are_policy_ready() {
    for net in zoo::paper_workloads() {
        let n = net.layers().len();
        for layer in net.layers() {
            for t in [0.0, 1e4, 1e8] {
                let phi = LayerFeatures::extract(layer, n, Seconds::new(t));
                for v in phi.as_array() {
                    assert!((0.0..=1.0).contains(&v), "{} {}", net.name(), layer.name());
                }
            }
        }
    }
}

#[test]
fn zoo_models_fit_the_paper_accelerator() {
    // 36 PEs × 4 tiles × 96 crossbars of 128×128 (differential pairs)
    // must hold every workload's weights.
    let system = odin::arch::SystemConfig::paper();
    for net in zoo::paper_workloads() {
        let mut needed = 0usize;
        for layer in net.layers() {
            let mapping = LayerMapping::new(layer.fan_in(), layer.fan_out(), 128).unwrap();
            needed += mapping.crossbar_count();
        }
        assert!(
            needed <= system.total_crossbars(),
            "{} needs {needed} crossbars of {}",
            net.name(),
            system.total_crossbars()
        );
    }
}
