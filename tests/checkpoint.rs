//! Crash consistency: a campaign killed at any inference index and
//! resumed from its last checkpoint must emit the identical
//! [`LayerDecision`] sequence and EDP checksum as an uninterrupted run
//! — in the sequential loop and in both engine shard modes — and
//! corrupted snapshot generations must be rejected with typed errors
//! and rolled back to the newest valid older generation.
//!
//! Every snapshot generation in a store *is* a kill point: it is
//! exactly the state a crashed process would come back to. Resuming
//! from each generation therefore covers "killed at any index" without
//! spawning processes (the `chaos_campaign` harness in `crates/bench`
//! adds real SIGKILLs on top).

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use odin::device::{EnduranceModel, FaultInjector};
use odin::dnn::zoo::{self, Dataset};
use odin::dnn::NetworkDescriptor;
use odin::prelude::*;

/// A unique scratch directory per test invocation.
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("odin-ckpt-test-{}-{tag}-{n}", std::process::id()))
}

fn net() -> NetworkDescriptor {
    zoo::vgg11(Dataset::Cifar10)
}

fn schedule() -> TimeSchedule {
    TimeSchedule::geometric(1.0, 1e7, 24)
}

fn runtime(seed: u64) -> OdinRuntime {
    OdinRuntime::builder(OdinConfig::paper())
        .rng_seed(seed)
        .build()
        .expect("paper config is valid")
}

/// Keep every generation: each one is a kill point to resume from.
fn keep_all(dir: &PathBuf) -> CheckpointPolicy {
    CheckpointPolicy::new(dir).every_runs(1).retain(1_000)
}

/// The headline contract: identical decision streams, identical skip
/// streams, identical EDP bits. Cache and engine counters are
/// legitimately excluded — the evaluation cache is bit-transparent and
/// restarts cold after a resume.
fn assert_equivalent(resumed: &CampaignReport, reference: &CampaignReport) {
    assert_eq!(
        resumed.runs, reference.runs,
        "run records (decision streams) must be bit-identical"
    );
    assert_eq!(resumed.skipped, reference.skipped);
    assert_eq!(
        resumed.total_edp().value().to_bits(),
        reference.total_edp().value().to_bits(),
        "EDP checksum must match bit for bit"
    );
}

#[test]
fn sequential_kill_resume_is_bit_identical_at_every_checkpoint() {
    let dir = scratch("seq");
    let reference = runtime(42).run_campaign(&net(), &schedule()).unwrap();
    let mut checkpointed = OdinRuntime::builder(OdinConfig::paper())
        .rng_seed(42)
        .checkpoint(keep_all(&dir))
        .build()
        .unwrap();
    let full = checkpointed.run_campaign(&net(), &schedule()).unwrap();
    assert_equivalent(&full, &reference);

    let store = SnapshotStore::open(&dir, 1_000).unwrap();
    let generations = store.generations().unwrap();
    assert!(
        generations.len() >= 10,
        "need at least 10 kill points, have {}",
        generations.len()
    );
    // A resume-only engine (no checkpoint policy) leaves the store
    // untouched while we iterate its generations.
    let resumer = CampaignEngine::new(1);
    for generation in &generations {
        let (_, resumed) = resumer
            .resume_from(generation, &net(), &schedule())
            .unwrap();
        assert_equivalent(&resumed, &reference);
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_continues_checkpointing_into_the_same_store() {
    let dir = scratch("seq-continue");
    let mut checkpointed = OdinRuntime::builder(OdinConfig::paper())
        .rng_seed(42)
        .checkpoint(CheckpointPolicy::new(&dir).every_runs(4))
        .build()
        .unwrap();
    let reference = checkpointed.run_campaign(&net(), &schedule()).unwrap();
    // Wind the store back to an early generation by deleting the rest:
    // the survivor becomes the newest, i.e. the crash point.
    let store = SnapshotStore::open(&dir, 1_000).unwrap();
    let generations = store.generations().unwrap();
    for late in &generations[1..] {
        fs::remove_file(late).unwrap();
    }
    let before = SnapshotStore::open(&dir, 1_000)
        .unwrap()
        .generations()
        .unwrap()
        .len();
    // The runtime front door resumes *and* keeps checkpointing into
    // the snapshot's own directory.
    let (_, resumed) = OdinRuntime::resume_from(&dir, &net(), &schedule()).unwrap();
    assert_equivalent(&resumed, &reference);
    let after = SnapshotStore::open(&dir, 1_000)
        .unwrap()
        .generations()
        .unwrap()
        .len();
    assert!(
        after > before,
        "the resumed campaign must write new generations ({before} -> {after})"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lockstep_kill_resume_is_bit_identical_at_every_checkpoint() {
    let dir = scratch("lockstep");
    let reference = runtime(42).run_campaign(&net(), &schedule()).unwrap();
    let engine = CampaignEngine::new(2).checkpoint(keep_all(&dir));
    let full = engine
        .run_campaign(&mut runtime(42), &net(), &schedule())
        .unwrap();
    assert_equivalent(&full, &reference);

    let generations = SnapshotStore::open(&dir, 1_000)
        .unwrap()
        .generations()
        .unwrap();
    assert!(
        generations.len() >= 10,
        "every committed round is a kill point, have {}",
        generations.len()
    );
    let resumer = CampaignEngine::new(2);
    for generation in &generations {
        let (_, resumed) = resumer
            .resume_from(generation, &net(), &schedule())
            .unwrap();
        assert_equivalent(&resumed, &reference);
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn independent_kill_resume_is_bit_identical_at_every_checkpoint() {
    let dir = scratch("independent");
    let engine = CampaignEngine::new(2).with_mode(ShardMode::Independent);
    let reference = engine
        .run_campaign(&mut runtime(42), &net(), &schedule())
        .unwrap();
    // Checkpointing switches the independent engine to barrier rounds;
    // the records must still be bit-identical to free-running shards.
    let full = engine
        .clone()
        .checkpoint(keep_all(&dir))
        .run_campaign(&mut runtime(42), &net(), &schedule())
        .unwrap();
    assert_equivalent(&full, &reference);

    let generations = SnapshotStore::open(&dir, 1_000)
        .unwrap()
        .generations()
        .unwrap();
    assert!(
        generations.len() >= 10,
        "every barrier round is a kill point, have {}",
        generations.len()
    );
    for generation in &generations {
        let (_, resumed) = engine.resume_from(generation, &net(), &schedule()).unwrap();
        assert_equivalent(&resumed, &reference);
    }
    fs::remove_dir_all(&dir).unwrap();
}

fn degrading_fabric(fault_seed: u64) -> FabricHealth {
    use rand::SeedableRng;
    let mut fault_rng = rand::rngs::StdRng::seed_from_u64(fault_seed);
    FabricHealth::new(
        net().layers().len(),
        128,
        2,
        &FaultInjector::new(0.01, 0.5),
        EnduranceModel::new(2.0),
        DegradationPolicy::paper(),
        &mut fault_rng,
    )
}

#[test]
fn resilient_fault_campaign_resumes_identically_across_ladder_events() {
    let dir = scratch("resilient");
    let schedule = TimeSchedule::geometric(1.0, 1e8, 24);
    let build = |ckpt: Option<CheckpointPolicy>| {
        let mut builder = OdinRuntime::builder(OdinConfig::paper())
            .rng_seed(41)
            .fabric(degrading_fabric(7));
        if let Some(policy) = ckpt {
            builder = builder.checkpoint(policy);
        }
        builder.build().unwrap()
    };
    let reference = build(None).run_campaign_resilient(&net(), &schedule);
    // Interval far beyond the schedule: every snapshot below is
    // event-triggered (reprogram, ladder event, or skip).
    let policy = CheckpointPolicy::new(&dir)
        .every_runs(1_000)
        .on_events(true)
        .retain(1_000);
    let full = build(Some(policy)).run_campaign_resilient(&net(), &schedule);
    assert_equivalent(&full, &reference);

    let generations = SnapshotStore::open(&dir, 1_000)
        .unwrap()
        .generations()
        .unwrap();
    assert!(
        generations.len() >= 2,
        "a degrading fabric must trigger event checkpoints, have {}",
        generations.len()
    );
    let resumer = CampaignEngine::new(1);
    for generation in &generations {
        let (_, resumed) = resumer.resume_from(generation, &net(), &schedule).unwrap();
        assert_equivalent(&resumed, &reference);
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_generations_are_rejected_and_rolled_back() {
    let dir = scratch("corrupt");
    let reference = runtime(42).run_campaign(&net(), &schedule()).unwrap();
    let mut checkpointed = OdinRuntime::builder(OdinConfig::paper())
        .rng_seed(42)
        .checkpoint(keep_all(&dir))
        .build()
        .unwrap();
    checkpointed.run_campaign(&net(), &schedule()).unwrap();
    let generations = SnapshotStore::open(&dir, 1_000)
        .unwrap()
        .generations()
        .unwrap();

    // A torn `.tmp` from a crash mid-checkpoint-write is swept, not
    // loaded.
    fs::write(dir.join("campaign-99999999.snap.tmp"), b"torn mid-write").unwrap();

    // Tear the newest generation (what a non-atomic writer would have
    // left behind): it must be rejected with a typed error ...
    let newest = generations.last().unwrap();
    let bytes = fs::read(newest).unwrap();
    fs::write(newest, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(
        CampaignSnapshot::read(newest),
        Err(OdinError::Snapshot(_))
    ));

    // ... and bit-flip the one before it for good measure.
    let second = &generations[generations.len() - 2];
    let mut bytes = fs::read(second).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(second, bytes).unwrap();

    // Resume falls back past both damaged generations and still
    // reproduces the uninterrupted campaign bit for bit.
    let (_, resumed) = CampaignEngine::new(1)
        .resume_from(&dir, &net(), &schedule())
        .unwrap();
    assert_equivalent(&resumed, &reference);
    assert!(!dir.join("campaign-99999999.snap.tmp").exists());

    // With *every* generation damaged, the typed error of the newest
    // generation surfaces instead of a panic.
    for generation in &generations {
        fs::write(generation, b"not a snapshot").unwrap();
    }
    assert!(matches!(
        CampaignEngine::new(1).resume_from(&dir, &net(), &schedule()),
        Err(OdinError::Snapshot(SnapshotError::Corrupt { .. }))
    ));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_validates_engine_network_and_schedule() {
    let dir = scratch("mismatch");
    let mut checkpointed = OdinRuntime::builder(OdinConfig::paper())
        .rng_seed(42)
        .checkpoint(CheckpointPolicy::new(&dir).every_runs(8))
        .build()
        .unwrap();
    checkpointed.run_campaign(&net(), &schedule()).unwrap();

    // Wrong shard count / mode.
    assert!(matches!(
        CampaignEngine::new(2).resume_from(&dir, &net(), &schedule()),
        Err(OdinError::InvalidConfig { name: "resume", .. })
    ));
    assert!(matches!(
        CampaignEngine::new(4)
            .with_mode(ShardMode::Independent)
            .resume_from(&dir, &net(), &schedule()),
        Err(OdinError::InvalidConfig { name: "resume", .. })
    ));
    // Wrong network.
    assert!(matches!(
        CampaignEngine::new(1).resume_from(&dir, &zoo::resnet18(Dataset::Cifar10), &schedule()),
        Err(OdinError::InvalidConfig { name: "resume", .. })
    ));
    // A schedule shorter than the snapshot's cursor.
    assert!(matches!(
        CampaignEngine::new(1).resume_from(&dir, &net(), &TimeSchedule::geometric(1.0, 1e7, 4)),
        Err(OdinError::InvalidConfig { name: "resume", .. })
    ));
    // A store with no generations at all.
    let empty = scratch("empty");
    fs::create_dir_all(&empty).unwrap();
    assert!(matches!(
        CampaignEngine::new(1).resume_from(&empty, &net(), &schedule()),
        Err(OdinError::Snapshot(SnapshotError::Incomplete { .. }))
    ));
    // A path that does not exist is a typed I/O error.
    assert!(matches!(
        CampaignEngine::new(1).resume_from(dir.join("nope.snap"), &net(), &schedule()),
        Err(OdinError::Snapshot(SnapshotError::Io { .. }))
    ));
    fs::remove_dir_all(&empty).unwrap();
    fs::remove_dir_all(&dir).unwrap();
}
