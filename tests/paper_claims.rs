//! The paper's point claims, checked against the models: Table I/II
//! constants, §IV storage, §V.B search budget, §V.E overheads.

use odin::arch::{OverheadLedger, ReconfigurableAdc, SystemConfig, TileConfig};
use odin::device::DeviceParams;
use odin::policy::{MultiHeadMlp, ReplayBuffer};
use odin::xbar::{CrossbarConfig, OuGrid};
use rand::SeedableRng;

#[test]
fn table1_constants() {
    let tile = TileConfig::paper();
    assert!((tile.total_area().value() - 0.2822).abs() < 1e-9);
    assert_eq!(tile.crossbars_per_tile(), 96);
    assert_eq!(tile.crossbar_size(), 128);
    assert_eq!(tile.bits_per_cell(), 2);
    assert!((tile.clock_hz() - 1.2e9).abs() < 1.0);
    assert_eq!(tile.edram_bytes(), 64 * 1024);
    let adc = ReconfigurableAdc::paper();
    assert_eq!(adc.min_bits(), 3);
    assert_eq!(adc.max_bits(), 6);
}

#[test]
fn table2_constants() {
    let d = DeviceParams::paper();
    assert!((d.g_on().as_micro() - 333.0).abs() < 1e-9);
    assert!((d.g_off().as_micro() - 0.33).abs() < 1e-9);
    assert!((d.drift_coefficient() - 0.2).abs() < 1e-12);
    let c = CrossbarConfig::paper_128();
    assert!((c.wire_resistance().value() - 1.0).abs() < 1e-12);
}

#[test]
fn section3_ou_grid_is_6_levels_36_shapes() {
    // §V.A: R, C ∈ {2^L : L ∈ [2, 7]} — 6 discrete values each, 36
    // configurations on the 128×128 crossbar.
    let grid = OuGrid::for_crossbar(128);
    assert_eq!(grid.levels_per_axis(), 6);
    assert_eq!(grid.num_shapes(), 36);
    assert_eq!(grid.dim_at(0), 4);
    assert_eq!(grid.dim_at(5), 128);
}

#[test]
fn section4_buffer_and_policy_storage() {
    // §IV: 50 training examples ≈ 0.35 KB; the MLP is 4 inputs → two
    // 6-way softmax heads and fits in a fraction of a KB.
    let buffer = ReplayBuffer::paper();
    assert_eq!(buffer.capacity(), 50);
    assert!(buffer.storage_bytes() <= 1024);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mlp = MultiHeadMlp::new(4, 16, 6, &mut rng);
    // f32 parameters in hardware: well under 2 KB.
    assert!(mlp.parameter_count() * 4 < 2048);
}

#[test]
fn section5b_search_budget_is_about_a_third_of_exhaustive() {
    // RB at K = 3 evaluates ≤ 4K + 1 = 13 of the 36 shapes.
    let budget = 4 * 3 + 1;
    let ratio = 36.0 / f64::from(budget);
    assert!((2.0..4.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn section5e_overhead_constants() {
    let ledger = OverheadLedger::paper();
    let system = SystemConfig::paper();
    assert!((ledger.controller_area().value() - 0.005).abs() < 1e-12);
    assert!((ledger.controller_tile_percent(&system) - 1.8).abs() < 0.1);
    assert!((ledger.prediction_power().as_milli() - 0.14).abs() < 1e-12);
    assert!((ledger.prediction_latency_penalty() - 0.009).abs() < 1e-12);
    assert!((ledger.policy_update_energy().as_microjoules() - 0.22).abs() < 1e-12);
    assert!((ledger.total_learning_area().value() - 0.076).abs() < 1e-12);
    assert!((ledger.learning_system_percent(&system) - 0.19).abs() < 0.05);
}

#[test]
fn section5a_workload_roster() {
    // ResNet18, VGG11, GoogLeNet, DenseNet121, ViT on CIFAR-10;
    // ResNet34, VGG16 on CIFAR-100; ResNet50, VGG19 on TinyImageNet.
    let w = odin::dnn::zoo::paper_workloads();
    let roster: Vec<(String, String)> = w
        .iter()
        .map(|n| (n.name().to_string(), n.dataset().to_string()))
        .collect();
    let expect = [
        ("resnet18", "cifar10"),
        ("vgg11", "cifar10"),
        ("googlenet", "cifar10"),
        ("densenet121", "cifar10"),
        ("vit", "cifar10"),
        ("resnet34", "cifar100"),
        ("vgg16", "cifar100"),
        ("resnet50", "tinyimagenet"),
        ("vgg19", "tinyimagenet"),
    ];
    for (name, ds) in expect {
        assert!(
            roster.contains(&(name.to_string(), ds.to_string())),
            "missing {name}/{ds}"
        );
    }
}
